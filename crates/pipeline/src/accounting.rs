//! Cycle accounting: CPI stacks in the style of interval analysis.
//!
//! The aggregate counters say *that* a design point lost IPC; this
//! module says *where the cycles went*. Each cycle the simulator has
//! `commit_width` commit slots. Slots that retire an instruction are
//! charged to [`Component::Base`]; every remaining slot of the cycle is
//! charged to exactly **one** stall component, chosen from the head of
//! the ROB (the classic interval-analysis attribution: the oldest
//! instruction's reason is the cycle's reason). The components are
//! therefore exhaustive and mutually exclusive by construction, and the
//! hard invariant
//!
//! ```text
//! Σ component slots == cycles × commit_width
//! ```
//!
//! holds for every run — enforced by a debug assert in
//! [`Simulator::run`](crate::Simulator) and pinned by tests across all
//! design points.
//!
//! The machinery mirrors the tracer/profiler zero-cost pattern: the
//! simulator is generic over a [`CycleAccountant`], the default
//! [`NopAccountant`] reports `enabled() == false` as a compile-time
//! constant, and every attribution site sits behind that check — an
//! unaccounted simulator monomorphizes to the pre-accounting code.
//! [`SlotAccountant`] accumulates the stack and can feed a windowed
//! [`CpiStackSampler`] so the per-component timeline lands in CSV next
//! to the IPC sampler's.

use lsq_obs::{CpiStackSampler, Json};

/// Where one commit slot of one cycle went. Exactly one component is
/// charged per slot; see the module docs for the partition invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// The slot retired an instruction: useful work.
    Base,
    /// ROB empty with fetch not stalled on a known cause: the front end
    /// simply has not delivered (startup, fetch-width limits, i-cache
    /// misses).
    Frontend,
    /// ROB empty (or head is the unresolved branch) behind a branch
    /// misprediction redirect.
    BranchRedirect,
    /// ROB empty while refetching after a memory-order violation or
    /// coherence squash: the replay penalty.
    SquashReplay,
    /// Dispatch stalled on a full ROB while the head made no progress.
    RobFull,
    /// Dispatch stalled on a full issue queue.
    IqFull,
    /// Dispatch stalled because the load queue (or the active LQ
    /// segment, under segmentation) could not accept a load.
    LqFull,
    /// Dispatch stalled because the store queue (or the active SQ
    /// segment) could not accept a store.
    SqFull,
    /// The head was ready to issue but an LSQ search port (SQ forwarding
    /// search or LQ violation search) was taken — the paper's central
    /// contended resource.
    SearchPort,
    /// The head load was ready but both d-cache ports were busy.
    DcachePort,
    /// The head load was gated by memory-order machinery: store-set /
    /// pair-predictor wait, in-order load policy, or a full load buffer.
    MemOrdering,
    /// The head load completed but may not retire past an undrained
    /// older store (background drain backpressure).
    StoreDrain,
    /// The head is waiting on operands with no resource stall recorded:
    /// a data-dependence chain.
    DepChain,
    /// The head is executing (or was issue-blocked by a busy functional
    /// unit): plain execution latency, including L1 hits.
    ExecLatency,
    /// The head load is waiting on an L1 miss served by the L2.
    CacheL2,
    /// The head load is waiting on an L2 miss served by main memory.
    CacheMem,
    /// The head load hit but paid extra cycles for a variable-latency
    /// segmented forwarding search (segment-advance overhead).
    SegmentOverhead,
}

impl Component {
    /// Every component, in report order.
    pub const ALL: [Component; 17] = [
        Component::Base,
        Component::Frontend,
        Component::BranchRedirect,
        Component::SquashReplay,
        Component::RobFull,
        Component::IqFull,
        Component::LqFull,
        Component::SqFull,
        Component::SearchPort,
        Component::DcachePort,
        Component::MemOrdering,
        Component::StoreDrain,
        Component::DepChain,
        Component::ExecLatency,
        Component::CacheL2,
        Component::CacheMem,
        Component::SegmentOverhead,
    ];

    /// Stable snake_case name used in reports, JSON, CSV columns, and
    /// the `lsq_cpi_stack_cycles_total{component=...}` metric label.
    pub fn name(self) -> &'static str {
        match self {
            Component::Base => "base",
            Component::Frontend => "frontend",
            Component::BranchRedirect => "branch_redirect",
            Component::SquashReplay => "squash_replay",
            Component::RobFull => "rob_full",
            Component::IqFull => "iq_full",
            Component::LqFull => "lq_full",
            Component::SqFull => "sq_full",
            Component::SearchPort => "search_port",
            Component::DcachePort => "dcache_port",
            Component::MemOrdering => "mem_ordering",
            Component::StoreDrain => "store_drain",
            Component::DepChain => "dep_chain",
            Component::ExecLatency => "exec_latency",
            Component::CacheL2 => "cache_l2",
            Component::CacheMem => "cache_mem",
            Component::SegmentOverhead => "segment_overhead",
        }
    }

    /// The component names in [`Component::ALL`] order — the label set
    /// handed to a [`CpiStackSampler`].
    pub const NAMES: [&'static str; 17] = [
        "base",
        "frontend",
        "branch_redirect",
        "squash_replay",
        "rob_full",
        "iq_full",
        "lq_full",
        "sq_full",
        "search_port",
        "dcache_port",
        "mem_ordering",
        "store_drain",
        "dep_chain",
        "exec_latency",
        "cache_l2",
        "cache_mem",
        "segment_overhead",
    ];

    fn index(self) -> usize {
        self as usize
    }
}

/// A cycle-accounting sink for the simulator. The default methods are
/// the no-op implementation, so [`NopAccountant`] is just the trait's
/// defaults; attribution sites guard on [`CycleAccountant::enabled`],
/// which must be a constant `false` for the no-op to vanish under
/// monomorphization.
pub trait CycleAccountant {
    /// Whether attribution sites should classify at all.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Tells the accountant the machine's commit width (slots per
    /// cycle); called once at simulator construction.
    #[inline]
    fn init(&mut self, commit_width: u64) {
        let _ = commit_width;
    }

    /// Charges `slots` commit slots to `component`.
    #[inline]
    fn charge(&mut self, component: Component, slots: u64) {
        let _ = (component, slots);
    }

    /// Marks the end of a simulated cycle (feeds the windowed sampler).
    #[inline]
    fn end_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The accumulated stack, or `None` when disabled.
    fn report(&self) -> Option<CpiStack> {
        None
    }

    /// Detaches the windowed sampler (flushing its partial last
    /// window), if one was attached.
    fn take_sampler(&mut self) -> Option<CpiStackSampler> {
        None
    }
}

/// The zero-cost default: accounting disabled, all sites compile away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopAccountant;

// Spelled out so lsq-lint's zero-cost-nop rule can check the contract
// locally: every method trivial and #[inline(always)].
impl CycleAccountant for NopAccountant {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn init(&mut self, _commit_width: u64) {}

    #[inline(always)]
    fn charge(&mut self, _component: Component, _slots: u64) {}

    #[inline(always)]
    fn end_cycle(&mut self, _cycle: u64) {}

    #[inline(always)]
    fn report(&self) -> Option<CpiStack> {
        None
    }

    #[inline(always)]
    fn take_sampler(&mut self) -> Option<CpiStackSampler> {
        None
    }
}

/// Accumulates commit slots per component, optionally sampling the
/// cumulative counters into fixed-width windows.
#[derive(Debug, Clone, Default)]
pub struct SlotAccountant {
    commit_width: u64,
    slots: [u64; Component::ALL.len()],
    sampler: Option<CpiStackSampler>,
}

impl SlotAccountant {
    /// Creates an empty accountant with no sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accountant that also folds every cycle into
    /// `window`-cycle [`CpiWindow`](lsq_obs::cpisample::CpiWindow) rows
    /// (see [`CpiStackSampler`]).
    ///
    /// # Panics
    /// If `window` is zero.
    pub fn with_sampler(window: u64) -> Self {
        Self {
            sampler: Some(CpiStackSampler::new(window, &Component::NAMES)),
            ..Self::default()
        }
    }
}

impl CycleAccountant for SlotAccountant {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn init(&mut self, commit_width: u64) {
        self.commit_width = commit_width;
    }

    #[inline]
    fn charge(&mut self, component: Component, slots: u64) {
        self.slots[component.index()] += slots;
    }

    #[inline]
    fn end_cycle(&mut self, cycle: u64) {
        if let Some(s) = &mut self.sampler {
            s.observe(cycle, &self.slots);
        }
    }

    fn report(&self) -> Option<CpiStack> {
        Some(CpiStack {
            commit_width: self.commit_width,
            components: Component::ALL
                .iter()
                .map(|&c| ComponentStat {
                    component: c.name().to_string(),
                    slots: self.slots[c.index()],
                })
                .collect(),
        })
    }

    fn take_sampler(&mut self) -> Option<CpiStackSampler> {
        let mut s = self.sampler.take()?;
        s.flush();
        Some(s)
    }
}

/// One component's accumulated commit slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStat {
    /// Component name (see [`Component::name`]).
    pub component: String,
    /// Commit slots charged.
    pub slots: u64,
}

/// A per-run (or aggregated) CPI stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiStack {
    /// Commit slots per cycle of the machine that produced this stack.
    pub commit_width: u64,
    /// Per-component totals, in [`Component::ALL`] order for single
    /// runs; merged reports keep the union of component names.
    pub components: Vec<ComponentStat>,
}

impl CpiStack {
    /// Total commit slots across components; equals
    /// `cycles × commit_width` by the partition invariant.
    pub fn total_slots(&self) -> u64 {
        self.components.iter().map(|s| s.slots).sum()
    }

    /// Cycles this stack accounts for (`total_slots / commit_width`).
    pub fn cycles(&self) -> u64 {
        self.total_slots()
            .checked_div(self.commit_width)
            .unwrap_or(0)
    }

    /// Slots charged to the named component (zero if absent).
    pub fn slots(&self, component: &str) -> u64 {
        self.components
            .iter()
            .find(|s| s.component == component)
            .map_or(0, |s| s.slots)
    }

    /// Folds another stack into this one, matching components by name
    /// and appending components this stack has not seen. Both stacks
    /// must come from machines of the same commit width.
    pub fn merge(&mut self, other: &CpiStack) {
        debug_assert_eq!(
            self.commit_width, other.commit_width,
            "merging stacks from different commit widths"
        );
        for stat in &other.components {
            match self
                .components
                .iter_mut()
                .find(|s| s.component == stat.component)
            {
                Some(mine) => mine.slots += stat.slots,
                None => self.components.push(stat.clone()),
            }
        }
    }

    /// The component-wise difference `self − earlier`: the stack of the
    /// cycles simulated after `earlier` was captured. Used for warm-up
    /// differencing — accountant counters are cumulative and monotone,
    /// so the subtraction cannot underflow on snapshots of one run.
    ///
    /// # Panics
    /// In debug builds, if `earlier` charges more slots to some
    /// component than `self` (not a snapshot of the same run).
    pub fn minus(&self, earlier: &CpiStack) -> CpiStack {
        CpiStack {
            commit_width: self.commit_width,
            components: self
                .components
                .iter()
                .map(|s| {
                    let before = earlier.slots(&s.component);
                    debug_assert!(
                        s.slots >= before,
                        "{}: {} < {} — not a later snapshot of the same run",
                        s.component,
                        s.slots,
                        before
                    );
                    ComponentStat {
                        component: s.component.clone(),
                        slots: s.slots.saturating_sub(before),
                    }
                })
                .collect(),
        }
    }

    /// Serializes as
    /// `{"commit_width": w, "components": {"name": slots, ...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("commit_width", self.commit_width.into()),
            (
                "components",
                Json::obj(
                    self.components
                        .iter()
                        .map(|s| (s.component.as_str(), s.slots.into()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`CpiStack::to_json`] layout; `None` on shape
    /// mismatch.
    pub fn from_json(json: &Json) -> Option<Self> {
        let commit_width = json.get("commit_width")?.as_u64()?;
        let obj = json.get("components")?.as_obj()?;
        let mut components = Vec::with_capacity(obj.len());
        for (name, slots) in obj {
            components.push(ComponentStat {
                component: name.clone(),
                slots: slots.as_u64()?,
            });
        }
        Some(Self {
            commit_width,
            components,
        })
    }

    /// A human-readable table: component, slots, share of all slots,
    /// and — when `committed > 0` — the component's CPI contribution
    /// (`slots / (commit_width × committed)`; the column sums to the
    /// run's CPI by the partition invariant).
    pub fn render(&self, committed: u64) -> String {
        let total = self.total_slots().max(1);
        let denom = self.commit_width.saturating_mul(committed);
        let mut out = String::from("component             slots   share      cpi\n");
        for s in &self.components {
            let cpi = if denom == 0 {
                0.0
            } else {
                s.slots as f64 / denom as f64
            };
            out.push_str(&format!(
                "{:<18} {:>9} {:>6.1}% {:>8.4}\n",
                s.component,
                s.slots,
                100.0 * s.slots as f64 / total as f64,
                cpi,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_accountant_is_disabled_and_reports_nothing() {
        let mut a = NopAccountant;
        assert!(!a.enabled());
        a.init(8);
        a.charge(Component::Base, 8);
        a.end_cycle(1);
        assert_eq!(a.report(), None);
        assert!(a.take_sampler().is_none());
    }

    #[test]
    fn slot_accountant_accumulates_per_component() {
        let mut a = SlotAccountant::new();
        a.init(8);
        a.charge(Component::Base, 3);
        a.charge(Component::DepChain, 5);
        a.charge(Component::Base, 8);
        let stack = a.report().expect("enabled");
        assert_eq!(stack.slots("base"), 11);
        assert_eq!(stack.slots("dep_chain"), 5);
        assert_eq!(stack.total_slots(), 16);
        assert_eq!(stack.cycles(), 2);
        // Every component appears, even untouched ones.
        assert_eq!(stack.components.len(), Component::ALL.len());
    }

    #[test]
    fn sampler_sees_cumulative_counters_each_cycle() {
        let mut a = SlotAccountant::with_sampler(2);
        a.init(8);
        for cycle in 1..=4u64 {
            a.charge(Component::Base, 2);
            a.charge(Component::Frontend, 6);
            a.end_cycle(cycle);
        }
        let s = a.take_sampler().expect("sampler attached");
        assert_eq!(s.rows().len(), 2);
        for r in s.rows() {
            assert_eq!(r.cycles, 2);
            assert_eq!(r.slots.iter().sum::<u64>(), 16);
        }
        // Detached: a second take yields nothing.
        assert!(a.take_sampler().is_none());
    }

    #[test]
    fn merge_matches_by_name() {
        let mut a = SlotAccountant::new();
        a.init(8);
        a.charge(Component::Base, 8);
        let mut merged = a.report().unwrap();
        let mut b = SlotAccountant::new();
        b.init(8);
        b.charge(Component::Base, 4);
        b.charge(Component::SearchPort, 4);
        merged.merge(&b.report().unwrap());
        assert_eq!(merged.slots("base"), 12);
        assert_eq!(merged.slots("search_port"), 4);
        assert_eq!(merged.total_slots(), 16);
    }

    #[test]
    fn minus_recovers_the_measured_window() {
        let mut a = SlotAccountant::new();
        a.init(8);
        a.charge(Component::Base, 5);
        a.charge(Component::CacheMem, 3);
        let before = a.report().unwrap();
        a.charge(Component::Base, 2);
        a.charge(Component::CacheMem, 6);
        let after = a.report().unwrap();
        let diff = after.minus(&before);
        assert_eq!(diff.slots("base"), 2);
        assert_eq!(diff.slots("cache_mem"), 6);
        assert_eq!(diff.total_slots(), 8);
        assert_eq!(diff.cycles(), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut a = SlotAccountant::new();
        a.init(8);
        a.charge(Component::SegmentOverhead, 42);
        a.charge(Component::Base, 1);
        let stack = a.report().unwrap();
        let text = stack.to_json().to_string();
        let back = CpiStack::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stack);
    }

    #[test]
    fn render_shows_cpi_contributions() {
        let mut a = SlotAccountant::new();
        a.init(8);
        a.charge(Component::Base, 800);
        a.charge(Component::CacheL2, 800);
        let text = a.report().unwrap().render(800);
        assert!(text.contains("base"), "{text}");
        assert!(text.contains("cache_l2"), "{text}");
        // 1600 slots over 800 committed on an 8-wide machine: CPI 0.25,
        // split evenly.
        assert!(text.contains("0.1250"), "{text}");
    }

    #[test]
    fn component_names_are_stable_and_unique() {
        let names: Vec<_> = Component::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.as_slice(), &Component::NAMES);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate component name");
    }
}
