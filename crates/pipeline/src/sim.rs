//! The cycle-level out-of-order superscalar simulator.
//!
//! Trace-driven, structural-hazard model with the stage ordering
//! `commit → issue/execute → dispatch → fetch` evaluated once per cycle
//! (commit first, so a stage sees the previous cycle's state downstream
//! of it). The model captures every pipeline-level effect the paper's
//! techniques act through:
//!
//! * **issue stalls** when LSQ search ports, d-cache ports, functional
//!   units, the load buffer, or store-set gating say no;
//! * **dispatch stalls** when the ROB, issue queue, or LSQ capacity
//!   (per the segmentation allocation strategy) is exhausted;
//! * **squash and refetch** on memory-order violations, with the higher
//!   penalty of commit-time detection under the pair predictor;
//! * **fetch stalls** on branch mispredictions (hybrid GAg/PAg) and
//!   i-cache misses;
//! * **speculative vs. late wakeup** of load dependents under segmented,
//!   variable-latency forwarding searches.
//!
//! Wrong-path instructions are modeled as fetch bubbles (trace-driven
//! simplification); store-to-load forwarding and violation detection use
//! only hardware-visible state inside [`Lsq`].

use crate::accounting::{Component, CycleAccountant, NopAccountant};
use crate::branch::HybridPredictor;
use crate::config::SimConfig;
use crate::lifecycle::{Lifecycle, NopLifecycle};
use crate::profile::{NopProfiler, Phase, Profiler};
use crate::result::SimResult;
use lsq_core::{LoadIssue, Lsq, StoreDrain, StoreIssue};
use lsq_isa::{Addr, InstrKind, Instruction, InstructionStream};
use lsq_mem::MemoryHierarchy;
use lsq_obs::{CpiStackSampler, Event, NopTracer, SampleInput, Sampler, SquashCause, Tracer};
use lsq_stats::RunningMean;
use lsq_util::rng::Xoshiro256;
use lsq_util::{FastHashMap, RingQueue};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Dispatched, waiting in the issue queue.
    Waiting,
    /// Issued to a functional unit / the memory system.
    Issued,
}

#[derive(Debug, Clone, Copy)]
struct DynInst {
    instr: Instruction,
    /// Producer sequence numbers this instruction waits on.
    deps: [Option<u64>; 2],
    state: State,
    /// Cycle at which the result is available (valid once issued).
    complete_at: u64,
    /// Extra cycles dependents wait beyond `complete_at` (late wakeup).
    wakeup_extra: u32,
    /// Event scheduler: producers not yet issued (one count per `deps`
    /// slot, so a duplicated producer counts twice).
    pending_deps: u8,
    /// Event scheduler: cycle by which every already-issued producer's
    /// result is available (meaningful while `pending_deps == 0`).
    ready_at: u64,
    /// Cycle accounting: deepest hierarchy level this load's access
    /// reached (0 = L1/forwarded, 1 = L2, 2 = memory). Only written
    /// when an accountant is attached.
    mem_level: u8,
    /// Cycle accounting: extra cycles charged by a variable-latency
    /// segmented forwarding search. Only written when an accountant is
    /// attached.
    seg_extra: u32,
}

/// Why fetch is stalled (cycle accounting only): distinguishes the
/// cause behind `fetch_resume_at` so empty-ROB cycles are charged to
/// the right component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FetchStall {
    /// No stall recorded (or the cause is a plain fetch limit).
    #[default]
    None,
    /// Squash-and-refetch replay after a violation or invalidation.
    Squash,
    /// Branch-misprediction redirect.
    Mispredict,
    /// Instruction-cache miss.
    IcacheMiss,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    gseq: u64,
    instr: Instruction,
    avail_at: u64,
}

/// The out-of-order core.
///
/// The `T` parameter is the trace sink; the default [`NopTracer`]
/// monomorphizes every emission site away, so untraced simulators
/// compile to the pre-tracing code. A cloneable tracer (e.g.
/// [`lsq_obs::SharedTracer`]) is shared with the LSQ and the memory
/// hierarchy so all events land in one buffer in emission order.
///
/// The `P` parameter is the self-profiler, following the same pattern:
/// the default [`NopProfiler`] makes every phase-timing site vanish
/// under monomorphization, while
/// [`WallProfiler`](crate::profile::WallProfiler) accumulates per-phase
/// wall time and invocation counts (see [`crate::profile`]).
///
/// The `A` parameter is the cycle accountant, following the same
/// pattern again: the default [`NopAccountant`] makes every
/// attribution site vanish under monomorphization, while
/// [`SlotAccountant`](crate::accounting::SlotAccountant) classifies
/// every commit slot of every cycle into a CPI-stack component (see
/// [`crate::accounting`]).
///
/// The `L` parameter is the instruction-lifecycle recorder, the fourth
/// instance of the pattern: the default [`NopLifecycle`] makes every
/// stamp site vanish under monomorphization, while
/// [`PipeviewRecorder`](crate::lifecycle::PipeviewRecorder) captures
/// each in-flight instruction's fetch/dispatch/issue/writeback/commit
/// (or squash) cycles for pipeline-viewer logs, stage-latency
/// histograms, and critical-path analysis (see [`crate::lifecycle`]).
#[derive(Debug)]
pub struct Simulator<
    T: Tracer = NopTracer,
    P: Profiler = NopProfiler,
    A: CycleAccountant = NopAccountant,
    L: Lifecycle = NopLifecycle,
> {
    cfg: SimConfig,
    lsq: Lsq<T>,
    mem: MemoryHierarchy<T>,
    tracer: T,
    profiler: P,
    acct: A,
    life: L,
    sampler: Option<Sampler>,
    bp: HybridPredictor,
    rob: RingQueue<DynInst>,
    /// Issue-queue occupancy, maintained by both scheduler modes and
    /// used for dispatch backpressure.
    iq_len: usize,
    /// Event scheduler: instructions whose dependencies are all
    /// satisfied. A min-heap on seq — the issue queue is filled in
    /// program order, so popping ascending seqs reproduces the
    /// program-order scan of the polling scheduler exactly.
    ready: BinaryHeap<Reverse<u64>>,
    /// Event scheduler: completion calendar of `(wake cycle, seq)` for
    /// instructions whose last producer has issued but whose result is
    /// not yet available. Entries move to `ready` exactly once.
    calendar: BinaryHeap<Reverse<(u64, u64)>>,
    /// Event scheduler: producer seq → consumers subscribed to its
    /// issue (late wakeup is folded in at notification time).
    waiters: FastHashMap<u64, Vec<u64>>,
    /// Event scheduler: producers with a nonzero late-wakeup penalty →
    /// consumers whose `ready_at` folded that penalty in. Retirement
    /// makes a result architecturally visible immediately, which can
    /// precede `complete_at + wakeup_extra`; committing such a producer
    /// re-relaxes its consumers (see [`Self::relax_late_wakeups`]).
    late_waiters: FastHashMap<u64, Vec<u64>>,
    /// Scratch for resource-stalled candidates re-queued after each
    /// issue scan.
    deferred: Vec<u64>,
    /// Reference polling scheduler (equivalence testing): when `Some`,
    /// issue re-scans this program-ordered list against the ROB every
    /// cycle, exactly like the pre-event-wakeup code, and the event
    /// structures above stay empty.
    polling_iq: Option<Vec<u64>>,
    /// Architectural register → producing in-flight instruction.
    rename: [Option<u64>; 64],
    /// Fetched but not yet dispatched instructions.
    frontend: VecDeque<Fetched>,
    /// Correct-path instructions from the oldest in-flight one to the
    /// youngest fetched, for squash-and-refetch replay.
    replay: VecDeque<Instruction>,
    replay_base: u64,
    next_fetch: u64,
    fetch_resume_at: u64,
    /// Branch we are stalled on after a fetch-time misprediction.
    pending_redirect: Option<u64>,
    cur_fetch_block: Option<u64>,
    cycle: u64,
    dcache_used: usize,
    stream_done: bool,
    /// Deterministic source for coherence-invalidation injection.
    coherence_rng: Xoshiro256,

    // Cycle-accounting scratch, written only when `acct` is enabled.
    /// Committed count at the end of the previous accounted cycle.
    acct_prev_committed: u64,
    /// Resource stall recorded for the ROB head at issue this cycle
    /// (seq kept to discard the record if a squash changed the head).
    acct_head_stall: Option<(u64, Component)>,
    /// Structural dispatch stall recorded this cycle.
    acct_dispatch_stall: Option<Component>,
    /// The ROB head load was blocked from retiring by an undrained
    /// older store this cycle.
    acct_drain_blocked: bool,
    /// Cause behind the current `fetch_resume_at`.
    acct_fetch_stall: FetchStall,

    committed: u64,
    loads_committed: u64,
    stores_committed: u64,
    branches_committed: u64,
    violation_squashes: u64,
    instructions_squashed: u64,
    lq_occ: RunningMean,
    sq_occ: RunningMean,
    ooo_loads: RunningMean,
    inflight_loads: RunningMean,
}

impl Simulator<NopTracer> {
    /// Builds an untraced simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_tracer(cfg, NopTracer)
    }
}

impl<T: Tracer + Clone> Simulator<T> {
    /// Builds a simulator emitting events to `tracer`; the LSQ and the
    /// memory hierarchy get clones so all layers share one sink.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn with_tracer(cfg: SimConfig, tracer: T) -> Self {
        Self::with_parts(cfg, tracer, NopProfiler)
    }
}

impl<T: Tracer + Clone, P: Profiler> Simulator<T, P> {
    /// Builds a simulator with a trace sink and a self-profiler but no
    /// cycle accountant (the constructor behind [`Simulator::new`] and
    /// [`Simulator::with_tracer`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn with_parts(cfg: SimConfig, tracer: T, profiler: P) -> Self {
        Self::with_all(cfg, tracer, profiler, NopAccountant)
    }
}

impl<T: Tracer + Clone, P: Profiler, A: CycleAccountant> Simulator<T, P, A> {
    /// Builds a simulator with a trace sink, a self-profiler, and a
    /// cycle accountant but no lifecycle recorder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn with_all(cfg: SimConfig, tracer: T, profiler: P, acct: A) -> Self {
        Self::with_lifecycle(cfg, tracer, profiler, acct, NopLifecycle)
    }
}

impl<T: Tracer + Clone, P: Profiler, A: CycleAccountant, L: Lifecycle> Simulator<T, P, A, L> {
    /// Builds a simulator with a trace sink, a self-profiler, a cycle
    /// accountant, and an instruction-lifecycle recorder — the fully
    /// general constructor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn with_lifecycle(
        cfg: SimConfig,
        tracer: T,
        profiler: P,
        mut acct: A,
        mut life: L,
    ) -> Self {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "constructor's documented # Panics contract: cfg must validate")
        cfg.validate().expect("valid simulator configuration");
        acct.init(cfg.commit_width as u64);
        // The in-flight seq window is bounded by the ROB plus the fetch
        // buffer (2 × fetch width); the recorder sizes its live array
        // from this so direct mapping by seq is collision-free.
        life.init(cfg.rob_entries + 2 * cfg.fetch_width + 1);
        Self {
            // lsq-lint: allow(no-unwrap-in-lib, reason = "cfg.validate() succeeded on the previous line")
            lsq: Lsq::with_tracer(cfg.lsq, tracer.clone()).expect("validated above"),
            mem: MemoryHierarchy::with_tracer(cfg.hierarchy, tracer.clone()),
            tracer,
            profiler,
            acct,
            life,
            sampler: None,
            bp: HybridPredictor::new(),
            rob: RingQueue::new(cfg.rob_entries),
            iq_len: 0,
            ready: BinaryHeap::new(),
            calendar: BinaryHeap::new(),
            waiters: FastHashMap::default(),
            late_waiters: FastHashMap::default(),
            deferred: Vec::new(),
            polling_iq: None,
            rename: [None; 64],
            frontend: VecDeque::new(),
            replay: VecDeque::new(),
            replay_base: 0,
            next_fetch: 0,
            fetch_resume_at: 0,
            pending_redirect: None,
            cur_fetch_block: None,
            cycle: 0,
            dcache_used: 0,
            stream_done: false,
            coherence_rng: Xoshiro256::seed_from_u64(0xC0_4E_0E_1C),
            acct_prev_committed: 0,
            acct_head_stall: None,
            acct_dispatch_stall: None,
            acct_drain_blocked: false,
            acct_fetch_stall: FetchStall::None,
            committed: 0,
            loads_committed: 0,
            stores_committed: 0,
            branches_committed: 0,
            violation_squashes: 0,
            instructions_squashed: 0,
            lq_occ: RunningMean::new(),
            sq_occ: RunningMean::new(),
            ooo_loads: RunningMean::new(),
            inflight_loads: RunningMean::new(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Switches to the reference polling scheduler: `issue` re-scans the
    /// full issue queue in program order every cycle instead of using
    /// event-driven wakeup. Architecturally identical, much slower —
    /// exists so equivalence tests can compare both paths. Must be
    /// called before any instruction dispatches. Not part of
    /// [`SimConfig`]: the scheduler implementation is not an
    /// architectural parameter.
    pub fn set_reference_scheduler(&mut self) {
        assert!(
            self.rob.is_empty(),
            "scheduler mode must be chosen before simulation starts"
        );
        self.polling_iq = Some(Vec::with_capacity(self.cfg.iq_entries));
    }

    /// Attaches a windowed sampler; it observes every subsequent cycle.
    /// Attach after warm-up so the timeline covers the measured window
    /// only, or before it to make warm-up behaviour visible.
    pub fn set_sampler(&mut self, sampler: Sampler) {
        self.sampler = Some(sampler);
    }

    /// Detaches the sampler, flushing its partial last window.
    pub fn take_sampler(&mut self) -> Option<Sampler> {
        let mut s = self.sampler.take()?;
        s.flush();
        Some(s)
    }

    /// Detaches the cycle accountant's windowed CPI-stack sampler (if
    /// one was attached), flushing its partial last window.
    pub fn take_cpi_sampler(&mut self) -> Option<CpiStackSampler> {
        self.acct.take_sampler()
    }

    /// Pre-warms the cache hierarchy with the workload's data and code
    /// footprints (see [`MemoryHierarchy::prewarm_data`]); the stand-in
    /// for the paper's 3-billion-instruction fast-forward before
    /// measurement.
    pub fn prewarm(&mut self, data_regions: &[(u64, u64)], code: (u64, u64)) {
        self.mem.prewarm_data(data_regions);
        self.mem.prewarm_code(code.0, code.1);
    }

    /// Runs until `max_instrs` instructions have committed (or the trace
    /// ends, or the safety cycle cap triggers) and reports the results.
    /// Calling `run` again continues the same machine state with a fresh
    /// instruction budget, which is how warm-up runs are expressed.
    pub fn run<S: InstructionStream>(&mut self, stream: &mut S, max_instrs: u64) -> SimResult {
        let target = self.committed + max_instrs;
        let cycle_cap = self
            .cycle
            .saturating_add(max_instrs.saturating_mul(self.cfg.cycle_cap_per_instr))
            .saturating_add(10_000);
        let mut hit_cap = false;
        while self.committed < target {
            // Done only when the trace is exhausted AND no fetched
            // instruction is left in flight or awaiting refetch (the
            // replay buffer drains at commit, so it is the authoritative
            // emptiness check — the ROB alone can be transiently empty
            // right after an end-of-trace squash).
            if self.stream_done && self.replay.is_empty() {
                break;
            }
            self.step(stream);
            if self.cycle >= cycle_cap {
                hit_cap = true;
                break;
            }
        }
        self.result(hit_cap)
    }

    /// Runs `f` under the profiler's clock for `phase`. With profiling
    /// disabled ([`NopProfiler`]) the `enabled()` check is a constant
    /// and this compiles down to a plain call — no timestamps taken.
    #[inline]
    fn timed<R>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> R) -> R {
        if !self.profiler.enabled() {
            return f(self);
        }
        let start = std::time::Instant::now();
        let r = f(self);
        self.profiler
            .record(phase, start.elapsed().as_nanos() as u64);
        r
    }

    /// Advances the machine one cycle.
    // lsq-lint: hot
    fn step<S: InstructionStream>(&mut self, stream: &mut S) {
        self.cycle += 1;
        // One clock for all sinks: the tracer clones in the LSQ and the
        // hierarchy share the buffer this updates.
        self.tracer.set_cycle(self.cycle);
        self.dcache_used = 0;
        self.timed(Phase::SegmentAdvance, |s| s.lsq.begin_cycle());
        self.inject_invalidations();
        // Drains and retirement are one commit phase: drain-time LQ
        // violation searches are charged here, not to LsqSearch.
        self.timed(Phase::Commit, |s| {
            s.drain_stores();
            s.commit();
        });
        self.timed(Phase::WakeupIssue, |s| s.issue());
        self.timed(Phase::Dispatch, |s| s.dispatch());
        self.timed(Phase::Fetch, |s| s.fetch(stream));
        self.sample();
        if self.acct.enabled() {
            self.account_cycle();
        }
    }

    // ------------------------------------------------------------------
    // Cycle accounting
    // ------------------------------------------------------------------

    /// Classifies every commit slot of the cycle that just ended:
    /// slots that retired an instruction are charged to
    /// [`Component::Base`], the remaining slots to exactly one stall
    /// component picked from the state of the ROB head (commit runs
    /// first in [`Self::step`], so the head observed here is the one
    /// commit failed to retire this cycle — the stall records taken by
    /// issue and dispatch later in the same cycle refer to it).
    // lsq-lint: hot
    fn account_cycle(&mut self) {
        let n = self.committed - self.acct_prev_committed;
        self.acct_prev_committed = self.committed;
        // Consume the per-cycle stall records even on full-width cycles
        // so nothing leaks into the next cycle's classification.
        let head_stall = self.acct_head_stall.take();
        let dispatch_stall = self.acct_dispatch_stall.take();
        let drain_blocked = std::mem::take(&mut self.acct_drain_blocked);
        let width = self.cfg.commit_width as u64;
        debug_assert!(n <= width, "committed more than commit_width in one cycle");
        if n > 0 {
            self.acct.charge(Component::Base, n);
        }
        let stall = width - n;
        if stall > 0 {
            let c = self.classify_stall(head_stall, dispatch_stall, drain_blocked);
            self.acct.charge(c, stall);
        }
        self.acct.end_cycle(self.cycle);
    }

    /// Picks the single stall component for this cycle's unused commit
    /// slots. Precedence: the ROB head's own reason first (interval
    /// analysis), then structural dispatch backpressure, then the
    /// residual dependence-chain bucket.
    // lsq-lint: hot
    fn classify_stall(
        &self,
        head_stall: Option<(u64, Component)>,
        dispatch_stall: Option<Component>,
        drain_blocked: bool,
    ) -> Component {
        let Some(seq) = self.rob.head_seq() else {
            // Empty window: the front end owns the stall.
            if self.pending_redirect.is_some() {
                return Component::BranchRedirect;
            }
            if self.cycle < self.fetch_resume_at {
                return match self.acct_fetch_stall {
                    FetchStall::Squash => Component::SquashReplay,
                    FetchStall::Mispredict => Component::BranchRedirect,
                    FetchStall::IcacheMiss | FetchStall::None => Component::Frontend,
                };
            }
            return Component::Frontend;
        };
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the head seq was taken from the ROB just above, so front() is occupied")
        let e = self.rob.front().expect("head exists");
        if e.state == State::Issued {
            if drain_blocked
                || (e.complete_at <= self.cycle && self.lsq.has_undrained_store_before(seq))
            {
                // The head load finished but may not retire past an
                // undrained older store.
                return Component::StoreDrain;
            }
            if e.complete_at > self.cycle {
                return match e.instr.kind {
                    InstrKind::Load => match e.mem_level {
                        2 => Component::CacheMem,
                        1 => Component::CacheL2,
                        0 if e.seg_extra > 0 => Component::SegmentOverhead,
                        _ => Component::ExecLatency,
                    },
                    k if k.is_branch()
                        && (self.pending_redirect.is_some()
                            || (self.acct_fetch_stall == FetchStall::Mispredict
                                && self.cycle < self.fetch_resume_at)) =>
                    {
                        Component::BranchRedirect
                    }
                    _ => Component::ExecLatency,
                };
            }
            // Head complete but the commit group stopped mid-width
            // behind it (e.g. a younger blocked load): residual
            // execution skew.
            return Component::ExecLatency;
        }
        // Head still waiting in the issue queue. A resource stall
        // recorded for it at issue time names the resource; otherwise
        // structural dispatch backpressure, then the dependence chain.
        if let Some((s, c)) = head_stall {
            if s == seq {
                return c;
            }
        }
        dispatch_stall.unwrap_or(Component::DepChain)
    }

    /// Records a resource stall observed at issue time, kept only when
    /// it concerns the current ROB head (the instruction whose stall
    /// defines the cycle under head-based attribution).
    #[inline]
    fn record_head_stall(&mut self, seq: u64, c: Component) {
        if self.acct.enabled() && self.rob.head_seq() == Some(seq) {
            self.acct_head_stall = Some((seq, c));
        }
    }

    fn sample(&mut self) {
        self.lq_occ.record(self.lsq.lq_occupancy() as f64);
        self.sq_occ.record(self.lsq.sq_occupancy() as f64);
        self.ooo_loads
            .record(self.lsq.out_of_order_issued_loads() as f64);
        self.inflight_loads.record(self.lsq.lq_occupancy() as f64);
        if let Some(sampler) = &mut self.sampler {
            let stats = self.lsq.stats();
            sampler.observe(
                self.cycle,
                SampleInput {
                    committed: self.committed,
                    lq_occupancy: self.lsq.lq_occupancy(),
                    sq_occupancy: self.lsq.sq_occupancy(),
                    sq_searches: stats.sq_searches,
                    lq_searches: stats.lq_searches(),
                    inflight_loads: self.lsq.lq_occupancy(),
                },
            );
        }
    }

    /// Injects external coherence invalidations (§2.2 scheme 2): with the
    /// configured per-cycle probability, a word some outstanding load has
    /// read is written by "another processor"; any outstanding load to
    /// that word (premature or otherwise) is squashed with everything
    /// younger, R10000-style.
    fn inject_invalidations(&mut self) {
        if self.cfg.invalidation_rate <= 0.0 {
            return;
        }
        if !self.coherence_rng.chance(self.cfg.invalidation_rate) {
            return;
        }
        let pick = self.coherence_rng.range_usize(1 << 16);
        if let Some(addr) = self.lsq.nth_issued_load_addr(pick) {
            if let Some(victim) = self.lsq.invalidate(addr) {
                self.squash(
                    victim,
                    self.cfg.mispredict_penalty,
                    SquashCause::Invalidation,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Drains retired stores from the store queue in the background:
    /// each drain writes the cache (d-cache port) and, under the pair
    /// scheme, performs the commit-time violation search (LQ ports). A
    /// detected violation squashes from the premature load — which is
    /// still in the ROB, since loads cannot retire past an undrained
    /// older store.
    // lsq-lint: hot
    fn drain_stores(&mut self) {
        while self.dcache_used < self.cfg.dcache_ports {
            match self.lsq.drain_store() {
                StoreDrain::Idle | StoreDrain::Blocked => break,
                StoreDrain::Drained {
                    seq: _,
                    addr,
                    violation,
                } => {
                    self.dcache_used += 1;
                    self.mem.data_access(addr, true);
                    if let Some(victim) = violation {
                        let penalty = self.cfg.mispredict_penalty + self.cfg.pair_recovery_extra;
                        self.squash(victim, penalty, SquashCause::CommitMemOrder);
                        break;
                    }
                }
            }
        }
    }

    // lsq-lint: hot
    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(seq) = self.rob.head_seq() else {
                break;
            };
            // lsq-lint: allow(no-unwrap-in-lib, reason = "the commit loop runs only while the ROB has a head")
            let e = *self.rob.front().expect("head exists");
            if e.state != State::Issued || e.complete_at > self.cycle {
                break;
            }
            match e.instr.kind {
                InstrKind::Store => {
                    // Retirement frees the ROB slot; the SQ entry drains
                    // in the background ("the store is not in the
                    // pipeline anymore", §3.2).
                    self.lsq.store_retire(seq);
                    self.retire(seq);
                }
                InstrKind::Load => {
                    // A load may not retire past an undrained older
                    // store: the drain's violation search must still see
                    // it in the load queue.
                    if self.lsq.has_undrained_store_before(seq) {
                        if self.acct.enabled() {
                            self.acct_drain_blocked = true;
                        }
                        break;
                    }
                    self.lsq.commit_load(seq);
                    self.retire(seq);
                }
                _ => self.retire(seq),
            }
        }
    }

    fn retire(&mut self, seq: u64) {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the commit loop established this head; popping it cannot fail")
        let (s, e) = self.rob.pop().expect("retiring head");
        debug_assert_eq!(s, seq);
        if self.life.enabled() {
            self.life.commit(seq, self.cycle);
        }
        if e.wakeup_extra > 0 {
            self.relax_late_wakeups(seq);
        }
        debug_assert_eq!(self.replay_base, seq);
        self.replay.pop_front();
        self.replay_base += 1;
        // A retired instruction's value lives in the architectural state;
        // drop the rename mapping if it still points here.
        if let Some(dst) = e.instr.dst {
            let slot = &mut self.rename[dst.flat_index()];
            if *slot == Some(seq) {
                *slot = None;
            }
        }
        self.committed += 1;
        match e.instr.kind {
            InstrKind::Load => self.loads_committed += 1,
            InstrKind::Store => self.stores_committed += 1,
            InstrKind::Branch => self.branches_committed += 1,
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    /// Cycle at which dependence `dep` allows issue, or `None` if the
    /// producer has not yet issued.
    // lsq-lint: hot
    fn dep_ready_at(&self, dep: u64) -> Option<u64> {
        match self.rob.get(dep) {
            None => Some(0), // committed
            Some(p) => match p.state {
                State::Waiting => None,
                State::Issued => Some(p.complete_at + u64::from(p.wakeup_extra)),
            },
        }
    }

    // lsq-lint: hot
    fn ready(&self, e: &DynInst) -> bool {
        e.deps
            .iter()
            .flatten()
            .all(|&d| self.dep_ready_at(d).is_some_and(|t| t <= self.cycle))
    }

    /// Attempts to issue `seq` this cycle. Returns `true` if it issued
    /// (the caller removes it from its scheduling structure), `false`
    /// on a resource stall. Resource checks run in the same order as
    /// the historical polling scan (unit, then dcache port, then LSQ)
    /// so stall counters match between scheduler modes.
    // lsq-lint: hot
    fn try_issue_one(
        &mut self,
        seq: u64,
        e: &DynInst,
        int_left: &mut usize,
        fp_left: &mut usize,
        squash_request: &mut Option<(u64, SquashCause)>,
    ) -> bool {
        let kind = e.instr.kind;
        let unit_left = if kind.is_fp() { fp_left } else { int_left };
        if *unit_left == 0 {
            self.record_head_stall(seq, Component::ExecLatency);
            return false;
        }
        match kind {
            InstrKind::Load => {
                if self.dcache_used >= self.cfg.dcache_ports {
                    self.record_head_stall(seq, Component::DcachePort);
                    return false;
                }
                match self.timed(Phase::LsqSearch, |s| s.lsq.load_issue(seq)) {
                    LoadIssue::Issued(li) => {
                        if let Some(victim) = li.load_order_violation {
                            // §2.2 scheme 1: a younger same-word load
                            // issued out of order; squash it (the
                            // issuing, older load proceeds).
                            *squash_request = Some((victim, SquashCause::LoadLoad));
                        }
                        let lat = if li.forwarded_from.is_some() {
                            // Forwarded data arrives with hit latency.
                            self.cfg.hierarchy.l1d_hit_latency()
                        } else {
                            self.mem.data_access(e.instr.addr, false)
                        };
                        // Cycle accounting / lifecycle: infer the deepest
                        // level the access reached from its additive latency.
                        let mem_level = if self.acct.enabled() || self.life.enabled() {
                            let h = &self.cfg.hierarchy;
                            if li.forwarded_from.is_some() {
                                0
                            } else if lat >= h.l1d.hit_latency + h.l2.hit_latency + h.mem_latency {
                                2
                            } else if lat >= h.l1d.hit_latency + h.l2.hit_latency {
                                1
                            } else {
                                0
                            }
                        } else {
                            0
                        };
                        let acct_enabled = self.acct.enabled();
                        let complete_at = self.cycle + u64::from(lat) + u64::from(li.extra_cycles);
                        // lsq-lint: allow(no-unwrap-in-lib, reason = "completion events reference only in-flight seqs resident in the ROB")
                        let entry = self.rob.get_mut(seq).expect("resident");
                        entry.state = State::Issued;
                        entry.complete_at = complete_at;
                        entry.wakeup_extra = if li.early_wakeup {
                            0
                        } else {
                            self.cfg.late_wakeup_penalty
                        };
                        if acct_enabled {
                            entry.mem_level = mem_level;
                            entry.seg_extra = li.extra_cycles;
                        }
                        self.dcache_used += 1;
                        *unit_left -= 1;
                        if self.life.enabled() {
                            self.life.issue(
                                seq,
                                self.cycle,
                                complete_at,
                                li.extra_cycles,
                                mem_level,
                            );
                        }
                        true
                    }
                    stall => {
                        if self.acct.enabled() {
                            let c = match stall {
                                LoadIssue::NoSqPort | LoadIssue::NoLqPort => Component::SearchPort,
                                _ => Component::MemOrdering,
                            };
                            self.record_head_stall(seq, c);
                        }
                        false
                    }
                }
            }
            InstrKind::Store => match self.timed(Phase::LsqSearch, |s| s.lsq.store_issue(seq)) {
                StoreIssue::Issued { violation } => {
                    // lsq-lint: allow(no-unwrap-in-lib, reason = "completion events reference only in-flight seqs resident in the ROB")
                    let entry = self.rob.get_mut(seq).expect("resident");
                    entry.state = State::Issued;
                    entry.complete_at = self.cycle + 1;
                    *unit_left -= 1;
                    if self.life.enabled() {
                        self.life.issue(seq, self.cycle, self.cycle + 1, 0, 0);
                    }
                    if let Some(victim) = violation {
                        *squash_request = Some((victim, SquashCause::MemOrder));
                    }
                    true
                }
                StoreIssue::NoLqPort => {
                    self.record_head_stall(seq, Component::SearchPort);
                    false
                }
            },
            _ => {
                // lsq-lint: allow(no-unwrap-in-lib, reason = "replay events reference only in-flight seqs resident in the ROB")
                let entry = self.rob.get_mut(seq).expect("resident");
                entry.state = State::Issued;
                entry.complete_at = self.cycle + u64::from(kind.exec_latency());
                let complete_at = entry.complete_at;
                *unit_left -= 1;
                if self.life.enabled() {
                    self.life.issue(seq, self.cycle, complete_at, 0, 0);
                }
                if kind.is_branch() && self.pending_redirect == Some(seq) {
                    // The mispredicted branch resolves: redirect fetch
                    // after the Table 1 penalty.
                    self.pending_redirect = None;
                    self.fetch_resume_at = complete_at + self.cfg.mispredict_penalty;
                    self.cur_fetch_block = None;
                    if self.acct.enabled() {
                        self.acct_fetch_stall = FetchStall::Mispredict;
                    }
                }
                true
            }
        }
    }

    // lsq-lint: hot
    fn issue(&mut self) {
        let mut issued = 0usize;
        let mut int_left = self.cfg.int_units;
        let mut fp_left = self.cfg.fp_units;
        let mut squash_request: Option<(u64, SquashCause)> = None;
        if let Some(mut iq) = self.polling_iq.take() {
            // Reference mode: re-scan the whole issue queue in program
            // order, re-walking dependencies against the ROB.
            let mut i = 0usize;
            while i < iq.len() && issued < self.cfg.issue_width {
                let seq = iq[i];
                // lsq-lint: allow(no-unwrap-in-lib, reason = "the IQ holds only seqs resident in the ROB")
                let e = *self.rob.get(seq).expect("IQ entry in ROB");
                debug_assert_eq!(e.state, State::Waiting);
                if !self.ready(&e) {
                    i += 1;
                    continue;
                }
                if self.try_issue_one(seq, &e, &mut int_left, &mut fp_left, &mut squash_request) {
                    issued += 1;
                    iq.remove(i);
                    self.iq_len -= 1;
                    if squash_request.is_some() {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            self.polling_iq = Some(iq);
        } else {
            // Event mode. All execution latencies are >= 1 cycle, so no
            // instruction becomes ready mid-cycle as a consequence of
            // this cycle's issues: the ready set is fixed once the
            // calendar is drained, exactly as the polling scan sees it.
            while let Some(&Reverse((at, seq))) = self.calendar.peek() {
                if at > self.cycle {
                    break;
                }
                self.calendar.pop();
                // An entry superseded by a late-wakeup relaxation no
                // longer matches the instruction's `ready_at`; drop it
                // (the earlier replacement entry carries the wakeup).
                match self.rob.get(seq) {
                    Some(e) if e.state == State::Waiting && e.ready_at == at => {
                        self.ready.push(Reverse(seq));
                    }
                    _ => {}
                }
            }
            debug_assert!(self.deferred.is_empty());
            while issued < self.cfg.issue_width {
                let Some(Reverse(seq)) = self.ready.pop() else {
                    break;
                };
                // lsq-lint: allow(no-unwrap-in-lib, reason = "the ready list holds only seqs resident in the ROB")
                let e = *self.rob.get(seq).expect("ready entry in ROB");
                debug_assert_eq!(e.state, State::Waiting);
                debug_assert!(self.ready(&e));
                if self.try_issue_one(seq, &e, &mut int_left, &mut fp_left, &mut squash_request) {
                    issued += 1;
                    self.iq_len -= 1;
                    self.wake_dependents(seq);
                    if squash_request.is_some() {
                        break;
                    }
                } else {
                    // Resource stall: retry next cycle, like the polling
                    // scan skipping and re-visiting the entry.
                    self.deferred.push(seq);
                }
            }
            for seq in self.deferred.drain(..) {
                self.ready.push(Reverse(seq));
            }
        }
        if let Some((victim, cause)) = squash_request {
            self.squash(victim, self.cfg.mispredict_penalty, cause);
        }
    }

    /// Subscribes a just-dispatched instruction to the event scheduler:
    /// counts unissued producers as pending and registers with their
    /// waiter lists; if everything has already issued, schedules the
    /// wakeup directly.
    // lsq-lint: hot
    fn enqueue_dispatched(&mut self, seq: u64, deps: [Option<u64>; 2]) {
        let mut pending: u8 = 0;
        let mut ready_at: u64 = 0;
        for d in deps.iter().flatten() {
            match self.rob.get(*d) {
                None => {} // committed: satisfied at cycle 0
                Some(p) => match p.state {
                    State::Waiting => {
                        pending += 1;
                        self.waiters.entry(*d).or_default().push(seq);
                    }
                    State::Issued => {
                        ready_at = ready_at.max(p.complete_at + u64::from(p.wakeup_extra));
                        if p.wakeup_extra > 0 {
                            self.late_waiters.entry(*d).or_default().push(seq);
                        }
                    }
                },
            }
        }
        // lsq-lint: allow(no-unwrap-in-lib, reason = "this entry was pushed into the ROB by the dispatch just above")
        let e = self.rob.get_mut(seq).expect("just dispatched");
        e.pending_deps = pending;
        e.ready_at = ready_at;
        if pending == 0 {
            self.schedule_wakeup(seq, ready_at);
        }
    }

    // lsq-lint: hot
    fn schedule_wakeup(&mut self, seq: u64, at: u64) {
        if at <= self.cycle {
            self.ready.push(Reverse(seq));
        } else {
            self.calendar.push(Reverse((at, seq)));
        }
    }

    /// Notifies consumers that `producer` issued. Consumers whose last
    /// pending producer this was get a calendar entry at the cycle all
    /// their operands are available (late wakeup included).
    // lsq-lint: hot
    fn wake_dependents(&mut self, producer: u64) {
        let Some(consumers) = self.waiters.remove(&producer) else {
            return;
        };
        // lsq-lint: allow(no-unwrap-in-lib, reason = "dependence edges reference only in-flight producers")
        let p = self.rob.get(producer).expect("producer resident");
        let avail = p.complete_at + u64::from(p.wakeup_extra);
        let late = p.wakeup_extra > 0;
        for &c in &consumers {
            // lsq-lint: allow(no-unwrap-in-lib, reason = "the consumer list holds only in-flight seqs")
            let e = self.rob.get_mut(c).expect("consumer resident");
            e.pending_deps -= 1;
            e.ready_at = e.ready_at.max(avail);
            if e.pending_deps > 0 {
                continue;
            }
            let at = e.ready_at;
            self.schedule_wakeup(c, at);
        }
        if late {
            self.late_waiters.insert(producer, consumers);
        }
    }

    /// Called when a producer with a late-wakeup penalty retires before
    /// `complete_at + wakeup_extra`: retirement makes its result
    /// architecturally visible right away (the polling scheduler sees
    /// this through `dep_ready_at` returning zero for committed
    /// producers), so consumers whose wakeup folded in the penalty are
    /// recomputed and, when that moves their wakeup earlier, the
    /// calendar entry is superseded — the old one is recognized as
    /// stale at drain time because it no longer matches `ready_at`.
    // lsq-lint: hot
    fn relax_late_wakeups(&mut self, producer: u64) {
        let Some(consumers) = self.late_waiters.remove(&producer) else {
            return;
        };
        for c in consumers {
            let Some(e) = self.rob.get(c) else { continue };
            if e.state != State::Waiting {
                continue;
            }
            let deps = e.deps;
            let pending = e.pending_deps;
            let old = e.ready_at;
            let mut ready_at = 0u64;
            for d in deps.iter().flatten() {
                if let Some(p) = self.rob.get(*d) {
                    if p.state == State::Issued {
                        ready_at = ready_at.max(p.complete_at + u64::from(p.wakeup_extra));
                    }
                }
            }
            if ready_at >= old {
                continue;
            }
            if pending > 0 {
                // Not schedulable yet; just correct the running max so
                // the final wakeup no longer charges the stale penalty.
                // lsq-lint: allow(no-unwrap-in-lib, reason = "the wakeup calendar holds only in-flight consumers")
                self.rob.get_mut(c).expect("consumer resident").ready_at = ready_at;
                continue;
            }
            if old <= self.cycle {
                // Already drained into (or about to drain into) the
                // ready set this cycle; an earlier time changes nothing.
                continue;
            }
            // lsq-lint: allow(no-unwrap-in-lib, reason = "the wakeup calendar holds only in-flight consumers")
            self.rob.get_mut(c).expect("consumer resident").ready_at = ready_at;
            self.schedule_wakeup(c, ready_at);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + queue allocation)
    // ------------------------------------------------------------------

    // lsq-lint: hot
    fn dispatch(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(f) = self.frontend.front().copied() else {
                break;
            };
            if f.avail_at > self.cycle {
                break;
            }
            if self.rob.is_full() {
                if self.acct.enabled() {
                    self.acct_dispatch_stall = Some(Component::RobFull);
                }
                break;
            }
            if self.iq_len >= self.cfg.iq_entries {
                if self.acct.enabled() {
                    self.acct_dispatch_stall = Some(Component::IqFull);
                }
                break;
            }
            match f.instr.kind {
                InstrKind::Load if !self.lsq.can_dispatch_load() => {
                    if self.acct.enabled() {
                        self.acct_dispatch_stall = Some(Component::LqFull);
                    }
                    break;
                }
                InstrKind::Store if !self.lsq.can_dispatch_store() => {
                    if self.acct.enabled() {
                        self.acct_dispatch_stall = Some(Component::SqFull);
                    }
                    break;
                }
                _ => {}
            }
            self.frontend.pop_front();
            let mut deps = [None, None];
            for (slot, src) in f.instr.srcs.iter().enumerate() {
                if let Some(r) = src {
                    deps[slot] = self.rename[r.flat_index()];
                }
            }
            let seq = self
                .rob
                .push(DynInst {
                    instr: f.instr,
                    deps,
                    state: State::Waiting,
                    complete_at: 0,
                    wakeup_extra: 0,
                    pending_deps: 0,
                    ready_at: 0,
                    mem_level: 0,
                    seg_extra: 0,
                })
                // lsq-lint: allow(no-unwrap-in-lib, reason = "guarded by the fullness check above")
                .expect("checked not full");
            debug_assert_eq!(seq, f.gseq);
            if self.life.enabled() {
                self.life.dispatch(seq, self.cycle, deps);
            }
            match f.instr.kind {
                InstrKind::Load => self.lsq.dispatch_load(seq, f.instr.pc, f.instr.addr),
                InstrKind::Store => self.lsq.dispatch_store(seq, f.instr.pc, f.instr.addr),
                _ => {}
            }
            if let Some(dst) = f.instr.dst {
                self.rename[dst.flat_index()] = Some(seq);
            }
            self.iq_len += 1;
            if let Some(iq) = &mut self.polling_iq {
                iq.push(seq);
            } else {
                self.enqueue_dispatched(seq, deps);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    // lsq-lint: hot
    fn fetch<S: InstructionStream>(&mut self, stream: &mut S) {
        if self.cycle < self.fetch_resume_at || self.pending_redirect.is_some() {
            return;
        }
        let i_block = self.cfg.hierarchy.l1i.block_bytes;
        let i_hit = self.cfg.hierarchy.l1i.hit_latency;
        for _ in 0..self.cfg.fetch_width {
            if self.frontend.len() >= 2 * self.cfg.fetch_width {
                break;
            }
            // Obtain the instruction at `next_fetch`: from the replay
            // buffer after a squash, from the trace otherwise.
            let idx = (self.next_fetch - self.replay_base) as usize;
            let instr = if idx < self.replay.len() {
                self.replay[idx]
            } else {
                match stream.next_instr() {
                    Some(i) => {
                        self.replay.push_back(i);
                        i
                    }
                    None => {
                        self.stream_done = true;
                        break;
                    }
                }
            };
            // Instruction cache: accessing a new block may miss and stall
            // fetch for the extra latency.
            let block = instr.pc.0 / i_block;
            if self.cur_fetch_block != Some(block) {
                let lat = self.mem.inst_fetch(Addr(instr.pc.0));
                self.cur_fetch_block = Some(block);
                let extra = lat.saturating_sub(i_hit);
                if extra > 0 {
                    self.fetch_resume_at = self.cycle + u64::from(extra);
                    if self.acct.enabled() {
                        self.acct_fetch_stall = FetchStall::IcacheMiss;
                    }
                    break; // the instruction is fetched after the miss
                }
            }
            let gseq = self.next_fetch;
            self.next_fetch += 1;
            if self.life.enabled() {
                self.life.fetch(gseq, self.cycle, &instr);
            }
            self.frontend.push_back(Fetched {
                gseq,
                instr,
                avail_at: self.cycle + 1,
            });
            if instr.kind.is_branch() {
                let correct = self.bp.predict_and_update(instr.pc, instr.taken);
                if !correct {
                    // Wrong path: stall fetch until this branch resolves.
                    self.pending_redirect = Some(gseq);
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Flushes `victim` and everything younger, rewinds fetch to refetch
    /// from `victim`, and charges `penalty` cycles before fetch resumes.
    /// Profiled as [`Phase::Squash`], nested inside whichever phase
    /// detected the violation.
    fn squash(&mut self, victim: u64, penalty: u64, cause: SquashCause) {
        self.timed(Phase::Squash, |s| s.squash_inner(victim, penalty, cause));
    }

    fn squash_inner(&mut self, victim: u64, penalty: u64, cause: SquashCause) {
        self.violation_squashes += 1;
        if self.life.enabled() {
            // Terminate before the fetch rewind below: `next_fetch` is
            // still the pre-squash frontier bounding the in-flight seqs.
            self.life.squash(victim, self.next_fetch, self.cycle, cause);
        }
        if self.tracer.enabled() {
            // The victim's PC must be read before the ROB truncation
            // removes the entry.
            let pc = self
                .rob
                .get(victim)
                .map(|e| e.instr.pc)
                .unwrap_or(lsq_isa::Pc(0));
            self.tracer.emit(Event::Squash {
                victim,
                pc,
                cause,
                penalty,
            });
        }
        let removed = self.rob.truncate_from(victim);
        self.instructions_squashed += removed as u64;
        if let Some(iq) = &mut self.polling_iq {
            iq.retain(|&s| s < victim);
            self.iq_len = iq.len();
        } else {
            // Sequence numbers are reused after a squash, so squashed
            // entries must be scrubbed eagerly from every scheduling
            // structure; lazy deletion would confuse old entries with
            // re-fetched instructions carrying the same seq.
            self.ready.retain(|&Reverse(s)| s < victim);
            self.calendar.retain(|&Reverse((_, s))| s < victim);
            self.waiters.retain(|&p, consumers| {
                if p >= victim {
                    return false;
                }
                consumers.retain(|&c| c < victim);
                !consumers.is_empty()
            });
            self.late_waiters.retain(|&p, consumers| {
                if p >= victim {
                    return false;
                }
                consumers.retain(|&c| c < victim);
                !consumers.is_empty()
            });
            self.iq_len = self
                .rob
                .iter()
                .filter(|(_, e)| e.state == State::Waiting)
                .count();
        }
        self.lsq.squash_from(victim);
        self.frontend.retain(|f| f.gseq < victim);
        // Rebuild the rename map from the surviving ROB contents.
        self.rename = [None; 64];
        for (seq, e) in self.rob.iter() {
            if let Some(dst) = e.instr.dst {
                self.rename[dst.flat_index()] = Some(seq);
            }
        }
        self.next_fetch = victim;
        self.fetch_resume_at = self.cycle + penalty;
        self.cur_fetch_block = None;
        if self.acct.enabled() {
            self.acct_fetch_stall = FetchStall::Squash;
            // A stall recorded for a now-squashed head must not leak
            // into this cycle's classification.
            if self.acct_head_stall.is_some_and(|(s, _)| s >= victim) {
                self.acct_head_stall = None;
            }
        }
        if self.pending_redirect.is_some_and(|b| b >= victim) {
            self.pending_redirect = None;
        }
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn result(&self, hit_cycle_cap: bool) -> SimResult {
        let cpi_stack = self.acct.report();
        if let Some(stack) = &cpi_stack {
            // The tentpole invariant: every commit slot of every cycle
            // was charged to exactly one component.
            debug_assert_eq!(
                stack.total_slots(),
                self.cycle * self.cfg.commit_width as u64,
                "CPI-stack components must sum exactly to cycles × commit_width"
            );
        }
        SimResult {
            cycles: self.cycle,
            committed: self.committed,
            loads_committed: self.loads_committed,
            stores_committed: self.stores_committed,
            branches_committed: self.branches_committed,
            branch_predictions: self.bp.predictions(),
            branch_mispredictions: self.bp.mispredictions(),
            violation_squashes: self.violation_squashes,
            instructions_squashed: self.instructions_squashed,
            lq_occupancy: self.lq_occ.mean(),
            sq_occupancy: self.sq_occ.mean(),
            ooo_issued_loads: self.ooo_loads.mean(),
            inflight_loads: self.inflight_loads.mean(),
            lsq: self.lsq.stats().clone(),
            l1d_miss_rate: self.mem.l1d_stats().miss_rate(),
            l2_miss_rate: self.mem.l2_stats().miss_rate(),
            wall_nanos: 0,
            sim_mips: 0.0,
            profile: self.profiler.report(),
            cpi_stack,
            stage_latency: self.life.report(),
            hit_cycle_cap,
        }
    }

    /// Drains the lifecycle recorder's finished-record ring (oldest
    /// first), or `None` when no recorder is attached.
    pub fn take_pipeview_records(&mut self) -> Option<Vec<lsq_obs::PipeRecord>> {
        self.life.take_records()
    }

    /// Finished lifecycle records evicted because the ring was full.
    pub fn pipeview_dropped(&self) -> u64 {
        self.life.dropped()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests mutate one field of a default config
mod tests {
    use super::*;
    use lsq_core::{LoadOrderPolicy, LsqConfig, PredictorKind};
    use lsq_isa::{ArchReg, Pc, VecStream};

    fn run_instrs(cfg: SimConfig, instrs: Vec<Instruction>) -> SimResult {
        let n = instrs.len() as u64;
        let mut stream = VecStream::new(instrs);
        let mut sim = Simulator::new(cfg);
        sim.run(&mut stream, n)
    }

    fn alu(pc: u64) -> Instruction {
        Instruction::op(Pc(pc), InstrKind::IntAlu)
    }

    #[test]
    fn commits_every_instruction_of_a_straight_line_program() {
        // PCs loop over a small code footprint so the i-cache warms up,
        // as in real loop nests.
        let instrs: Vec<Instruction> = (0..4000).map(|i| alu(0x1000 + (i % 64) * 4)).collect();
        let r = run_instrs(SimConfig::default(), instrs);
        assert_eq!(r.committed, 4000);
        assert!(!r.hit_cycle_cap);
        assert!(
            r.cycles < 4000,
            "8-wide machine needs far fewer cycles than instrs ({})",
            r.cycles
        );
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let instrs: Vec<Instruction> = (0..40_000).map(|i| alu(0x1000 + (i % 64) * 4)).collect();
        let r = run_instrs(SimConfig::default(), instrs);
        assert!(r.ipc() > 5.0, "ipc {}", r.ipc());
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let mut instrs = Vec::new();
        for i in 0..20_000u64 {
            instrs.push(
                Instruction::op(Pc(0x1000 + (i % 64) * 4), InstrKind::IntAlu)
                    .with_dst(ArchReg::int(1))
                    .with_src(ArchReg::int(1)),
            );
        }
        let r = run_instrs(SimConfig::default(), instrs);
        assert!(r.ipc() < 1.2, "serial chain ipc {}", r.ipc());
        assert!(
            r.ipc() > 0.8,
            "back-to-back issue should sustain ~1 ipc, got {}",
            r.ipc()
        );
    }

    #[test]
    fn load_latency_is_visible_in_dependent_chains() {
        // load -> dependent alu chain, all L1 hits after warmup: each link
        // costs the 2-cycle hit latency.
        let mut instrs = Vec::new();
        for i in 0..5000u64 {
            instrs.push(
                Instruction::load(Pc(0x1000 + (i % 64) * 8), Addr(0x100))
                    .with_dst(ArchReg::int(1))
                    .with_src(ArchReg::int(1)),
            );
        }
        let r = run_instrs(SimConfig::default(), instrs);
        // Serialized loads: ~2 cycles each.
        assert!(r.ipc() < 0.7, "ipc {}", r.ipc());
    }

    #[test]
    fn forwarding_supplies_load_values() {
        // store A; load A pairs forward; no violations since the load's
        // address dependence makes it issue after the store.
        let mut instrs = Vec::new();
        for i in 0..300u64 {
            let pc = 0x1000 + (i % 16) * 16;
            instrs.push(Instruction::op(Pc(pc), InstrKind::IntAlu).with_dst(ArchReg::int(2)));
            instrs.push(Instruction::store(Pc(pc + 4), Addr(0x40)).with_src(ArchReg::int(2)));
            instrs.push(Instruction::load(Pc(pc + 8), Addr(0x40)).with_dst(ArchReg::int(3)));
        }
        let r = run_instrs(SimConfig::default(), instrs);
        assert_eq!(r.committed, 900);
        assert!(r.lsq.sq_search_hits > 0, "forwarding hits must occur");
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        // Alternating taken/not-taken is learnable; random is not. Compare
        // cycles for the same instruction count.
        let mk = |pattern: fn(u64) -> bool| -> Vec<Instruction> {
            let mut v = Vec::new();
            for i in 0..3000u64 {
                if i % 4 == 3 {
                    v.push(Instruction::branch(Pc(0x1000 + (i % 64) * 4), pattern(i)));
                } else {
                    v.push(alu(0x1000 + (i % 64) * 4));
                }
            }
            v
        };
        let predictable = run_instrs(SimConfig::default(), mk(|_| true));
        // Properly mixed pseudo-random outcomes the predictor cannot learn.
        fn noise(i: u64) -> bool {
            let mut s = i;
            lsq_util::rng::splitmix64(&mut s) & 1 == 1
        }
        let random = run_instrs(SimConfig::default(), mk(noise));
        assert!(
            random.cycles > predictable.cycles * 2,
            "mispredicts must hurt: {} vs {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.branch_mispredict_rate() > 0.2);
        assert!(predictable.branch_mispredict_rate() < 0.05);
    }

    #[test]
    fn premature_load_squashes_and_refetches() {
        // The store's data dependence delays it; the same-address load
        // behind it issues first and reads stale data -> violation.
        let mut instrs = Vec::new();
        for i in 0..200u64 {
            let pc = 0x1000 + (i % 8) * 32;
            // Long-latency producer feeding the store's address register.
            instrs.push(Instruction::op(Pc(pc), InstrKind::FpDiv).with_dst(ArchReg::fp(1)));
            instrs.push(
                Instruction::op(Pc(pc + 4), InstrKind::IntAlu)
                    .with_dst(ArchReg::int(2))
                    .with_src(ArchReg::int(2)),
            );
            // Store waits on the FP producer via its data operand.
            instrs.push(Instruction::store(Pc(pc + 8), Addr(0x80)).with_src(ArchReg::fp(1)));
            instrs.push(Instruction::load(Pc(pc + 12), Addr(0x80)).with_dst(ArchReg::int(4)));
        }
        let r = run_instrs(SimConfig::default(), instrs);
        assert_eq!(r.committed, 800);
        assert!(r.violation_squashes > 0, "premature loads must be caught");
        // After the first violations, store-set gating kicks in, so
        // squashes must be far rarer than iterations.
        assert!(
            r.violation_squashes < 50,
            "store-set must learn the pair ({} squashes)",
            r.violation_squashes
        );
    }

    #[test]
    fn pair_mode_catches_violations_at_commit() {
        let mut cfg = SimConfig::default();
        cfg.lsq.predictor = PredictorKind::Pair;
        let mut instrs = Vec::new();
        for i in 0..200u64 {
            let pc = 0x1000 + (i % 8) * 32;
            instrs.push(Instruction::op(Pc(pc), InstrKind::FpDiv).with_dst(ArchReg::fp(1)));
            instrs.push(Instruction::store(Pc(pc + 8), Addr(0x80)).with_src(ArchReg::fp(1)));
            instrs.push(Instruction::load(Pc(pc + 12), Addr(0x80)).with_dst(ArchReg::int(4)));
        }
        let r = run_instrs(cfg, instrs);
        assert_eq!(r.committed, 600);
        assert!(
            r.lsq.commit_violations > 0,
            "pair mispredictions detected at commit"
        );
    }

    #[test]
    fn one_port_is_slower_than_four_ports_under_load_pressure() {
        // Lots of independent loads: port-starved configs lose throughput.
        let mut instrs = Vec::new();
        for i in 0..4000u64 {
            instrs.push(Instruction::load(
                Pc(0x1000 + (i % 256) * 4),
                Addr(0x4000 + (i % 64) * 8),
            ));
        }
        let one = run_instrs(
            SimConfig::with_lsq(LsqConfig::conventional(1)),
            instrs.clone(),
        );
        let four = run_instrs(SimConfig::with_lsq(LsqConfig::conventional(4)), instrs);
        assert!(
            one.cycles > four.cycles * 3 / 2,
            "1-port {} vs 4-port {}",
            one.cycles,
            four.cycles
        );
    }

    #[test]
    fn load_buffer_relieves_lq_port_pressure() {
        let mut instrs = Vec::new();
        for i in 0..4000u64 {
            instrs.push(Instruction::load(
                Pc(0x1000 + (i % 256) * 4),
                Addr(0x4000 + (i % 64) * 8),
            ));
        }
        let mut conv = LsqConfig::conventional(1);
        conv.predictor = PredictorKind::Pair;
        let base = run_instrs(SimConfig::with_lsq(conv), instrs.clone());
        let with_lb = run_instrs(SimConfig::with_lsq(LsqConfig::with_techniques(1)), instrs);
        assert!(
            with_lb.cycles <= base.cycles,
            "load buffer must not slow a load-heavy kernel: {} vs {}",
            with_lb.cycles,
            base.cycles
        );
        assert_eq!(with_lb.lsq.lq_searches_by_loads, 0);
        assert!(base.lsq.lq_searches_by_loads > 0);
    }

    #[test]
    fn finite_stream_drains_completely() {
        let instrs: Vec<Instruction> = (0..37).map(|i| alu(0x1000 + i * 4)).collect();
        let mut stream = VecStream::new(instrs);
        let mut sim = Simulator::new(SimConfig::default());
        let r = sim.run(&mut stream, 1_000_000);
        assert_eq!(r.committed, 37);
        assert!(!r.hit_cycle_cap);
    }

    #[test]
    fn run_continues_across_calls() {
        let instrs: Vec<Instruction> = (0..200).map(|i| alu(0x1000 + i * 4)).collect();
        let mut stream = VecStream::new(instrs);
        let mut sim = Simulator::new(SimConfig::default());
        let first = sim.run(&mut stream, 50);
        assert!(first.committed >= 50);
        let second = sim.run(&mut stream, 100);
        assert!(second.committed >= 150, "committed {}", second.committed);
    }

    #[test]
    fn in_order_loads_hurt_a_realistic_workload() {
        // In-order load issue loses ILP through head-of-line blocking
        // under latency variance and finite issue-queue pressure, which a
        // realistic workload (irregular misses + branches) exposes; this
        // is the Figure 9 left-bars effect.
        let profile = lsq_trace::BenchProfile::named("parser").unwrap();
        let run = |lsq: LsqConfig| {
            let mut stream = profile.stream(5);
            let mut sim = Simulator::new(SimConfig::with_lsq(lsq));
            sim.prewarm(&stream.data_regions(), stream.code_region());
            let _ = sim.run(&mut stream, 20_000);
            sim.run(&mut stream, 40_000)
        };
        let mut in_order = LsqConfig::conventional(2);
        in_order.load_order = LoadOrderPolicy::InOrderNoSearch;
        let io = run(in_order);
        let ooo = run(LsqConfig::conventional(2));
        assert!(
            io.cycles as f64 > ooo.cycles as f64 * 1.01,
            "in-order loads must cost ILP: {} vs {}",
            io.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn pair_mode_drains_stores_behind_retirement() {
        // Store-heavy bursts under the pair scheme: stores retire from
        // the ROB immediately and drain in the background; everything
        // still commits and each drained store wrote the cache once.
        let mut cfg = SimConfig::default();
        cfg.lsq.predictor = PredictorKind::Pair;
        let mut instrs = Vec::new();
        for i in 0..1500u64 {
            let pc = 0x1000 + (i % 32) * 8;
            instrs.push(
                Instruction::store(Pc(pc), Addr(0x40 + (i % 16) * 8)).with_src(ArchReg::int(1)),
            );
            instrs.push(Instruction::op(Pc(pc + 4), InstrKind::IntAlu).with_dst(ArchReg::int(1)));
        }
        let r = run_instrs(cfg, instrs);
        assert_eq!(r.committed, 3000);
        assert!(!r.hit_cycle_cap);
        // All but a small undrained tail of stores drained.
        assert!(r.lsq.stores_committed + 40 > r.stores_committed);
        // Every drain performed its commit-time LQ search.
        assert!(r.lsq.lq_searches_by_stores >= r.lsq.stores_committed);
    }

    #[test]
    fn loads_wait_for_older_store_drains() {
        // At 1 LQ port under the pair scheme, drains are serialized;
        // loads behind store bursts must still commit in order and
        // observe forwarding correctly (no lost victims).
        let mut cfg = SimConfig::default();
        cfg.lsq = LsqConfig::with_techniques(1);
        let mut instrs = Vec::new();
        for i in 0..800u64 {
            let pc = 0x1000 + (i % 16) * 16;
            instrs.push(Instruction::store(Pc(pc), Addr(0x100)).with_src(ArchReg::int(2)));
            instrs.push(Instruction::store(Pc(pc + 4), Addr(0x108)).with_src(ArchReg::int(2)));
            instrs.push(Instruction::load(Pc(pc + 8), Addr(0x100)).with_dst(ArchReg::int(3)));
            instrs.push(Instruction::op(Pc(pc + 12), InstrKind::IntAlu).with_dst(ArchReg::int(2)));
        }
        let r = run_instrs(cfg, instrs);
        assert_eq!(r.committed, 3200);
        assert!(!r.hit_cycle_cap);
    }

    #[test]
    fn coherence_invalidations_squash_and_recover() {
        // Multiprocessor scenario (§2.2): invalidations hit outstanding
        // loads and squash; everything still commits correctly.
        let mut cfg = SimConfig::default();
        cfg.invalidation_rate = 0.05;
        let mut instrs = Vec::new();
        for i in 0..4000u64 {
            instrs.push(Instruction::load(
                Pc(0x1000 + (i % 64) * 4),
                Addr(0x4000 + (i % 32) * 8),
            ));
        }
        let r = run_instrs(cfg, instrs.clone());
        assert_eq!(r.committed, 4000);
        assert!(!r.hit_cycle_cap);
        assert!(r.lsq.invalidations > 0);
        assert!(r.lsq.invalidation_squashes > 0, "hot loads must be hit");
        // The same workload without coherence traffic is faster.
        let quiet = run_instrs(SimConfig::default(), instrs);
        assert!(r.cycles > quiet.cycles);
    }

    #[test]
    fn load_load_squash_costs_cycles_on_shared_words() {
        // Alpha-style same-address load-load ordering (§2.2 scheme 1):
        // with squashing enabled, repeated same-word loads issued out of
        // order cost squashes.
        let mut cfg = SimConfig::default();
        cfg.lsq.load_load_squash = true;
        let mut instrs = Vec::new();
        for i in 0..3000u64 {
            let pc = 0x1000 + (i % 32) * 8;
            // A slow producer delays the first load's address; the second
            // load to the same word is independent and issues early.
            instrs.push(
                Instruction::op(Pc(pc), InstrKind::IntMul)
                    .with_dst(ArchReg::int(1))
                    .with_src(ArchReg::int(1)),
            );
            instrs.push(Instruction::load(Pc(pc + 4), Addr(0x80)).with_src(ArchReg::int(1)));
            instrs.push(Instruction::load(Pc(pc + 8), Addr(0x80)));
        }
        let r = run_instrs(cfg, instrs);
        assert_eq!(r.committed, 9000);
        assert!(!r.hit_cycle_cap);
        assert!(
            r.lsq.load_load_violations > 0,
            "OoO same-word loads must trap"
        );
    }

    #[test]
    fn accounted_run_partitions_every_commit_slot() {
        use crate::accounting::SlotAccountant;
        // A mixed workload exercising loads, branches, and dep chains.
        let mut instrs = Vec::new();
        for i in 0..3000u64 {
            let pc = 0x1000 + (i % 64) * 8;
            if i % 7 == 3 {
                instrs.push(
                    Instruction::load(Pc(pc), Addr(0x4000 + (i % 128) * 8))
                        .with_dst(ArchReg::int(1)),
                );
            } else if i % 11 == 5 {
                instrs.push(Instruction::branch(Pc(pc), i % 2 == 0));
            } else {
                instrs.push(
                    Instruction::op(Pc(pc), InstrKind::IntAlu)
                        .with_dst(ArchReg::int(2))
                        .with_src(ArchReg::int(1)),
                );
            }
        }
        let n = instrs.len() as u64;
        let mut stream = VecStream::new(instrs);
        let mut sim = Simulator::with_all(
            SimConfig::default(),
            NopTracer,
            NopProfiler,
            SlotAccountant::new(),
        );
        let r = sim.run(&mut stream, n);
        let stack = r.cpi_stack.expect("accounted run reports a stack");
        // The partition invariant, and its corollary: base slots are
        // exactly the committed instructions.
        assert_eq!(stack.total_slots(), r.cycles * 8);
        assert_eq!(stack.slots("base"), r.committed);
        assert_eq!(stack.cycles(), r.cycles);
    }

    #[test]
    fn accounting_off_reports_no_stack() {
        let instrs: Vec<Instruction> = (0..100).map(|i| alu(0x1000 + i * 4)).collect();
        let r = run_instrs(SimConfig::default(), instrs);
        assert!(r.cpi_stack.is_none());
    }

    #[test]
    fn occupancy_statistics_are_sampled() {
        let mut instrs = Vec::new();
        for i in 0..500u64 {
            instrs.push(Instruction::load(
                Pc(0x1000 + i * 4),
                Addr(0x4000 + (i % 32) * 8),
            ));
        }
        let r = run_instrs(SimConfig::default(), instrs);
        assert!(r.lq_occupancy > 0.0);
        assert!(r.inflight_loads > 0.0);
    }
}
