#![warn(missing_docs)]

//! # lsq-pipeline — a cycle-level out-of-order superscalar simulator
//!
//! The execution substrate for the LSQ reproduction: an 8-wide (Table 1)
//! trace-driven out-of-order core with a hybrid GAg/PAg branch predictor,
//! a 256-entry ROB, a 64-entry issue queue, functional-unit and cache-port
//! structural hazards, squash-and-refetch recovery, and an [`lsq_core::Lsq`]
//! design point plugged into its memory stage.
//!
//! # Examples
//!
//! ```
//! use lsq_pipeline::{SimConfig, Simulator};
//! use lsq_trace::BenchProfile;
//!
//! let mut stream = BenchProfile::named("gzip").unwrap().stream(7);
//! let mut sim = Simulator::new(SimConfig::default());
//! let result = sim.run(&mut stream, 5_000);
//! assert!(result.ipc() > 0.1);
//! ```

pub mod accounting;
pub mod branch;
pub mod config;
pub mod lifecycle;
pub mod profile;
pub mod result;
pub mod sim;

pub use accounting::{
    Component, ComponentStat, CpiStack, CycleAccountant, NopAccountant, SlotAccountant,
};
pub use branch::HybridPredictor;
pub use config::SimConfig;
pub use lifecycle::{
    CriticalPath, Lifecycle, NopLifecycle, PipeviewRecorder, StageLatency, CP_COMPONENTS,
    STAGE_BUCKETS, STAGE_NAMES,
};
pub use profile::{NopProfiler, Phase, PhaseProfile, PhaseStat, Profiler, WallProfiler};
pub use result::SimResult;
pub use sim::Simulator;
