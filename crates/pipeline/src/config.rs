//! Processor configuration (the paper's Table 1) and the Figure 12
//! scaled-processor variant.

use lsq_core::LsqConfig;
use lsq_mem::HierarchyConfig;

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: usize,
    /// Instructions issued per cycle (Table 1: 8).
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (Table 1: 256).
    pub rob_entries: usize,
    /// Issue-queue entries (Table 1: 64).
    pub iq_entries: usize,
    /// Integer functional units (Table 1: 8).
    pub int_units: usize,
    /// Pipelined floating-point units (Table 1: 8).
    pub fp_units: usize,
    /// Data-cache ports shared by load execution and store commit
    /// (Table 1: 4).
    pub dcache_ports: usize,
    /// Branch misprediction redirect penalty in cycles (Table 1: 14).
    pub mispredict_penalty: u64,
    /// Extra recovery cycle for pair-predictor counter rollback (§2.1.2).
    pub pair_recovery_extra: u64,
    /// Extra dependent-wakeup delay for loads that forgo early
    /// scheduling under segmentation (§3).
    pub late_wakeup_penalty: u32,
    /// Per-cycle probability of an external (coherence) invalidation
    /// targeting a word an outstanding load has read — the §2.2
    /// multiprocessor scenario. 0.0 (default) models the paper's
    /// uniprocessor runs.
    pub invalidation_rate: f64,
    /// The LSQ design point under study.
    pub lsq: LsqConfig,
    /// The memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Hard cycle cap as a multiple of the instruction budget (guards
    /// against pathological configurations; generous by construction).
    pub cycle_cap_per_instr: u64,
}

// `SimConfig` participates in the experiment engine's result-cache key,
// which needs `Eq + Hash`. The only non-`Eq` field is `invalidation_rate`:
// an `f64`, but always a configured probability constant (a literal or a
// parsed flag), never NaN — so the derived `PartialEq` is a total
// equivalence here.
impl Eq for SimConfig {}

impl std::hash::Hash for SimConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let Self {
            fetch_width,
            dispatch_width,
            issue_width,
            commit_width,
            rob_entries,
            iq_entries,
            int_units,
            fp_units,
            dcache_ports,
            mispredict_penalty,
            pair_recovery_extra,
            late_wakeup_penalty,
            invalidation_rate,
            lsq,
            hierarchy,
            cycle_cap_per_instr,
        } = self;
        fetch_width.hash(state);
        dispatch_width.hash(state);
        issue_width.hash(state);
        commit_width.hash(state);
        rob_entries.hash(state);
        iq_entries.hash(state);
        int_units.hash(state);
        fp_units.hash(state);
        dcache_ports.hash(state);
        mispredict_penalty.hash(state);
        pair_recovery_extra.hash(state);
        late_wakeup_penalty.hash(state);
        // Hash the bit pattern, normalizing -0.0 to 0.0 so that
        // `a == b` (IEEE equality) implies `hash(a) == hash(b)`.
        let rate = if *invalidation_rate == 0.0 {
            0.0f64
        } else {
            *invalidation_rate
        };
        rate.to_bits().hash(state);
        lsq.hash(state);
        hierarchy.hash(state);
        cycle_cap_per_instr.hash(state);
    }
}

impl Default for SimConfig {
    /// The paper's base processor (Table 1).
    fn default() -> Self {
        Self {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 256,
            iq_entries: 64,
            int_units: 8,
            fp_units: 8,
            dcache_ports: 4,
            mispredict_penalty: 14,
            pair_recovery_extra: 1,
            late_wakeup_penalty: 2,
            invalidation_rate: 0.0,
            lsq: LsqConfig::default(),
            hierarchy: HierarchyConfig::default(),
            cycle_cap_per_instr: 400,
        }
    }
}

impl SimConfig {
    /// A base processor with a specific LSQ design point.
    pub fn with_lsq(lsq: LsqConfig) -> Self {
        Self {
            lsq,
            ..Self::default()
        }
    }

    /// The §4.3 scaled processor: 12-wide issue, 96-entry issue queue,
    /// 3-cycle L1 (capacities unchanged).
    pub fn scaled(lsq: LsqConfig) -> Self {
        Self {
            fetch_width: 12,
            dispatch_width: 12,
            issue_width: 12,
            commit_width: 12,
            iq_entries: 96,
            int_units: 12,
            fp_units: 12,
            lsq,
            hierarchy: HierarchyConfig::scaled(),
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`lsq_core::ConfigError`] describing the first
    /// inconsistent field.
    pub fn validate(&self) -> Result<(), lsq_core::ConfigError> {
        use lsq_core::ConfigError;
        if self.fetch_width == 0
            || self.dispatch_width == 0
            || self.issue_width == 0
            || self.commit_width == 0
        {
            return Err(ConfigError::new("pipeline widths must be non-zero"));
        }
        if self.rob_entries == 0 || self.iq_entries == 0 {
            return Err(ConfigError::new("ROB and issue queue must be non-empty"));
        }
        if self.int_units == 0 || self.dcache_ports == 0 {
            return Err(ConfigError::new(
                "functional units and cache ports must be non-zero",
            ));
        }
        self.lsq.validate()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests mutate one field of a default config
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.int_units, 8);
        assert_eq!(c.fp_units, 8);
        assert_eq!(c.dcache_ports, 4);
        assert_eq!(c.mispredict_penalty, 14);
        assert_eq!(c.lsq.lq_entries, 32);
        assert_eq!(c.lsq.ports, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_matches_section_4_3() {
        let c = SimConfig::scaled(LsqConfig::all_techniques_one_port());
        assert_eq!(c.issue_width, 12);
        assert_eq!(c.iq_entries, 96);
        assert_eq!(c.hierarchy.l1d.hit_latency, 3);
        assert_eq!(c.rob_entries, 256, "capacities unchanged");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = SimConfig::default();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.rob_entries = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.lsq.ports = 0;
        assert!(c.validate().is_err());
    }
}
