//! Results of a simulation run.

use lsq_core::LsqStats;

/// Everything measured over one run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads_committed: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// Branches committed.
    pub branches_committed: u64,
    /// Branch predictions made (at fetch).
    pub branch_predictions: u64,
    /// Branch mispredictions (each stalls fetch and pays the redirect
    /// penalty).
    pub branch_mispredictions: u64,
    /// Pipeline squashes due to memory-order violations.
    pub violation_squashes: u64,
    /// Instructions squashed (refetched) across all causes.
    pub instructions_squashed: u64,
    /// Mean load-queue occupancy per cycle (paper Table 5).
    pub lq_occupancy: f64,
    /// Mean store-queue occupancy per cycle (paper Table 5).
    pub sq_occupancy: f64,
    /// Mean number of loads issued out of program order per cycle (paper
    /// Table 4).
    pub ooo_issued_loads: f64,
    /// Mean in-flight loads per cycle (the paper quotes ~41).
    pub inflight_loads: f64,
    /// LSQ event counters.
    pub lsq: LsqStats,
    /// L1 d-cache miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate.
    pub l2_miss_rate: f64,
    /// Whether the run ended by hitting the safety cycle cap rather than
    /// the instruction budget (indicates a deadlocked configuration).
    pub hit_cycle_cap: bool,
    /// Host wall-clock nanoseconds spent producing this result. Zero when
    /// the simulator is driven directly; the experiment engine fills it in
    /// with the whole job's duration (warm-up included). Not a simulated
    /// quantity — excluded from determinism comparisons.
    pub wall_nanos: u64,
    /// Simulated instructions (warm-up included) per host wall-clock
    /// second, in millions. Zero when the simulator is driven directly;
    /// filled in by the experiment engine alongside [`wall_nanos`].
    ///
    /// [`wall_nanos`]: SimResult::wall_nanos
    pub sim_mips: f64,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of IPCs; > 1.0 means faster).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        let b = base.ipc();
        if b == 0.0 {
            0.0
        } else {
            self.ipc() / b
        }
    }

    /// Branch misprediction rate.
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branch_predictions == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.branch_predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            loads_committed: 0,
            stores_committed: 0,
            branches_committed: 0,
            branch_predictions: 0,
            branch_mispredictions: 0,
            violation_squashes: 0,
            instructions_squashed: 0,
            lq_occupancy: 0.0,
            sq_occupancy: 0.0,
            ooo_issued_loads: 0.0,
            inflight_loads: 0.0,
            lsq: LsqStats::new(1),
            l1d_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            hit_cycle_cap: false,
            wall_nanos: 0,
            sim_mips: 0.0,
        }
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(blank().ipc(), 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut a = blank();
        a.cycles = 100;
        a.committed = 250;
        let mut b = blank();
        b.cycles = 100;
        b.committed = 200;
        assert_eq!(a.ipc(), 2.5);
        assert_eq!(a.speedup_over(&b), 1.25);
        assert_eq!(a.speedup_over(&blank()), 0.0);
    }

    #[test]
    fn branch_rate() {
        let mut r = blank();
        assert_eq!(r.branch_mispredict_rate(), 0.0);
        r.branch_predictions = 10;
        r.branch_mispredictions = 1;
        assert!((r.branch_mispredict_rate() - 0.1).abs() < 1e-12);
    }
}
