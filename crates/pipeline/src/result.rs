//! Results of a simulation run.

use crate::accounting::CpiStack;
use crate::lifecycle::StageLatency;
use crate::profile::PhaseProfile;
use lsq_core::LsqStats;

/// Everything measured over one run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads_committed: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// Branches committed.
    pub branches_committed: u64,
    /// Branch predictions made (at fetch).
    pub branch_predictions: u64,
    /// Branch mispredictions (each stalls fetch and pays the redirect
    /// penalty).
    pub branch_mispredictions: u64,
    /// Pipeline squashes due to memory-order violations.
    pub violation_squashes: u64,
    /// Instructions squashed (refetched) across all causes.
    pub instructions_squashed: u64,
    /// Mean load-queue occupancy per cycle (paper Table 5).
    pub lq_occupancy: f64,
    /// Mean store-queue occupancy per cycle (paper Table 5).
    pub sq_occupancy: f64,
    /// Mean number of loads issued out of program order per cycle (paper
    /// Table 4).
    pub ooo_issued_loads: f64,
    /// Mean in-flight loads per cycle (the paper quotes ~41).
    pub inflight_loads: f64,
    /// LSQ event counters.
    pub lsq: LsqStats,
    /// L1 d-cache miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate.
    pub l2_miss_rate: f64,
    /// Whether the run ended by hitting the safety cycle cap rather than
    /// the instruction budget (indicates a deadlocked configuration).
    pub hit_cycle_cap: bool,
    /// Host wall-clock nanoseconds spent producing this result. Zero when
    /// the simulator is driven directly; the experiment engine fills it in
    /// with the whole job's duration (warm-up included). Not a simulated
    /// quantity — excluded from determinism comparisons.
    pub wall_nanos: u64,
    /// Simulated instructions (warm-up included) per host wall-clock
    /// second, in millions. Zero when the simulator is driven directly;
    /// filled in by the experiment engine alongside [`wall_nanos`].
    ///
    /// [`wall_nanos`]: SimResult::wall_nanos
    pub sim_mips: f64,
    /// Per-phase wall-time self-profile, `None` unless the run was
    /// profiled (see [`crate::profile`]). Host-side timing, not a
    /// simulated quantity — excluded from determinism comparisons.
    pub profile: Option<PhaseProfile>,
    /// Per-component CPI stack, `None` unless the run was accounted
    /// (see [`crate::accounting`]). Fully deterministic — the stack's
    /// components sum exactly to `cycles × commit_width`.
    pub cpi_stack: Option<CpiStack>,
    /// Per-stage latency histograms over committed instructions, `None`
    /// unless a lifecycle recorder was attached (see
    /// [`crate::lifecycle`]). Fully deterministic.
    pub stage_latency: Option<StageLatency>,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of IPCs; > 1.0 means faster).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        let b = base.ipc();
        if b == 0.0 {
            0.0
        } else {
            self.ipc() / b
        }
    }

    /// Branch misprediction rate.
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branch_predictions == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.branch_predictions as f64
        }
    }

    /// Every counter of this result as a metrics registry — the single
    /// source for `bin/diag`'s text report and the experiment engine's
    /// JSON records, including the Table 3 predictor counters.
    pub fn registry(&self, title: &str) -> lsq_obs::Registry {
        use lsq_obs::Registry;
        let s = &self.lsq;
        let mut reg = Registry::new(title)
            .section(
                Registry::named("run")
                    .count("cycles", self.cycles)
                    .count("committed", self.committed)
                    .float("ipc", self.ipc())
                    .count("hit_cycle_cap", u64::from(self.hit_cycle_cap)),
            )
            .section(
                Registry::named("volume")
                    .count("loads_committed", self.loads_committed)
                    .count("stores_committed", self.stores_committed)
                    .count("branches_committed", self.branches_committed)
                    .count("loads_dispatched", s.loads_dispatched)
                    .count("stores_dispatched", s.stores_dispatched)
                    .count("loads_issued", s.loads_issued)
                    .count("stores_issued", s.stores_issued),
            )
            .section(
                Registry::named("frontend")
                    .count("branch_predictions", self.branch_predictions)
                    .count("branch_mispredictions", self.branch_mispredictions)
                    .percent(
                        "branch_mispredict_rate",
                        self.branch_mispredict_rate() * 100.0,
                    ),
            )
            .section(
                Registry::named("memory")
                    .percent("l1d_miss_rate", self.l1d_miss_rate * 100.0)
                    .percent("l2_miss_rate", self.l2_miss_rate * 100.0),
            )
            .section(
                Registry::named("searches")
                    .count("sq_searches", s.sq_searches)
                    .count("sq_search_hits", s.sq_search_hits)
                    .percent("sq_search_fraction", s.sq_search_fraction() * 100.0)
                    .count("lq_searches_by_stores", s.lq_searches_by_stores)
                    .count("lq_searches_by_loads", s.lq_searches_by_loads)
                    .count("lb_searches", s.lb_searches),
            )
            .section(
                Registry::named("predictor (Table 3)")
                    .count("violations", s.violations)
                    .count("commit_violations", s.commit_violations)
                    .count("useless_searches", s.useless_searches)
                    .count("load_load_violations", s.load_load_violations)
                    .percent("pair_mispred_rate", s.pair_mispred_rate() * 100.0)
                    .percent("pair_squash_rate", s.pair_squash_rate() * 100.0)
                    .count("store_set_waits", s.store_set_waits),
            )
            .section(
                Registry::named("squashes")
                    .count("violation_squashes", self.violation_squashes)
                    .count("instructions_squashed", self.instructions_squashed)
                    .count("invalidations", s.invalidations)
                    .count("invalidation_squashes", s.invalidation_squashes),
            )
            .section(
                Registry::named("stalls")
                    .count("sq_port_stalls", s.sq_port_stalls)
                    .count("lq_port_stalls", s.lq_port_stalls)
                    .count("commit_port_delays", s.commit_port_delays)
                    .count("lb_full_stalls", s.lb_full_stalls)
                    .count("in_order_stalls", s.in_order_stalls),
            )
            .section(
                Registry::named("occupancy")
                    .float("lq_occupancy", self.lq_occupancy)
                    .float("sq_occupancy", self.sq_occupancy)
                    .float("ooo_issued_loads", self.ooo_issued_loads)
                    .float("inflight_loads", self.inflight_loads),
            );
        // Segment-search depth distribution, only meaningful when the
        // histogram saw any searches.
        if s.seg_search_hist.count() > 0 {
            let mut seg = Registry::named("segment searches");
            for (k, _) in s.seg_search_hist.iter() {
                seg = seg.percent(
                    &format!("within_{}_segments", k + 1),
                    s.seg_search_fraction(k) * 100.0,
                );
            }
            reg = reg.section(seg);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            loads_committed: 0,
            stores_committed: 0,
            branches_committed: 0,
            branch_predictions: 0,
            branch_mispredictions: 0,
            violation_squashes: 0,
            instructions_squashed: 0,
            lq_occupancy: 0.0,
            sq_occupancy: 0.0,
            ooo_issued_loads: 0.0,
            inflight_loads: 0.0,
            lsq: LsqStats::new(1),
            l1d_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            hit_cycle_cap: false,
            wall_nanos: 0,
            cpi_stack: None,
            stage_latency: None,
            sim_mips: 0.0,
            profile: None,
        }
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(blank().ipc(), 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut a = blank();
        a.cycles = 100;
        a.committed = 250;
        let mut b = blank();
        b.cycles = 100;
        b.committed = 200;
        assert_eq!(a.ipc(), 2.5);
        assert_eq!(a.speedup_over(&b), 1.25);
        assert_eq!(a.speedup_over(&blank()), 0.0);
    }

    #[test]
    fn registry_carries_table3_counters_and_round_trips() {
        let mut r = blank();
        r.cycles = 200;
        r.committed = 100;
        r.lsq.commit_violations = 7;
        r.lsq.useless_searches = 11;
        r.lsq.load_load_violations = 3;
        let reg = r.registry("unit test");
        let text = reg.render();
        assert!(text.contains("predictor (Table 3)"));
        assert!(text.contains("commit_violations"));
        assert!(text.contains("useless_searches"));
        assert!(text.contains("load_load_violations"));
        let json = lsq_obs::Json::parse(&reg.to_json().to_string()).unwrap();
        let pred = json.get("predictor (Table 3)").unwrap();
        assert_eq!(
            pred.get("commit_violations")
                .and_then(lsq_obs::Json::as_u64),
            Some(7)
        );
        assert_eq!(
            pred.get("useless_searches").and_then(lsq_obs::Json::as_u64),
            Some(11)
        );
        assert_eq!(
            pred.get("load_load_violations")
                .and_then(lsq_obs::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            json.get("run")
                .and_then(|r| r.get("ipc"))
                .and_then(lsq_obs::Json::as_f64),
            Some(0.5)
        );
    }

    #[test]
    fn branch_rate() {
        let mut r = blank();
        assert_eq!(r.branch_mispredict_rate(), 0.0);
        r.branch_predictions = 10;
        r.branch_mispredictions = 1;
        assert!((r.branch_mispredict_rate() - 0.1).abs() < 1e-12);
    }
}
