//! The hybrid GAg/PAg branch predictor of the paper's Table 1: a global
//! two-level component (GAg), a per-address two-level component (PAg),
//! 4K-entry pattern tables each, and a chooser that learns per-branch
//! which component to trust.
//!
//! The simulator is trace-driven, so the predictor is consulted and
//! trained at fetch (the standard trace-driven discipline); a wrong
//! prediction stalls fetch until the branch resolves and then charges the
//! Table 1 redirect penalty.

use lsq_isa::Pc;

const PATTERN_BITS: u32 = 12; // 4K-entry pattern tables
const LOCAL_HISTORIES: u32 = 10; // 1K per-address history registers
const CHOOSER_BITS: u32 = 12;

#[inline]
fn counter_predict(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// Hybrid GAg + PAg predictor with a per-branch chooser.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    ghist: u16,
    gag: Vec<u8>,
    local_hist: Vec<u16>,
    pag: Vec<u8>,
    chooser: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl Default for HybridPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl HybridPredictor {
    /// Builds the Table 1 predictor (4K-entry GAg and PAg tables).
    pub fn new() -> Self {
        Self {
            ghist: 0,
            // Weakly taken start: loopy code predicts well immediately.
            gag: vec![2; 1 << PATTERN_BITS],
            local_hist: vec![0; 1 << LOCAL_HISTORIES],
            pag: vec![2; 1 << PATTERN_BITS],
            chooser: vec![2; 1 << CHOOSER_BITS],
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the branch at `pc`, trains on the actual outcome, and
    /// returns whether the prediction was **correct**.
    pub fn predict_and_update(&mut self, pc: Pc, taken: bool) -> bool {
        let gidx = (self.ghist as usize) & ((1 << PATTERN_BITS) - 1);
        let lhidx = pc.index(LOCAL_HISTORIES);
        let lidx = (self.local_hist[lhidx] as usize) & ((1 << PATTERN_BITS) - 1);
        let cidx = pc.index(CHOOSER_BITS);

        let gpred = counter_predict(self.gag[gidx]);
        let lpred = counter_predict(self.pag[lidx]);
        let use_local = counter_predict(self.chooser[cidx]);
        let pred = if use_local { lpred } else { gpred };

        // Train the chooser toward whichever component was right.
        if gpred != lpred {
            counter_update(&mut self.chooser[cidx], lpred == taken);
        }
        counter_update(&mut self.gag[gidx], taken);
        counter_update(&mut self.pag[lidx], taken);
        self.ghist = (self.ghist << 1) | u16::from(taken);
        self.local_hist[lhidx] = (self.local_hist[lhidx] << 1) | u16::from(taken);

        self.predictions += 1;
        let correct = pred == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate; 0.0 before any prediction.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsq_util::rng::Xoshiro256;

    #[test]
    fn learns_always_taken() {
        let mut p = HybridPredictor::new();
        for _ in 0..200 {
            p.predict_and_update(Pc(0x400), true);
        }
        // After warmup, a monomorphic branch is predicted perfectly.
        let before = p.mispredictions();
        for _ in 0..200 {
            p.predict_and_update(Pc(0x400), true);
        }
        assert_eq!(p.mispredictions(), before);
    }

    #[test]
    fn learns_short_loop_pattern() {
        // T T T N repeating: local history disambiguates perfectly.
        let mut p = HybridPredictor::new();
        for i in 0..400usize {
            p.predict_and_update(Pc(0x800), i % 4 != 3);
        }
        let before = p.mispredictions();
        for i in 0..400usize {
            p.predict_and_update(Pc(0x800), i % 4 != 3);
        }
        let tail_misses = p.mispredictions() - before;
        assert!(
            tail_misses < 20,
            "periodic pattern should be learned, {tail_misses} late misses"
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut p = HybridPredictor::new();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..20_000 {
            p.predict_and_update(Pc(0xc00), rng.chance(0.5));
        }
        let rate = p.mispredict_rate();
        assert!((0.4..0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn biased_branches_mispredict_near_bias() {
        let mut p = HybridPredictor::new();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..40_000 {
            p.predict_and_update(Pc(0x1000), rng.chance(0.9));
        }
        let rate = p.mispredict_rate();
        assert!(rate < 0.2, "90%-biased branch rate {rate}");
    }

    #[test]
    fn interleaved_branches_use_local_histories() {
        // Branch A always taken, branch B alternates: PAg separates them.
        let mut p = HybridPredictor::new();
        let mut flip = false;
        for _ in 0..2000 {
            p.predict_and_update(Pc(0x2000), true);
            flip = !flip;
            p.predict_and_update(Pc(0x2004), flip);
        }
        let before = p.mispredictions();
        for _ in 0..1000 {
            p.predict_and_update(Pc(0x2000), true);
            flip = !flip;
            p.predict_and_update(Pc(0x2004), flip);
        }
        let tail = p.mispredictions() - before;
        assert!(tail < 50, "interleaved patterns should be learned ({tail})");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = HybridPredictor::new();
        assert_eq!(p.mispredict_rate(), 0.0);
        p.predict_and_update(Pc(4), true);
        assert_eq!(p.predictions(), 1);
    }
}
