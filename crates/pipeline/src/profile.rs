//! The simulator self-profiler: scoped wall-time phase timers.
//!
//! Mirrors the tracer's zero-cost pattern ([`lsq_obs::NopTracer`]): the
//! simulator is generic over a [`Profiler`], the default [`NopProfiler`]
//! reports `enabled() == false` as a compile-time constant, and every
//! timing site sits behind that check — an unprofiled simulator
//! monomorphizes to the untimed code, taking no `Instant::now()` calls
//! on the hot path. `tests/telemetry_profile.rs` pins counter equality
//! between profiled and unprofiled runs; the interleaved A/B geomean in
//! EXPERIMENTS.md pins throughput.
//!
//! Phase semantics are *inclusive*: [`Phase::LsqSearch`] time (the
//! issue-side SQ/LQ/LB searches) is also inside [`Phase::WakeupIssue`],
//! and [`Phase::Squash`] time is inside whichever phase detected the
//! violation (commit-time drains or issue). Summing top-level phases
//! therefore approximates a cycle's cost; the nested phases attribute
//! it. Commit-time violation searches performed by store drains are
//! charged to [`Phase::Commit`] only.

use lsq_obs::Json;

/// A named region of [`Simulator::step`](crate::Simulator::step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Fetch stage: i-cache access, branch prediction, replay refill.
    Fetch,
    /// Dispatch stage: rename, ROB/IQ/LSQ allocation.
    Dispatch,
    /// Issue stage: event-driven wakeup (calendar/ready drain) plus
    /// execute-side bookkeeping. Includes [`Phase::LsqSearch`].
    WakeupIssue,
    /// Issue-side SQ/LQ/LB associative searches (`load_issue` /
    /// `store_issue`). Nested inside [`Phase::WakeupIssue`].
    LsqSearch,
    /// Per-cycle LSQ housekeeping, notably segment advance under the
    /// segmented schemes (`begin_cycle`).
    SegmentAdvance,
    /// Commit stage: background store drains (with their commit-time
    /// violation searches) plus in-order retirement.
    Commit,
    /// Squash-and-refetch recovery. Nested inside the detecting phase.
    Squash,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 7] = [
        Phase::Fetch,
        Phase::Dispatch,
        Phase::WakeupIssue,
        Phase::LsqSearch,
        Phase::SegmentAdvance,
        Phase::Commit,
        Phase::Squash,
    ];

    /// Stable snake_case name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fetch => "fetch",
            Phase::Dispatch => "dispatch",
            Phase::WakeupIssue => "wakeup_issue",
            Phase::LsqSearch => "lsq_search",
            Phase::SegmentAdvance => "segment_advance",
            Phase::Commit => "commit",
            Phase::Squash => "squash",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A profiling sink for the simulator. The default methods are the
/// no-op implementation, so [`NopProfiler`] is just the trait's
/// defaults; timing sites guard on [`Profiler::enabled`], which must be
/// a constant `false` for the no-op to vanish under monomorphization.
pub trait Profiler {
    /// Whether timing sites should take timestamps at all.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Adds one timed invocation of `phase`.
    #[inline]
    fn record(&mut self, phase: Phase, nanos: u64) {
        let _ = (phase, nanos);
    }

    /// The accumulated per-phase report, or `None` when disabled.
    fn report(&self) -> Option<PhaseProfile> {
        None
    }
}

/// The zero-cost default: profiling disabled, all sites compile away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopProfiler;

// Spelled out so lsq-lint's zero-cost-nop rule can check the contract
// locally: every method trivial and #[inline(always)].
impl Profiler for NopProfiler {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _phase: Phase, _nanos: u64) {}

    #[inline(always)]
    fn report(&self) -> Option<PhaseProfile> {
        None
    }
}

/// Accumulates wall time and invocation counts per phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallProfiler {
    nanos: [u64; Phase::ALL.len()],
    calls: [u64; Phase::ALL.len()],
}

impl WallProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Profiler for WallProfiler {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, phase: Phase, nanos: u64) {
        let i = phase.index();
        self.nanos[i] += nanos;
        self.calls[i] += 1;
    }

    fn report(&self) -> Option<PhaseProfile> {
        Some(PhaseProfile {
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseStat {
                    phase: p.name().to_string(),
                    calls: self.calls[p.index()],
                    nanos: self.nanos[p.index()],
                })
                .collect(),
        })
    }
}

/// One phase's accumulated totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Timed invocations.
    pub calls: u64,
    /// Total wall nanoseconds across those invocations.
    pub nanos: u64,
}

/// A per-run (or aggregated) phase report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-phase totals, in [`Phase::ALL`] order for single runs;
    /// merged reports keep the union of phase names.
    pub phases: Vec<PhaseStat>,
}

impl PhaseProfile {
    /// Total nanoseconds across phases, counting nested phases once
    /// (the nested [`Phase::LsqSearch`] and [`Phase::Squash`] spans are
    /// already inside their parents).
    pub fn total_nanos(&self) -> u64 {
        self.phases
            .iter()
            .filter(|s| s.phase != "lsq_search" && s.phase != "squash")
            .map(|s| s.nanos)
            .sum()
    }

    /// Folds another report into this one, matching phases by name and
    /// appending phases this report has not seen.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for stat in &other.phases {
            match self.phases.iter_mut().find(|s| s.phase == stat.phase) {
                Some(mine) => {
                    mine.calls += stat.calls;
                    mine.nanos += stat.nanos;
                }
                None => self.phases.push(stat.clone()),
            }
        }
    }

    /// Serializes as `{"phase_name": {"calls": n, "nanos": n}, ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            self.phases
                .iter()
                .map(|s| {
                    (
                        s.phase.as_str(),
                        Json::obj(vec![("calls", s.calls.into()), ("nanos", s.nanos.into())]),
                    )
                })
                .collect(),
        )
    }

    /// Parses the [`PhaseProfile::to_json`] layout; `None` on shape
    /// mismatch.
    pub fn from_json(json: &Json) -> Option<Self> {
        let obj = json.as_obj()?;
        let mut phases = Vec::with_capacity(obj.len());
        for (name, stat) in obj {
            phases.push(PhaseStat {
                phase: name.clone(),
                calls: stat.get("calls")?.as_u64()?,
                nanos: stat.get("nanos")?.as_u64()?,
            });
        }
        Some(Self { phases })
    }

    /// A human-readable table: phase, calls, total ms, share of the
    /// un-nested total.
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::from("phase              calls          ms   share\n");
        for s in &self.phases {
            let nested = s.phase == "lsq_search" || s.phase == "squash";
            out.push_str(&format!(
                "{}{:<17} {:>9} {:>11.3} {:>6.1}%\n",
                if nested { "  " } else { "" },
                s.phase,
                s.calls,
                s.nanos as f64 / 1e6,
                100.0 * s.nanos as f64 / total as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_profiler_is_disabled_and_reports_nothing() {
        let mut p = NopProfiler;
        assert!(!p.enabled());
        p.record(Phase::Fetch, 123);
        assert_eq!(p.report(), None);
    }

    #[test]
    fn wall_profiler_accumulates_per_phase() {
        let mut p = WallProfiler::new();
        p.record(Phase::Fetch, 10);
        p.record(Phase::Fetch, 5);
        p.record(Phase::Commit, 7);
        let report = p.report().expect("enabled");
        let fetch = report.phases.iter().find(|s| s.phase == "fetch").unwrap();
        assert_eq!((fetch.calls, fetch.nanos), (2, 15));
        let commit = report.phases.iter().find(|s| s.phase == "commit").unwrap();
        assert_eq!((commit.calls, commit.nanos), (1, 7));
        // Every phase appears, even untouched ones.
        assert_eq!(report.phases.len(), Phase::ALL.len());
    }

    #[test]
    fn total_excludes_nested_phases() {
        let mut p = WallProfiler::new();
        p.record(Phase::WakeupIssue, 100);
        p.record(Phase::LsqSearch, 60); // inside WakeupIssue
        p.record(Phase::Commit, 40);
        p.record(Phase::Squash, 10); // inside Commit
        assert_eq!(p.report().unwrap().total_nanos(), 140);
    }

    #[test]
    fn merge_matches_by_name() {
        let mut p = WallProfiler::new();
        p.record(Phase::Fetch, 10);
        let mut a = p.report().unwrap();
        let mut q = WallProfiler::new();
        q.record(Phase::Fetch, 5);
        q.record(Phase::Dispatch, 3);
        a.merge(&q.report().unwrap());
        let fetch = a.phases.iter().find(|s| s.phase == "fetch").unwrap();
        assert_eq!((fetch.calls, fetch.nanos), (2, 15));
        let dispatch = a.phases.iter().find(|s| s.phase == "dispatch").unwrap();
        assert_eq!((dispatch.calls, dispatch.nanos), (1, 3));
    }

    #[test]
    fn json_round_trip() {
        let mut p = WallProfiler::new();
        p.record(Phase::LsqSearch, 42);
        p.record(Phase::Squash, 1);
        let report = p.report().unwrap();
        let text = report.to_json().to_string();
        let back = PhaseProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_marks_nested_phases() {
        let mut p = WallProfiler::new();
        p.record(Phase::WakeupIssue, 2_000_000);
        p.record(Phase::LsqSearch, 1_000_000);
        let text = p.report().unwrap().render();
        assert!(text.contains("wakeup_issue"), "{text}");
        assert!(text.contains("  lsq_search"), "{text}");
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "fetch",
                "dispatch",
                "wakeup_issue",
                "lsq_search",
                "segment_advance",
                "commit",
                "squash"
            ]
        );
    }
}
