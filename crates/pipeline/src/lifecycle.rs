//! Per-instruction lifecycle recording: pipeline-viewer records,
//! stage-latency histograms, and critical-path analysis.
//!
//! The CPI stacks (see [`crate::accounting`]) attribute *commit slots*;
//! this module attributes *an instruction's own cycles*. The simulator
//! stamps every in-flight instruction at fetch, dispatch, issue (which
//! also fixes the writeback cycle — completion latency is computed at
//! issue), commit, and squash (with cause). From the finished records
//! it derives:
//!
//! * [`PipeRecord`]s rendered as Konata / O3PipeView logs (see
//!   [`lsq_obs::pipeview`]), bounded by a finished-record ring
//!   (`LSQ_PIPEVIEW_CAP`) so memory stays flat on long runs — evicted
//!   records are counted, never silently lost;
//! * [`StageLatency`]: per-stage latency histograms (dispatch→issue,
//!   issue→memory, SQ-search wait, load-buffer residency) folded into
//!   [`SimResult`](crate::SimResult) and the experiment records;
//! * [`CriticalPath`]: the longest producer→consumer dependency chain
//!   over the recorded lifetimes, with every cycle of the chain
//!   attributed to exactly one component (the per-instruction analogue
//!   of the CPI stack's partition invariant).
//!
//! The machinery mirrors the tracer/profiler/accountant zero-cost
//! pattern: the simulator is generic over a [`Lifecycle`], the default
//! [`NopLifecycle`] reports `enabled() == false` as a compile-time
//! constant, and every stamp site sits behind that check — an
//! unrecorded simulator monomorphizes to the pre-lifecycle code.

use lsq_obs::{Json, PipeRecord, SquashCause};

use lsq_isa::Instruction;
use lsq_stats::Histogram;

/// Bucket count of every stage-latency histogram: latencies
/// `0..STAGE_BUCKETS` cycles resolve exactly, longer ones clamp into
/// the last bucket and count as overflow.
pub const STAGE_BUCKETS: usize = 64;

/// The stage-latency histogram names, in [`StageLatency::stages`]
/// order — also the `stage` label values of the
/// `lsq_stage_latency_cycles` metric.
pub const STAGE_NAMES: [&str; 4] = [
    "dispatch_to_issue",
    "issue_to_mem",
    "sq_search_wait",
    "lb_residency",
];

/// A lifecycle sink for the simulator. The default methods are the
/// no-op implementation, so [`NopLifecycle`] is just the trait's
/// defaults; stamp sites guard on [`Lifecycle::enabled`], which must be
/// a constant `false` for the no-op to vanish under monomorphization.
pub trait Lifecycle {
    /// Whether stamp sites should record at all.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Tells the recorder the maximum number of simultaneously
    /// in-flight instructions (ROB entries plus the fetch buffer);
    /// called once at simulator construction.
    #[inline]
    fn init(&mut self, max_inflight: usize) {
        let _ = max_inflight;
    }

    /// `seq` entered the frontend at `cycle`.
    #[inline]
    fn fetch(&mut self, seq: u64, cycle: u64, instr: &Instruction) {
        let _ = (seq, cycle, instr);
    }

    /// `seq` entered the ROB/queues at `cycle`, waiting on the renamed
    /// producers in `deps`.
    #[inline]
    fn dispatch(&mut self, seq: u64, cycle: u64, deps: [Option<u64>; 2]) {
        let _ = (seq, cycle, deps);
    }

    /// `seq` issued at `cycle`; its result is available at `writeback`.
    /// For loads, `sq_extra` is the segmented SQ-search's extra latency
    /// and `mem_level` the deepest hierarchy level reached
    /// (0 = L1/forward, 1 = L2, 2 = memory).
    #[inline]
    fn issue(&mut self, seq: u64, cycle: u64, writeback: u64, sq_extra: u32, mem_level: u8) {
        let _ = (seq, cycle, writeback, sq_extra, mem_level);
    }

    /// `seq` retired at `cycle`.
    #[inline]
    fn commit(&mut self, seq: u64, cycle: u64) {
        let _ = (seq, cycle);
    }

    /// Every in-flight instruction in `victim..fetched_through` was
    /// squashed at `cycle`; their records are terminated with `cause`.
    /// Called before the simulator rewinds its fetch sequence, so
    /// `fetched_through` is the pre-squash fetch frontier.
    #[inline]
    fn squash(&mut self, victim: u64, fetched_through: u64, cycle: u64, cause: SquashCause) {
        let _ = (victim, fetched_through, cycle, cause);
    }

    /// The accumulated stage-latency histograms, or `None` when
    /// disabled.
    fn report(&self) -> Option<StageLatency> {
        None
    }

    /// Drains the finished-record ring, oldest first; `None` when
    /// disabled.
    fn take_records(&mut self) -> Option<Vec<PipeRecord>> {
        None
    }

    /// Finished records evicted because the ring was full.
    #[inline]
    fn dropped(&self) -> u64 {
        0
    }
}

/// The zero-cost default: lifecycle recording disabled, all stamp
/// sites compile away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopLifecycle;

// Spelled out so lsq-lint's zero-cost-nop rule can check the contract
// locally: every method trivial and #[inline(always)].
impl Lifecycle for NopLifecycle {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn init(&mut self, _max_inflight: usize) {}

    #[inline(always)]
    fn fetch(&mut self, _seq: u64, _cycle: u64, _instr: &Instruction) {}

    #[inline(always)]
    fn dispatch(&mut self, _seq: u64, _cycle: u64, _deps: [Option<u64>; 2]) {}

    #[inline(always)]
    fn issue(&mut self, _seq: u64, _cycle: u64, _writeback: u64, _sq_extra: u32, _mem_level: u8) {}

    #[inline(always)]
    fn commit(&mut self, _seq: u64, _cycle: u64) {}

    #[inline(always)]
    fn squash(&mut self, _victim: u64, _fetched_through: u64, _cycle: u64, _cause: SquashCause) {}

    #[inline(always)]
    fn report(&self) -> Option<StageLatency> {
        None
    }

    #[inline(always)]
    fn take_records(&mut self) -> Option<Vec<PipeRecord>> {
        None
    }

    #[inline(always)]
    fn dropped(&self) -> u64 {
        0
    }
}

/// Records every instruction's lifetime into a bounded ring.
///
/// Live (in-flight) records sit in a direct-mapped array indexed by
/// `seq % capacity` — collision-free because the simulator bounds the
/// in-flight seq window by [`Lifecycle::init`]'s argument. Finished
/// records (committed or squashed) move to a ring of
/// `LSQ_PIPEVIEW_CAP` entries; when it fills, the oldest record is
/// evicted and counted in [`PipeviewRecorder::dropped`]
/// (`lsq_pipeview_dropped_total`). Both arrays are preallocated: the
/// record path never allocates.
#[derive(Debug, Clone)]
pub struct PipeviewRecorder {
    /// In-flight records, direct-mapped by `seq % live.len()`.
    live: Vec<PipeRecord>,
    /// Finished-record ring.
    done: Vec<PipeRecord>,
    /// Index of the oldest entry once the ring has wrapped.
    done_start: usize,
    /// Ring capacity.
    cap: usize,
    /// Finished records evicted from a full ring.
    dropped: u64,
    stages: StageLatency,
}

impl PipeviewRecorder {
    /// Creates a recorder whose finished-record ring holds `capacity`
    /// records (oldest evicted first). The live array is sized by the
    /// simulator through [`Lifecycle::init`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pipeview ring needs at least one record");
        Self {
            live: Vec::new(),
            done: Vec::with_capacity(capacity),
            done_start: 0,
            cap: capacity,
            dropped: 0,
            stages: StageLatency::new(),
        }
    }

    // lsq-lint: hot
    #[inline]
    fn slot(&mut self, seq: u64) -> &mut PipeRecord {
        debug_assert!(!self.live.is_empty(), "recorder used before init");
        let idx = (seq % self.live.len() as u64) as usize;
        &mut self.live[idx]
    }

    /// Moves a finished record into the ring, evicting the oldest when
    /// full, and vacates the live slot.
    // lsq-lint: hot
    #[inline]
    fn finalize(&mut self, seq: u64) {
        let r = std::mem::replace(self.slot(seq), PipeRecord::vacant());
        debug_assert_eq!(r.seq, seq, "finalizing a slot another seq owns");
        if self.done.len() < self.cap {
            self.done.push(r);
        } else {
            self.done[self.done_start] = r;
            self.done_start = (self.done_start + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

impl Lifecycle for PipeviewRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn init(&mut self, max_inflight: usize) {
        self.live = vec![PipeRecord::vacant(); max_inflight.max(1)];
    }

    // lsq-lint: hot
    #[inline]
    fn fetch(&mut self, seq: u64, cycle: u64, instr: &Instruction) {
        let slot = self.slot(seq);
        debug_assert!(
            !slot.is_occupied(),
            "live window exceeded the init() bound: seq {seq} collides with {}",
            slot.seq
        );
        *slot = PipeRecord {
            seq,
            pc: instr.pc,
            addr: instr.addr,
            kind: instr.kind,
            fetch: cycle,
            ..PipeRecord::vacant()
        };
    }

    // lsq-lint: hot
    #[inline]
    fn dispatch(&mut self, seq: u64, cycle: u64, deps: [Option<u64>; 2]) {
        let slot = self.slot(seq);
        debug_assert_eq!(slot.seq, seq, "dispatch stamp on an unfetched seq");
        slot.dispatch = Some(cycle);
        slot.deps = deps;
    }

    // lsq-lint: hot
    #[inline]
    fn issue(&mut self, seq: u64, cycle: u64, writeback: u64, sq_extra: u32, mem_level: u8) {
        let slot = self.slot(seq);
        debug_assert_eq!(slot.seq, seq, "issue stamp on an unfetched seq");
        slot.issue = Some(cycle);
        slot.writeback = Some(writeback);
        slot.sq_extra = sq_extra;
        slot.mem_level = mem_level;
    }

    // lsq-lint: hot
    #[inline]
    fn commit(&mut self, seq: u64, cycle: u64) {
        let slot = self.slot(seq);
        debug_assert_eq!(slot.seq, seq, "commit stamp on an unfetched seq");
        slot.commit = Some(cycle);
        self.stages
            .observe(&self.live[(seq % self.live.len() as u64) as usize]);
        self.finalize(seq);
    }

    // lsq-lint: hot
    fn squash(&mut self, victim: u64, fetched_through: u64, cycle: u64, cause: SquashCause) {
        // The in-flight window is bounded by the live array, so this
        // loop is O(live.len()) worst case.
        for seq in victim..fetched_through {
            let slot = self.slot(seq);
            if slot.seq != seq {
                continue;
            }
            slot.squash = Some((cycle, cause));
            self.finalize(seq);
        }
    }

    fn report(&self) -> Option<StageLatency> {
        Some(self.stages.clone())
    }

    fn take_records(&mut self) -> Option<Vec<PipeRecord>> {
        let mut v = std::mem::take(&mut self.done);
        if v.len() == self.cap {
            v.rotate_left(self.done_start);
        }
        self.done_start = 0;
        self.done.reserve(self.cap);
        Some(v)
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Per-stage latency histograms over committed instructions. Counters
/// are cumulative and monotone, so snapshots of one run can be
/// differenced with [`StageLatency::minus`] (warm-up windowing) and
/// batches folded with [`StageLatency::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Dispatch→issue wait, every committed instruction.
    pub dispatch_to_issue: Histogram,
    /// Issue→writeback (memory) latency, committed loads.
    pub issue_to_mem: Histogram,
    /// Extra cycles of the segmented SQ forwarding search, committed
    /// loads.
    pub sq_search_wait: Histogram,
    /// Issue→commit residency (the window the load buffer / LQ must
    /// cover), committed loads.
    pub lb_residency: Histogram,
}

impl Default for StageLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl StageLatency {
    /// Creates empty histograms ([`STAGE_BUCKETS`] buckets each).
    pub fn new() -> Self {
        Self {
            dispatch_to_issue: Histogram::new(STAGE_BUCKETS),
            issue_to_mem: Histogram::new(STAGE_BUCKETS),
            sq_search_wait: Histogram::new(STAGE_BUCKETS),
            lb_residency: Histogram::new(STAGE_BUCKETS),
        }
    }

    /// Folds one committed record in; records missing stamps (possible
    /// only for squashed or in-flight records) contribute nothing.
    // lsq-lint: hot
    #[inline]
    pub fn observe(&mut self, r: &PipeRecord) {
        let (Some(dispatch), Some(issue), Some(commit)) = (r.dispatch, r.issue, r.commit) else {
            return;
        };
        self.dispatch_to_issue
            .record(issue.saturating_sub(dispatch) as usize);
        if r.kind.is_load() {
            let wb = r.writeback.unwrap_or(issue);
            self.issue_to_mem.record(wb.saturating_sub(issue) as usize);
            self.sq_search_wait.record(r.sq_extra as usize);
            self.lb_residency
                .record(commit.saturating_sub(issue) as usize);
        }
    }

    /// The histograms with their stable names, in [`STAGE_NAMES`] order.
    pub fn stages(&self) -> [(&'static str, &Histogram); 4] {
        [
            (STAGE_NAMES[0], &self.dispatch_to_issue),
            (STAGE_NAMES[1], &self.issue_to_mem),
            (STAGE_NAMES[2], &self.sq_search_wait),
            (STAGE_NAMES[3], &self.lb_residency),
        ]
    }

    fn stages_mut(&mut self) -> [(&'static str, &mut Histogram); 4] {
        [
            (STAGE_NAMES[0], &mut self.dispatch_to_issue),
            (STAGE_NAMES[1], &mut self.issue_to_mem),
            (STAGE_NAMES[2], &mut self.sq_search_wait),
            (STAGE_NAMES[3], &mut self.lb_residency),
        ]
    }

    /// Total observations across the four histograms.
    pub fn count(&self) -> u64 {
        self.stages().iter().map(|(_, h)| h.count()).sum()
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &StageLatency) {
        self.dispatch_to_issue.merge(&other.dispatch_to_issue);
        self.issue_to_mem.merge(&other.issue_to_mem);
        self.sq_search_wait.merge(&other.sq_search_wait);
        self.lb_residency.merge(&other.lb_residency);
    }

    /// The stage-wise difference `self − earlier`: the histograms of
    /// the instructions committed after `earlier` was captured. Used
    /// for warm-up differencing.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prefix snapshot of this run (see
    /// [`Histogram::subtract`]).
    pub fn minus(&self, earlier: &StageLatency) -> StageLatency {
        let mut d = self.clone();
        d.dispatch_to_issue.subtract(&earlier.dispatch_to_issue);
        d.issue_to_mem.subtract(&earlier.issue_to_mem);
        d.sq_search_wait.subtract(&earlier.sq_search_wait);
        d.lb_residency.subtract(&earlier.lb_residency);
        d
    }

    /// Serializes as `{"stage": {"counts": [...], "overflow": n}, ...}`
    /// with trailing zero counts trimmed.
    pub fn to_json(&self) -> Json {
        Json::obj(
            self.stages()
                .iter()
                .map(|(name, h)| {
                    let mut counts: Vec<Json> = h.iter().map(|(_, c)| Json::from(c)).collect();
                    while counts.len() > 1
                        && matches!(counts.last(), Some(j) if j.as_u64() == Some(0))
                    {
                        counts.pop();
                    }
                    (
                        *name,
                        Json::obj(vec![
                            ("counts", Json::Arr(counts)),
                            ("overflow", h.overflow().into()),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Parses the [`StageLatency::to_json`] layout; `None` on shape
    /// mismatch.
    pub fn from_json(json: &Json) -> Option<Self> {
        let mut out = StageLatency::new();
        for (name, h) in out.stages_mut() {
            let stage = json.get(name)?;
            let mut counts: Vec<u64> = stage
                .get("counts")?
                .as_arr()?
                .iter()
                .map(|j| j.as_u64())
                .collect::<Option<Vec<u64>>>()?;
            if counts.len() > STAGE_BUCKETS {
                return None;
            }
            counts.resize(STAGE_BUCKETS, 0);
            *h = Histogram::from_parts(counts, stage.get("overflow")?.as_u64()?);
        }
        Some(out)
    }

    /// A human-readable table: stage, observations, mean, and the share
    /// of observations past the histogram range.
    pub fn render(&self) -> String {
        let mut out = String::from("stage                  count     mean   >range\n");
        for (name, h) in self.stages() {
            let over = if h.count() == 0 {
                0.0
            } else {
                100.0 * h.overflow() as f64 / h.count() as f64
            };
            out.push_str(&format!(
                "{:<18} {:>9} {:>8.2} {:>7.1}%\n",
                name,
                h.count(),
                h.mean(),
                over,
            ));
        }
        out
    }
}

/// Critical-path components, in [`CriticalPath::components`] order.
/// Every cycle of the chain is attributed to exactly one.
pub const CP_COMPONENTS: [&str; 7] = [
    "frontend",
    "schedule",
    "sq_search",
    "exec",
    "mem_l1",
    "mem_l2",
    "mem_dram",
];

/// The longest recorded producer→consumer dependency chain, with its
/// cycles attributed per component. Produced by
/// [`CriticalPath::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Chain length in cycles: head writeback − tail fetch.
    pub length: u64,
    /// Instructions on the chain.
    pub instructions: usize,
    /// Per-component cycles, in [`CP_COMPONENTS`] order; sums to
    /// `length` by construction.
    pub components: [u64; CP_COMPONENTS.len()],
}

impl CriticalPath {
    /// Walks the recorded lifetimes backwards from the last-completing
    /// committed instruction, always following the producer whose
    /// result arrived last, and attributes each link's interval
    /// `(producer writeback, consumer writeback]` to components by the
    /// consumer's own stage boundaries:
    ///
    /// * up to dispatch → `frontend` (fetch starvation, including the
    ///   gap before the instruction was even fetched);
    /// * dispatch→issue → `schedule` (scheduler / structural wait after
    ///   the chain's data was ready);
    /// * issue→writeback → `exec` for non-loads; for loads the
    ///   SQ-search extra cycles go to `sq_search` and the rest to
    ///   `mem_l1` / `mem_l2` / `mem_dram` by the recorded miss level.
    ///
    /// The intervals telescope (each link starts where its producer's
    /// ended), so the component totals sum exactly to the chain length.
    /// Returns `None` when `records` holds no committed instruction
    /// with a full set of stamps.
    pub fn analyze(records: &[PipeRecord]) -> Option<CriticalPath> {
        let committed: std::collections::HashMap<u64, &PipeRecord> = records
            .iter()
            .filter(|r| {
                r.is_occupied()
                    && r.commit.is_some()
                    && r.dispatch.is_some()
                    && r.issue.is_some()
                    && r.writeback.is_some()
            })
            .map(|r| (r.seq, r))
            .collect();
        let head = committed
            .values()
            .max_by_key(|r| (r.writeback, r.seq))
            .copied()?;
        let mut components = [0u64; CP_COMPONENTS.len()];
        let mut instructions = 0usize;
        let mut node = head;
        let tail_fetch = loop {
            instructions += 1;
            let wb = node.writeback?;
            let parent = node
                .deps
                .iter()
                .flatten()
                .filter_map(|d| committed.get(d).copied())
                // Chains must shorten strictly toward older completions
                // or the walk would not terminate.
                .filter(|p| p.writeback.is_some_and(|pw| pw < wb))
                .max_by_key(|p| (p.writeback, p.seq));
            let lo = parent.and_then(|p| p.writeback).unwrap_or(node.fetch);
            let (dispatch, issue) = (node.dispatch?, node.issue?);
            components[0] += dispatch.max(lo).min(wb) - lo.min(wb); // frontend
            components[1] += issue.max(lo).min(wb) - dispatch.max(lo).min(wb); // schedule
            let exec = wb - issue.max(lo).min(wb);
            if node.kind.is_load() {
                let sq = exec.min(u64::from(node.sq_extra));
                components[2] += sq; // sq_search
                let mem = match node.mem_level {
                    0 => 4,
                    1 => 5,
                    _ => 6,
                };
                components[mem] += exec - sq;
            } else {
                components[3] += exec; // exec
            }
            match parent {
                Some(p) => node = p,
                None => break node.fetch,
            }
        };
        Some(CriticalPath {
            length: head.writeback? - tail_fetch,
            instructions,
            components,
        })
    }

    /// Cycles attributed to the named component (zero if unknown).
    pub fn slots(&self, component: &str) -> u64 {
        CP_COMPONENTS
            .iter()
            .position(|&c| c == component)
            .map_or(0, |i| self.components[i])
    }

    /// Sum of the per-component cycles; equals
    /// [`CriticalPath::length`] by construction.
    pub fn total(&self) -> u64 {
        self.components.iter().sum()
    }

    /// A human-readable table: component, cycles, share of the chain.
    pub fn render(&self) -> String {
        let total = self.total().max(1);
        let mut out = format!(
            "critical path: {} cycles over {} instructions\n",
            self.length, self.instructions
        );
        for (name, &cycles) in CP_COMPONENTS.iter().zip(&self.components) {
            out.push_str(&format!(
                "{:<12} {:>9} {:>6.1}%\n",
                name,
                cycles,
                100.0 * cycles as f64 / total as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsq_isa::{Addr, InstrKind, Instruction, Pc};

    fn instr(kind: InstrKind, pc: u64, addr: u64) -> Instruction {
        match kind {
            InstrKind::Load => Instruction::load(Pc(pc), Addr(addr)),
            InstrKind::Store => Instruction::store(Pc(pc), Addr(addr)),
            k => Instruction::op(Pc(pc), k),
        }
    }

    fn recorder() -> PipeviewRecorder {
        let mut r = PipeviewRecorder::new(16);
        r.init(8);
        r
    }

    #[test]
    fn nop_lifecycle_is_disabled_and_reports_nothing() {
        let mut l = NopLifecycle;
        assert!(!l.enabled());
        l.init(64);
        l.fetch(0, 1, &instr(InstrKind::IntAlu, 0x400, 0));
        l.dispatch(0, 2, [None, None]);
        l.issue(0, 3, 4, 0, 0);
        l.commit(0, 5);
        l.squash(0, 1, 6, SquashCause::MemOrder);
        assert_eq!(l.report(), None);
        assert_eq!(l.take_records(), None);
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn recorder_captures_a_full_lifecycle() {
        let mut r = recorder();
        r.fetch(0, 10, &instr(InstrKind::Load, 0x400, 0x1000));
        r.dispatch(0, 11, [None, Some(7)]);
        r.issue(0, 14, 20, 2, 1);
        r.commit(0, 25);
        let recs = r.take_records().expect("enabled");
        assert_eq!(recs.len(), 1);
        let rec = recs[0];
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.fetch, 10);
        assert_eq!(rec.dispatch, Some(11));
        assert_eq!(rec.issue, Some(14));
        assert_eq!(rec.writeback, Some(20));
        assert_eq!(rec.commit, Some(25));
        assert_eq!(rec.squash, None);
        assert_eq!(rec.deps, [None, Some(7)]);
        assert_eq!(rec.sq_extra, 2);
        assert_eq!(rec.mem_level, 1);
        // Stage histograms observed the load.
        let stages = r.report().expect("enabled");
        assert_eq!(stages.dispatch_to_issue.count(), 1);
        assert_eq!(stages.dispatch_to_issue.bucket(3), 1);
        assert_eq!(stages.issue_to_mem.bucket(6), 1);
        assert_eq!(stages.sq_search_wait.bucket(2), 1);
        assert_eq!(stages.lb_residency.bucket(11), 1);
    }

    #[test]
    fn squash_terminates_live_records_with_cause() {
        let mut r = recorder();
        r.fetch(3, 5, &instr(InstrKind::Load, 0x40c, 0x2000));
        r.dispatch(3, 6, [None, None]);
        r.fetch(4, 5, &instr(InstrKind::IntAlu, 0x410, 0));
        // Seq 5 was never fetched; the squash range skips the hole.
        r.squash(3, 6, 9, SquashCause::CommitMemOrder);
        let recs = r.take_records().expect("enabled");
        assert_eq!(recs.len(), 2);
        for rec in &recs {
            assert_eq!(rec.squash, Some((9, SquashCause::CommitMemOrder)));
            assert_eq!(rec.commit, None);
        }
        // Squashed records never feed the stage histograms.
        assert_eq!(r.report().expect("enabled").count(), 0);
        // The seqs are free for reuse after refetch.
        r.fetch(3, 12, &instr(InstrKind::Load, 0x40c, 0x2000));
        r.dispatch(3, 13, [None, None]);
        r.issue(3, 14, 16, 0, 0);
        r.commit(3, 17);
        let recs = r.take_records().expect("enabled");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].commit, Some(17));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let mut r = PipeviewRecorder::new(2);
        r.init(8);
        for seq in 0..5u64 {
            r.fetch(seq, seq, &instr(InstrKind::IntAlu, 0x400 + 4 * seq, 0));
            r.dispatch(seq, seq + 1, [None, None]);
            r.issue(seq, seq + 2, seq + 3, 0, 0);
            r.commit(seq, seq + 4);
        }
        assert_eq!(r.dropped(), 3);
        let recs = r.take_records().expect("enabled");
        let seqs: Vec<u64> = recs.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![3, 4], "oldest evicted, order preserved");
        // Histograms still saw all five commits.
        assert_eq!(r.report().expect("enabled").dispatch_to_issue.count(), 5);
        // Draining resets the ring but not the drop counter.
        assert_eq!(r.take_records().expect("enabled").len(), 0);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn stage_latency_merge_minus_and_json_round_trip() {
        let mut a = StageLatency::new();
        let mut rec = PipeRecord::vacant();
        rec.seq = 1;
        rec.kind = InstrKind::Load;
        rec.fetch = 0;
        rec.dispatch = Some(2);
        rec.issue = Some(5);
        rec.writeback = Some(105); // overflows the 64-bucket range
        rec.commit = Some(106);
        rec.sq_extra = 1;
        a.observe(&rec);
        let before = a.clone();
        rec.seq = 2;
        rec.kind = InstrKind::IntAlu;
        a.observe(&rec);
        let diff = a.minus(&before);
        assert_eq!(diff.dispatch_to_issue.count(), 1);
        assert_eq!(diff.issue_to_mem.count(), 0, "non-loads skip memory stages");
        let mut merged = before.clone();
        merged.merge(&diff);
        assert_eq!(merged, a);
        assert_eq!(a.issue_to_mem.overflow(), 1);

        let text = a.to_json().to_string();
        let back =
            StageLatency::from_json(&Json::parse(&text).expect("valid json")).expect("round trips");
        assert_eq!(back, a);
        assert!(a.render().contains("dispatch_to_issue"));
    }

    #[test]
    fn incomplete_records_contribute_nothing() {
        let mut s = StageLatency::new();
        let mut rec = PipeRecord::vacant();
        rec.seq = 0;
        rec.dispatch = Some(1);
        s.observe(&rec); // no issue/commit stamps
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn critical_path_components_sum_to_chain_length() {
        // seq 0: load, fetch 0, dispatch 1, issue 2, wb 12 (L2, 2 sq-extra)
        // seq 1: alu consuming seq 0: fetch 0, dispatch 1, issue 12, wb 13
        // seq 2: alu consuming seq 1: fetch 10, dispatch 11, issue 13, wb 14
        let mk = |seq, kind, deps, fetch, dispatch, issue, wb, commit| {
            let mut r = PipeRecord::vacant();
            r.seq = seq;
            r.kind = kind;
            r.deps = deps;
            r.fetch = fetch;
            r.dispatch = Some(dispatch);
            r.issue = Some(issue);
            r.writeback = Some(wb);
            r.commit = Some(commit);
            r
        };
        let mut load = mk(0, InstrKind::Load, [None, None], 0, 1, 2, 12, 13);
        load.sq_extra = 2;
        load.mem_level = 1;
        let records = vec![
            load,
            mk(1, InstrKind::IntAlu, [Some(0), None], 0, 1, 12, 13, 14),
            mk(2, InstrKind::IntAlu, [Some(1), Some(1)], 10, 11, 13, 14, 15),
        ];
        let cp = CriticalPath::analyze(&records).expect("committed records");
        assert_eq!(cp.instructions, 3);
        assert_eq!(cp.length, 14, "head writeback 14 − tail fetch 0");
        assert_eq!(cp.total(), cp.length, "components partition the chain");
        // Tail load: frontend 1, schedule 1, sq_search 2, mem_l2 8.
        // Middle alu: its own frontend/schedule cycles are hidden behind
        // the load (lo = 12): exec 1. Head alu: exec 1.
        assert_eq!(cp.slots("frontend"), 1);
        assert_eq!(cp.slots("schedule"), 1);
        assert_eq!(cp.slots("sq_search"), 2);
        assert_eq!(cp.slots("mem_l2"), 8);
        assert_eq!(cp.slots("exec"), 2);
        assert_eq!(cp.slots("mem_l1"), 0);
        assert!(cp.render().contains("critical path: 14 cycles"));
    }

    #[test]
    fn critical_path_ignores_squashed_and_unrecorded_parents() {
        let mut alone = PipeRecord::vacant();
        alone.seq = 9;
        alone.kind = InstrKind::IntAlu;
        alone.deps = [Some(8), None]; // producer not in the record set
        alone.fetch = 4;
        alone.dispatch = Some(5);
        alone.issue = Some(6);
        alone.writeback = Some(7);
        alone.commit = Some(8);
        let mut squashed = alone;
        squashed.seq = 10;
        squashed.commit = None;
        squashed.squash = Some((9, SquashCause::MemOrder));
        let cp = CriticalPath::analyze(&[alone, squashed]).expect("one committed record");
        assert_eq!(cp.instructions, 1);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.total(), 3);
        assert_eq!(CriticalPath::analyze(&[squashed]), None);
    }
}
