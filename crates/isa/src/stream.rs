//! Instruction-stream abstraction.
//!
//! The pipeline pulls dynamic instructions from an [`InstructionStream`];
//! workload generators (`lsq-trace`) implement it lazily, and
//! [`VecStream`]/[`SliceStream`] adapt pre-built sequences for tests.

use crate::Instruction;

/// A source of correct-path dynamic instructions.
///
/// A stream is pulled exactly once per dynamic instruction; the pipeline
/// keeps its own replay buffer for squash-and-refetch, so implementations
/// need no rewind support.
pub trait InstructionStream {
    /// Produces the next dynamic instruction, or `None` at end of trace.
    fn next_instr(&mut self) -> Option<Instruction>;

    /// A human-readable workload name for reports.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// An owned vector of instructions replayed front to back.
///
/// # Examples
///
/// ```
/// use lsq_isa::{Instruction, InstructionStream, Pc, Addr, VecStream};
///
/// let mut s = VecStream::new(vec![Instruction::load(Pc(0), Addr(8))]);
/// assert!(s.next_instr().is_some());
/// assert!(s.next_instr().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct VecStream {
    instrs: Vec<Instruction>,
    pos: usize,
    name: String,
}

impl VecStream {
    /// Wraps a vector of instructions as a stream.
    pub fn new(instrs: Vec<Instruction>) -> Self {
        Self {
            instrs,
            pos: 0,
            name: "vec".to_string(),
        }
    }

    /// Sets the reported workload name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of instructions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.instrs.len() - self.pos
    }
}

impl InstructionStream for VecStream {
    fn next_instr(&mut self) -> Option<Instruction> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A borrowed slice of instructions replayed front to back.
#[derive(Debug, Clone)]
pub struct SliceStream<'a> {
    instrs: &'a [Instruction],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Wraps a slice of instructions as a stream.
    pub fn new(instrs: &'a [Instruction]) -> Self {
        Self { instrs, pos: 0 }
    }
}

impl InstructionStream for SliceStream<'_> {
    fn next_instr(&mut self) -> Option<Instruction> {
        let i = self.instrs.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn name(&self) -> &str {
        "slice"
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for &mut S {
    fn next_instr(&mut self) -> Option<Instruction> {
        (**self).next_instr()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, Pc};

    fn three() -> Vec<Instruction> {
        vec![
            Instruction::load(Pc(0), Addr(0)),
            Instruction::store(Pc(4), Addr(8)),
            Instruction::branch(Pc(8), true),
        ]
    }

    #[test]
    fn vec_stream_yields_in_order_then_none() {
        let mut s = VecStream::new(three()).with_name("t");
        assert_eq!(s.name(), "t");
        assert_eq!(s.remaining(), 3);
        assert!(s.next_instr().unwrap().kind.is_load());
        assert!(s.next_instr().unwrap().kind.is_store());
        assert!(s.next_instr().unwrap().kind.is_branch());
        assert!(s.next_instr().is_none());
        assert!(s.next_instr().is_none());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn slice_stream_borrows() {
        let v = three();
        let mut s = SliceStream::new(&v);
        let mut n = 0;
        while s.next_instr().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn mut_ref_is_a_stream() {
        fn drain(mut s: impl InstructionStream) -> usize {
            let mut n = 0;
            while s.next_instr().is_some() {
                n += 1;
            }
            n
        }
        let mut v = VecStream::new(three());
        assert_eq!(drain(&mut v), 3);
    }
}
