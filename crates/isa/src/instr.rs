//! Instruction, operand, and address types.

use std::fmt;

/// A program counter. Static instructions have stable PCs, which is what
/// PC-indexed predictors (store-set, store-load pair, branch) key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl Pc {
    /// Folds the PC into a table index of `bits` bits, the way hardware
    /// predictor tables hash the PC.
    #[inline]
    pub fn index(self, bits: u32) -> usize {
        let mask = (1u64 << bits) - 1;
        // Instructions are 4-byte aligned; drop the low 2 bits then fold.
        let word = self.0 >> 2;
        ((word ^ (word >> bits)) & mask) as usize
    }
}

/// A data memory address. The simulator disambiguates at 8-byte-word
/// granularity: two accesses conflict iff their word addresses match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{:#x}", self.0)
    }
}

impl Addr {
    /// The 8-byte word this address falls in; the unit of dependence
    /// checking in the load/store queue.
    #[inline]
    pub fn word(self) -> u64 {
        self.0 >> 3
    }

    /// The cache-block address for a block of `block_bytes` (a power of 2).
    #[inline]
    pub fn block(self, block_bytes: u64) -> u64 {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 / block_bytes
    }

    /// Whether two addresses access the same 8-byte word.
    #[inline]
    pub fn same_word(self, other: Addr) -> bool {
        self.word() == other.word()
    }
}

/// Register class: the machine has separate integer and floating-point
/// register files (356 physical each in the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// Number of architectural registers per class.
pub const ARCH_REGS_PER_CLASS: u8 = 32;

/// An architectural register: a class plus an index in `0..32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchReg {
    /// Which register file.
    pub class: RegClass,
    /// Register number within the class, `0..ARCH_REGS_PER_CLASS`.
    pub num: u8,
}

impl ArchReg {
    /// An integer register.
    ///
    /// # Panics
    ///
    /// Panics if `num >= 32`.
    pub fn int(num: u8) -> Self {
        assert!(num < ARCH_REGS_PER_CLASS, "register number out of range");
        Self {
            class: RegClass::Int,
            num,
        }
    }

    /// A floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `num >= 32`.
    pub fn fp(num: u8) -> Self {
        assert!(num < ARCH_REGS_PER_CLASS, "register number out of range");
        Self {
            class: RegClass::Fp,
            num,
        }
    }

    /// A dense index in `0..64` combining class and number, for rename maps.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.num as usize,
            RegClass::Fp => ARCH_REGS_PER_CLASS as usize + self.num as usize,
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.num),
            RegClass::Fp => write!(f, "f{}", self.num),
        }
    }
}

/// The operation class of an instruction, with its execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (3 cycles, pipelined).
    IntMul,
    /// Floating-point add/sub/convert (2 cycles, pipelined).
    FpAlu,
    /// Floating-point multiply (4 cycles, pipelined).
    FpMul,
    /// Floating-point divide (12 cycles; modeled pipelined for simplicity).
    FpDiv,
    /// Memory load; latency comes from the LSQ/cache, not from here.
    Load,
    /// Memory store; address generation in the integer pipeline.
    Store,
    /// Conditional branch, resolved in the integer pipeline (1 cycle).
    Branch,
}

impl InstrKind {
    /// Execution latency in cycles for non-memory operations. Loads and
    /// stores return the address-generation latency (1); their memory
    /// latency is determined by the LSQ and cache models.
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            InstrKind::IntAlu | InstrKind::Branch | InstrKind::Load | InstrKind::Store => 1,
            InstrKind::IntMul => 3,
            InstrKind::FpAlu => 2,
            InstrKind::FpMul => 4,
            InstrKind::FpDiv => 12,
        }
    }

    /// Whether this instruction executes on the floating-point units.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, InstrKind::FpAlu | InstrKind::FpMul | InstrKind::FpDiv)
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, InstrKind::Load)
    }

    /// Whether this is a store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, InstrKind::Store)
    }

    /// Whether this is a memory instruction (load or store).
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, InstrKind::Branch)
    }
}

impl fmt::Display for InstrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrKind::IntAlu => "int",
            InstrKind::IntMul => "mul",
            InstrKind::FpAlu => "fadd",
            InstrKind::FpMul => "fmul",
            InstrKind::FpDiv => "fdiv",
            InstrKind::Load => "load",
            InstrKind::Store => "store",
            InstrKind::Branch => "br",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction on the correct path.
///
/// Memory instructions carry their effective [`Addr`]; branches carry their
/// actual outcome (`taken`). Up to two register sources and one destination
/// describe the dataflow the renamer tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Static PC of this instruction.
    pub pc: Pc,
    /// Operation class.
    pub kind: InstrKind,
    /// Destination register, if the instruction writes one.
    pub dst: Option<ArchReg>,
    /// Source registers (dataflow inputs), up to two.
    pub srcs: [Option<ArchReg>; 2],
    /// Effective address for loads/stores; `Addr(0)` otherwise.
    pub addr: Addr,
    /// Actual branch outcome for branches; `false` otherwise.
    pub taken: bool,
}

impl Instruction {
    /// Creates a non-memory, non-branch instruction of the given kind.
    pub fn op(pc: Pc, kind: InstrKind) -> Self {
        debug_assert!(!kind.is_mem() && !kind.is_branch());
        Self {
            pc,
            kind,
            dst: None,
            srcs: [None, None],
            addr: Addr(0),
            taken: false,
        }
    }

    /// Creates a load of `addr`.
    pub fn load(pc: Pc, addr: Addr) -> Self {
        Self {
            pc,
            kind: InstrKind::Load,
            dst: None,
            srcs: [None, None],
            addr,
            taken: false,
        }
    }

    /// Creates a store to `addr`.
    pub fn store(pc: Pc, addr: Addr) -> Self {
        Self {
            pc,
            kind: InstrKind::Store,
            dst: None,
            srcs: [None, None],
            addr,
            taken: false,
        }
    }

    /// Creates a conditional branch with actual outcome `taken`.
    pub fn branch(pc: Pc, taken: bool) -> Self {
        Self {
            pc,
            kind: InstrKind::Branch,
            dst: None,
            srcs: [None, None],
            addr: Addr(0),
            taken,
        }
    }

    /// Sets the destination register (builder style).
    pub fn with_dst(mut self, dst: ArchReg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Adds a source register into the first free source slot (builder
    /// style). A third source is silently ignored — the machine reads at
    /// most two register operands.
    pub fn with_src(mut self, src: ArchReg) -> Self {
        if self.srcs[0].is_none() {
            self.srcs[0] = Some(src);
        } else if self.srcs[1].is_none() {
            self.srcs[1] = Some(src);
        }
        self
    }

    /// Iterates over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_index_within_table() {
        for bits in [8u32, 10, 12] {
            for pc in [0u64, 4, 0x400_000, !3u64] {
                assert!(Pc(pc).index(bits) < (1 << bits));
            }
        }
    }

    #[test]
    fn pc_index_distinguishes_nearby_instructions() {
        let a = Pc(0x1000).index(12);
        let b = Pc(0x1004).index(12);
        assert_ne!(a, b);
    }

    #[test]
    fn addr_word_granularity() {
        assert!(Addr(0x100).same_word(Addr(0x107)));
        assert!(!Addr(0x100).same_word(Addr(0x108)));
        assert_eq!(Addr(64).block(32), 2);
    }

    #[test]
    fn arch_reg_flat_index_is_dense_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..ARCH_REGS_PER_CLASS {
            assert!(seen.insert(ArchReg::int(n).flat_index()));
            assert!(seen.insert(ArchReg::fp(n).flat_index()));
        }
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&i| i < 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_range_checked() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn kind_classification() {
        assert!(InstrKind::Load.is_mem());
        assert!(InstrKind::Store.is_mem());
        assert!(!InstrKind::IntAlu.is_mem());
        assert!(InstrKind::Branch.is_branch());
        assert!(InstrKind::FpMul.is_fp());
        assert!(!InstrKind::Load.is_fp());
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert_eq!(InstrKind::IntAlu.exec_latency(), 1);
        assert!(InstrKind::IntMul.exec_latency() > InstrKind::IntAlu.exec_latency());
        assert!(InstrKind::FpDiv.exec_latency() > InstrKind::FpMul.exec_latency());
    }

    #[test]
    fn builder_fills_sources_in_order() {
        let i = Instruction::op(Pc(4), InstrKind::IntAlu)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2))
            .with_src(ArchReg::int(3)); // ignored
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![ArchReg::int(1), ArchReg::int(2)]);
    }

    #[test]
    fn constructors_set_kind_fields() {
        assert!(Instruction::load(Pc(0), Addr(8)).kind.is_load());
        assert!(Instruction::store(Pc(0), Addr(8)).kind.is_store());
        assert!(Instruction::branch(Pc(0), true).taken);
        assert!(!Instruction::branch(Pc(0), false).taken);
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", Pc(4)).is_empty());
        assert!(!format!("{}", Addr(8)).is_empty());
        assert!(!format!("{}", ArchReg::fp(3)).is_empty());
        assert!(!format!("{}", InstrKind::Load).is_empty());
    }
}
