#![warn(missing_docs)]

//! Instruction-set model shared by the workload generator, the LSQ models,
//! and the pipeline simulator.
//!
//! The reproduction is *trace-driven*: a workload (see `lsq-trace`)
//! produces a stream of [`Instruction`]s — the committed, correct-path
//! dynamic instruction stream — and the pipeline simulator replays it
//! through a cycle-level out-of-order core. Wrong-path effects are modeled
//! as fetch bubbles rather than by executing wrong-path instructions
//! (the standard trace-driven simplification; see DESIGN.md §4).
//!
//! # Examples
//!
//! ```
//! use lsq_isa::{Instruction, InstrKind, Pc, Addr, ArchReg, RegClass};
//!
//! let load = Instruction::load(Pc(0x400000), Addr(0x1000))
//!     .with_dst(ArchReg::int(3))
//!     .with_src(ArchReg::int(1));
//! assert!(load.kind.is_load());
//! assert!(load.kind.is_mem());
//! ```

pub mod instr;
pub mod stream;

pub use instr::{Addr, ArchReg, InstrKind, Instruction, Pc, RegClass};
pub use stream::{InstructionStream, SliceStream, VecStream};
