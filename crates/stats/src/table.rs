//! Plain-text table rendering for experiment output.
//!
//! The experiment binaries print rows shaped like the paper's tables and
//! figures; [`Table`] right-pads columns so the output is readable both on
//! a terminal and when pasted into EXPERIMENTS.md.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use lsq_stats::Table;
///
/// let mut t = Table::new(vec!["bench", "ipc"]);
/// t.row(vec!["bzip".into(), "2.50".into()]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.contains("bzip"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the width bookkeeping.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == w.len() {
                    writeln!(f, "{cell}")?;
                } else {
                    write!(f, "{cell:<width$}  ")?;
                }
            }
            Ok(())
        };
        write_row(f, &self.header)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "x"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset on both data rows.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.to_string();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_display_formats_values() {
        let mut t = Table::new(vec!["v"]);
        t.row_display(&[1.5f64]);
        assert!(t.to_string().contains("1.5"));
    }

    #[test]
    fn empty_table_has_header_and_rule() {
        let t = Table::new(vec!["only", "header"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
