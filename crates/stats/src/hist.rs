//! Running means and bounded histograms.

/// An online arithmetic mean over `f64` samples.
///
/// Used for per-cycle occupancy averages (paper Tables 4 and 5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean, or 0.0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Merges another mean into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.n += other.n;
    }
}

/// A bounded histogram over small non-negative integer values.
///
/// Values `>= buckets` are clamped into the last bucket (recorded in
/// [`Histogram::overflow`]). Used for, e.g., the distribution of segments
/// searched per load (paper Table 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with buckets for values `0..buckets`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Reconstructs a histogram from per-bucket counts and the overflow
    /// count — the inverse of serializing [`Histogram::iter`] plus
    /// [`Histogram::overflow`]. Overflowed observations are already
    /// clamped into the last bucket, so the total is the bucket sum.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or `overflow` exceeds the last
    /// bucket's count (no clamped observation could have produced it).
    pub fn from_parts(buckets: Vec<u64>, overflow: u64) -> Self {
        assert!(!buckets.is_empty(), "histogram needs at least one bucket");
        assert!(
            // lsq-lint: allow(no-unwrap-in-lib, reason = "emptiness checked on the previous line")
            overflow <= *buckets.last().expect("non-empty"),
            "overflow exceeds the last bucket's count"
        );
        let total = buckets.iter().sum();
        Self {
            buckets,
            overflow,
            total,
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: usize) {
        if value >= self.buckets.len() {
            self.overflow += 1;
            // lsq-lint: allow(no-unwrap-in-lib, reason = "buckets is sized non-empty at construction")
            *self.buckets.last_mut().expect("non-empty") += 1;
        } else {
            self.buckets[value] += 1;
        }
        self.total += 1;
    }

    /// Records `n` observations of `value` at once — for replaying one
    /// histogram's buckets into another with different bounds.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if value >= self.buckets.len() {
            self.overflow += n;
            // lsq-lint: allow(no-unwrap-in-lib, reason = "buckets is sized non-empty at construction")
            *self.buckets.last_mut().expect("non-empty") += n;
        } else {
            self.buckets[value] += n;
        }
        self.total += n;
    }

    /// Count in bucket `value` (values beyond the range were clamped into
    /// the last bucket).
    pub fn bucket(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// How many observations exceeded the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations in bucket `value`; 0.0 if none recorded.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bucket(value) as f64 / self.total as f64
        }
    }

    /// Mean of the recorded (clamped) values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Iterates `(value, count)` for all buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate()
    }

    /// Merges another histogram with the same bucket count.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Subtracts an earlier snapshot of this histogram, leaving only the
    /// observations recorded since. The inverse of [`Histogram::merge`]:
    /// used to remove a warm-up prefix from cumulative statistics.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ or `earlier` is not a prefix
    /// (some bucket, the overflow count, or the total would go negative).
    pub fn subtract(&mut self, earlier: &Histogram) {
        assert_eq!(self.buckets.len(), earlier.buckets.len(), "bucket mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&earlier.buckets) {
            *a = a
                .checked_sub(*b)
                // lsq-lint: allow(no-unwrap-in-lib, reason = "subtract's documented contract: rhs is a prefix snapshot; saturating would silently corrupt warm-up differencing")
                .expect("subtrahend is not a prefix snapshot");
        }
        self.overflow = self
            .overflow
            .checked_sub(earlier.overflow)
            // lsq-lint: allow(no-unwrap-in-lib, reason = "subtract's documented contract: rhs is a prefix snapshot; saturating would silently corrupt warm-up differencing")
            .expect("subtrahend is not a prefix snapshot");
        self.total = self
            .total
            .checked_sub(earlier.total)
            // lsq-lint: allow(no-unwrap-in-lib, reason = "subtract's documented contract: rhs is a prefix snapshot; saturating would silently corrupt warm-up differencing")
            .expect("subtrahend is not a prefix snapshot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_empty_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
    }

    #[test]
    fn running_mean_tracks_samples() {
        let mut m = RunningMean::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.record(v);
        }
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.record(1.0);
        let mut b = RunningMean::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn histogram_records_and_fractions() {
        let mut h = Histogram::new(5);
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.fraction(1), 0.5);
        assert_eq!(h.fraction(3), 0.0);
    }

    #[test]
    fn histogram_clamps_overflow_into_last_bucket() {
        let mut h = Histogram::new(3);
        h.record(2);
        h.record(10);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(3);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(Histogram::new(2).mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(3);
        a.record(0);
        let mut b = Histogram::new(3);
        b.record(2);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(2), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn histogram_subtract_inverts_a_prefix() {
        let mut snap = Histogram::new(3);
        snap.record(0);
        snap.record(9);
        let mut h = snap.clone();
        h.record(1);
        h.record(2);
        h.subtract(&snap);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(0), 0);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    #[should_panic(expected = "not a prefix snapshot")]
    fn histogram_subtract_rejects_non_prefix() {
        let mut later = Histogram::new(2);
        later.record(0);
        let mut earlier = Histogram::new(2);
        earlier.record(1);
        later.subtract(&earlier);
    }

    #[test]
    #[should_panic(expected = "not a prefix snapshot")]
    fn histogram_subtract_rejects_overflow_underflow() {
        // Bucket counts alone cannot tell these apart: both histograms
        // have two observations in the last bucket, but the "earlier"
        // one got there by overflow. The overflow counter must be
        // checked independently, else it would wrap.
        let mut later = Histogram::new(2);
        later.record(1);
        later.record(1);
        let mut earlier = Histogram::new(2);
        earlier.record(9);
        later.subtract(&earlier);
    }

    #[test]
    #[should_panic(expected = "bucket mismatch")]
    fn histogram_subtract_rejects_shape_mismatch() {
        let mut later = Histogram::new(3);
        later.subtract(&Histogram::new(2));
    }

    #[test]
    fn histogram_subtract_self_empties() {
        let mut h = Histogram::new(3);
        h.record(0);
        h.record(2);
        h.record(9);
        let snap = h.clone();
        h.subtract(&snap);
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.iter().all(|(_, c)| c == 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_iter_covers_all_buckets() {
        let mut h = Histogram::new(3);
        h.record(1);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0, 0), (1, 1), (2, 0)]);
    }
}
