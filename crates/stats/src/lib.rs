#![warn(missing_docs)]

//! Statistics and reporting substrate: counters, running means, bounded
//! histograms, and plain-text table rendering used by the experiment
//! binaries to print paper-style rows.
//!
//! # Examples
//!
//! ```
//! use lsq_stats::{Histogram, RunningMean};
//!
//! let mut occ = RunningMean::new();
//! occ.record(10.0);
//! occ.record(20.0);
//! assert_eq!(occ.mean(), 15.0);
//!
//! let mut h = Histogram::new(4);
//! h.record(1);
//! h.record(1);
//! h.record(3);
//! assert_eq!(h.count(), 3);
//! assert!((h.fraction(1) - 2.0 / 3.0).abs() < 1e-12);
//! ```

pub mod hist;
pub mod table;

pub use hist::{Histogram, RunningMean};
pub use table::Table;

/// Geometric mean of a slice of positive values; returns `None` when the
/// slice is empty or contains a non-positive value.
///
/// Speedup averages across benchmarks are conventionally geometric means.
///
/// # Examples
///
/// ```
/// let g = lsq_stats::geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Formats a fraction as a signed percentage with one decimal, e.g. `+5.3%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[3.0]), Some(3.0));
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(0.053), "+5.3%");
        assert_eq!(pct(-0.19), "-19.0%");
        assert_eq!(pct(0.0), "+0.0%");
    }
}
