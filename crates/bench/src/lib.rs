//! Criterion benchmark harness for the LSQ reproduction; see `benches/`.
