//! One Criterion benchmark per paper table/figure: each measures the time
//! to regenerate a scaled-down version of that artifact (the full-budget
//! regeneration lives in `cargo run -p lsq-experiments --bin <id>`).
//!
//! Besides timing, each bench sanity-checks the artifact's row count, so
//! `cargo bench` doubles as an end-to-end smoke of the whole harness.

use criterion::{criterion_group, criterion_main, Criterion};
use lsq_experiments::experiments;
use lsq_experiments::RunSpec;
use std::hint::black_box;

/// Small budget so a full `cargo bench` pass stays in minutes.
const SPEC: RunSpec = RunSpec {
    warmup: 2_000,
    instrs: 6_000,
    seed: 1,
};

macro_rules! artifact_bench {
    ($fn_name:ident, $exp:ident, $rows:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group("paper");
            g.sample_size(10);
            g.bench_function(stringify!($exp), |b| {
                b.iter(|| {
                    let a = experiments::$exp(black_box(SPEC));
                    assert_eq!(a.table.len(), $rows, "{} row count", a.id);
                    black_box(a)
                })
            });
            g.finish();
        }
    };
}

fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.bench_function("table1", |b| {
        b.iter(|| {
            let a = experiments::table1();
            assert!(a.table.len() >= 9);
            black_box(a)
        })
    });
    g.finish();
}

artifact_bench!(table2, table2, 18);
artifact_bench!(fig6, fig6, 18);
artifact_bench!(fig7, fig7, 18);
artifact_bench!(table3, table3, 18);
artifact_bench!(fig8, fig8, 18);
artifact_bench!(table4, table4, 18);
artifact_bench!(fig9, fig9, 18);
artifact_bench!(fig10, fig10, 18);
artifact_bench!(fig11, fig11, 18);
artifact_bench!(table5, table5, 18);
artifact_bench!(table6, table6, 18);
artifact_bench!(fig12, fig12, 18);

criterion_group!(
    artifacts, table1, table2, fig6, fig7, table3, fig8, table4, fig9, fig10, fig11, table5,
    table6, fig12
);
criterion_main!(artifacts);
