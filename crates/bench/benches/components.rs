//! Micro-benchmarks of the hardware-structure models the simulator leans
//! on per cycle: predictor table operations, load-buffer bookkeeping,
//! segmented allocation, port booking, cache accesses, and the ring
//! queue. These bound the per-cycle simulation cost and catch accidental
//! algorithmic regressions (e.g. an O(n) slip in a hot path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lsq_core::{LoadBuffer, PortBook, SegAlloc, SegmentedAlloc, StoreSetPredictor};
use lsq_isa::{Addr, Pc};

use lsq_mem::{Cache, CacheConfig};
use lsq_util::rng::Xoshiro256;
use lsq_util::RingQueue;
use std::hint::black_box;

const OPS: u64 = 4096;

fn predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_set_predictor");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("fetch_issue_commit_cycle", |b| {
        let mut p = StoreSetPredictor::paper();
        for i in 0..64 {
            p.train_pair(Pc(0x1000 + i * 8), Pc(0x2000 + i * 8));
        }
        let mut seq = 0u64;
        b.iter(|| {
            for i in 0..OPS {
                let pc = Pc(0x2000 + (i % 64) * 8);
                if let Some(ssid) = p.on_store_fetch(pc, seq) {
                    p.on_store_issue(ssid, seq);
                    p.on_store_commit(ssid);
                }
                let lp = p.on_load_fetch(Pc(0x1000 + (i % 64) * 8));
                black_box(p.must_search(lp.ssid));
                seq += 1;
            }
        })
    });
    g.finish();
}

fn load_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("load_buffer");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("dispatch_issue_commit", |b| {
        b.iter(|| {
            let mut lb = LoadBuffer::new(2);
            let mut seq = 0u64;
            for _ in 0..OPS / 4 {
                for _ in 0..4 {
                    lb.on_dispatch(seq, Addr(0x1000 + seq * 8));
                    seq += 1;
                }
                // Issue out of order, then in order.
                let base = seq - 4;
                let _ = lb.try_issue(base + 2);
                let _ = lb.try_issue(base);
                let _ = lb.try_issue(base + 1);
                let _ = lb.try_issue(base + 3);
                for s in base..seq {
                    lb.on_commit(s);
                }
            }
            black_box(lb.searches())
        })
    });
    g.finish();
}

fn segmentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("segmentation");
    g.throughput(Throughput::Elements(OPS));
    for (label, alloc) in [
        ("self_circular", SegAlloc::SelfCircular),
        ("no_self_circular", SegAlloc::NoSelfCircular),
    ] {
        g.bench_function(format!("alloc_free/{label}"), |b| {
            b.iter(|| {
                let mut a = SegmentedAlloc::new(4, 28, alloc);
                let mut live = std::collections::VecDeque::new();
                for _ in 0..OPS {
                    if live.len() < 80 {
                        live.push_back(a.allocate().expect("capacity"));
                    } else {
                        a.free(live.pop_front().expect("live"));
                    }
                }
                black_box(a.occupied())
            })
        });
    }
    g.bench_function("port_book", |b| {
        b.iter(|| {
            let mut book = PortBook::new(4, 2);
            let mut granted = 0u64;
            for i in 0..OPS {
                if i % 3 == 0 {
                    book.begin_cycle();
                }
                if book.try_book(&[(i % 4) as usize, ((i + 1) % 4) as usize]) {
                    granted += 1;
                }
            }
            black_box(granted)
        })
    });
    g.finish();
}

fn caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("l1_access_mixed", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 << 10,
            ways: 2,
            block_bytes: 32,
            hit_latency: 2,
        });
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..OPS {
                let addr = Addr(rng.range_u64(128 << 10));
                if cache.access(addr, false) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn ring_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_queue");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("push_get_pop", |b| {
        b.iter(|| {
            let mut q: RingQueue<u64> = RingQueue::new(256);
            let mut acc = 0u64;
            for i in 0..OPS {
                if q.is_full() {
                    acc ^= q.pop().expect("full queue pops").1;
                }
                let seq = q.push(i).expect("not full");
                acc ^= *q.get(seq).expect("just pushed");
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    components,
    predictor,
    load_buffer,
    segmentation,
    caches,
    ring_queue
);
criterion_main!(components);
