//! Simulator throughput: simulated instructions per second of wall-clock
//! time, across workload classes and LSQ design points. This is the
//! "how expensive is a reproduction run" benchmark.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lsq_core::{LsqConfig, SegAlloc};
use lsq_pipeline::{SimConfig, Simulator};
use lsq_trace::BenchProfile;
use std::hint::black_box;

const INSTRS: u64 = 20_000;

fn run_once(bench: &str, lsq: LsqConfig) -> u64 {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    sim.run(&mut stream, INSTRS).cycles
}

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTRS));
    // One representative per class: high-IPC INT, pointer-chaser,
    // streaming FP.
    for bench in ["perl", "mcf", "mgrid"] {
        g.bench_function(format!("{bench}/base"), |b| {
            b.iter(|| black_box(run_once(bench, LsqConfig::default())))
        });
    }
    // Design points on one benchmark: the techniques must not make the
    // *simulator* pathologically slower.
    g.bench_function("gcc/techniques_1port", |b| {
        b.iter(|| black_box(run_once("gcc", LsqConfig::with_techniques(1))))
    });
    g.bench_function("gcc/segmented_sc", |b| {
        b.iter(|| {
            black_box(run_once(
                "gcc",
                LsqConfig::segmented(SegAlloc::SelfCircular),
            ))
        })
    });
    g.bench_function("gcc/all_techniques", |b| {
        b.iter(|| black_box(run_once("gcc", LsqConfig::all_techniques_one_port())))
    });
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(INSTRS));
    for bench in ["gcc", "mgrid"] {
        g.bench_function(bench, |b| {
            b.iter(|| {
                use lsq_isa::InstructionStream;
                let mut s = BenchProfile::named(bench).unwrap().stream(1);
                let mut sum = 0u64;
                for _ in 0..INSTRS {
                    sum ^= s.next_instr().unwrap().addr.0;
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group!(throughput, sim_throughput, trace_generation);
criterion_main!(throughput);
