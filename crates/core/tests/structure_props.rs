//! Property tests on the core hardware structures: the load buffer's
//! NILP/LIV bookkeeping, segmented allocation, the search-port book, and
//! the store-set/pair predictor's counter discipline.

use lsq_core::{LbIssue, LoadBuffer, PortBook, SegAlloc, SegmentedAlloc, StoreSetPredictor};
use lsq_isa::{Addr, Pc};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Load buffer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum LbOp {
    Dispatch,
    Issue(u8),
    CommitHead,
    Squash(u8),
}

fn lb_op() -> impl Strategy<Value = LbOp> {
    prop_oneof![
        4 => Just(LbOp::Dispatch),
        4 => any::<u8>().prop_map(LbOp::Issue),
        2 => Just(LbOp::CommitHead),
        1 => any::<u8>().prop_map(LbOp::Squash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The buffer never overflows, occupancy always equals the number of
    /// issued loads with an older unissued load, and NILP is always the
    /// oldest unissued load.
    #[test]
    fn load_buffer_invariants(ops in prop::collection::vec(lb_op(), 1..200), cap in 0usize..5) {
        let mut lb = LoadBuffer::new(cap);
        // Shadow: (seq, issued).
        let mut shadow: Vec<(u64, bool)> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                LbOp::Dispatch => {
                    lb.on_dispatch(next, Addr(0x1000 + next * 8));
                    shadow.push((next, false));
                    next += 1;
                }
                LbOp::Issue(n) => {
                    let unissued: Vec<u64> =
                        shadow.iter().filter(|(_, i)| !i).map(|(s, _)| *s).collect();
                    if unissued.is_empty() {
                        continue;
                    }
                    let seq = unissued[n as usize % unissued.len()];
                    let oldest_unissued = unissued[0];
                    match lb.try_issue(seq) {
                        LbIssue::Full => {
                            prop_assert!(seq != oldest_unissued, "NILP target never stalls");
                            prop_assert_eq!(lb.occupancy(), cap);
                        }
                        outcome => {
                            let in_order = matches!(outcome, LbIssue::InOrder { .. });
                            if seq == oldest_unissued {
                                prop_assert!(in_order, "NILP target must issue in order");
                            } else {
                                {
                                let buffered = matches!(outcome, LbIssue::Buffered { .. });
                                prop_assert!(buffered, "non-NILP issue must buffer");
                            }
                            }
                            shadow.iter_mut().find(|(s, _)| *s == seq).unwrap().1 = true;
                        }
                    }
                }
                LbOp::CommitHead => {
                    if let Some(&(seq, issued)) = shadow.first() {
                        if issued {
                            lb.on_commit(seq);
                            shadow.remove(0);
                        }
                    }
                }
                LbOp::Squash(n) => {
                    if shadow.is_empty() {
                        continue;
                    }
                    let lo = shadow[0].0;
                    let hi = shadow.last().unwrap().0;
                    let at = lo + u64::from(n) % (hi - lo + 1);
                    lb.squash_from(at);
                    shadow.retain(|(s, _)| *s < at);
                    next = at;
                }
            }
            // Invariants.
            let mut unissued_seen = false;
            let mut expect_occ = 0usize;
            for &(_, issued) in &shadow {
                if issued {
                    if unissued_seen {
                        expect_occ += 1;
                    }
                } else {
                    unissued_seen = true;
                }
            }
            prop_assert_eq!(lb.occupancy(), expect_occ.min(lb.occupancy().max(expect_occ)));
            prop_assert!(lb.occupancy() <= cap);
            prop_assert_eq!(lb.in_flight(), shadow.len());
            let expect_nilp = shadow.iter().find(|(_, i)| !i).map(|(s, _)| *s);
            prop_assert_eq!(lb.nilp(), expect_nilp);
        }
    }
}

// ----------------------------------------------------------------------
// Segmented allocation
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Allocation never double-books, never exceeds capacity, frees
    /// restore capacity, and self-circular always uses full capacity.
    #[test]
    fn segmented_alloc_conserves_slots(
        ops in prop::collection::vec(any::<bool>(), 1..300),
        segs in 1usize..5,
        per in 1usize..9,
        self_circular in any::<bool>(),
    ) {
        let alloc_kind =
            if self_circular { SegAlloc::SelfCircular } else { SegAlloc::NoSelfCircular };
        let mut a = SegmentedAlloc::new(segs, per, alloc_kind);
        let mut live: std::collections::VecDeque<lsq_core::Placement> = Default::default();
        for want_alloc in ops {
            if want_alloc {
                match a.allocate() {
                    Some(p) => {
                        prop_assert!(p.segment < segs);
                        live.push_back(p);
                        prop_assert!(live.len() <= segs * per);
                    }
                    None => {
                        if self_circular {
                            // Self-circular fails only at full capacity.
                            prop_assert_eq!(live.len(), segs * per);
                        }
                    }
                }
            } else if let Some(p) = live.pop_front() {
                a.free(p);
            }
            prop_assert_eq!(a.occupied(), live.len());
        }
    }

    /// A FIFO workload smaller than one segment never leaves segment 0
    /// under self-circular allocation (the compaction property that
    /// drives the paper's Figure 11).
    #[test]
    fn self_circular_compacts_small_windows(window in 1usize..8, churn in 8usize..64) {
        let mut a = SegmentedAlloc::new(4, 8, SegAlloc::SelfCircular);
        let mut live = std::collections::VecDeque::new();
        for _ in 0..window {
            live.push_back(a.allocate().unwrap());
        }
        for _ in 0..churn {
            a.free(live.pop_front().unwrap());
            let p = a.allocate().unwrap();
            prop_assert_eq!(p.segment, 0);
            live.push_back(p);
        }
    }
}

/// Deterministic replay of the checked-in regression seed
/// (`structure_props.proptest-regressions`, shrinking to
/// `events = [true x7, false, true]` from an earlier spelling of
/// `segmented_alloc_conserves_slots` whose op vector was named `events`):
/// seven allocations, one free of the oldest placement, one more
/// allocation. That drives small allocators to capacity, through a free,
/// and back into the wrap/re-allocation path. Swept over every
/// (segments, per-segment, kind) configuration the property covers, so
/// the seed stays exercised even when proptest's RNG or the seed-file
/// format changes.
#[test]
fn regression_seed_alloc_burst_free_alloc() {
    for segs in 1usize..5 {
        for per in 1usize..9 {
            for kind in [SegAlloc::NoSelfCircular, SegAlloc::SelfCircular] {
                let mut a = SegmentedAlloc::new(segs, per, kind);
                let mut live: std::collections::VecDeque<lsq_core::Placement> = Default::default();
                let ops = [true, true, true, true, true, true, true, false, true];
                for want_alloc in ops {
                    if want_alloc {
                        match a.allocate() {
                            Some(p) => {
                                assert!(p.segment < segs, "segment out of range");
                                live.push_back(p);
                                assert!(live.len() <= segs * per, "over capacity");
                            }
                            None => {
                                if kind == SegAlloc::SelfCircular {
                                    assert_eq!(
                                        live.len(),
                                        segs * per,
                                        "self-circular failed below capacity \
                                         (segs={segs}, per={per})"
                                    );
                                }
                            }
                        }
                    } else if let Some(p) = live.pop_front() {
                        a.free(p);
                    }
                    assert_eq!(a.occupied(), live.len(), "segs={segs}, per={per}, {kind:?}");
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Port book
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bookings never exceed `ports` per (cycle, segment), and a failed
    /// booking leaves no residue.
    #[test]
    fn port_book_conserves_ports(
        reqs in prop::collection::vec(prop::collection::vec(0usize..4, 1..4), 1..60),
        ports in 1usize..4,
    ) {
        let segs = 4;
        let mut book = PortBook::new(segs, ports);
        for path in &reqs {
            book.begin_cycle();
            // Reservations booked by earlier multi-cycle searches may
            // already occupy this cycle (that is the §3.2 contention).
            let free_before = book.free_now(path[0]);
            prop_assert!(free_before <= ports);
            // Issue several identical requests this cycle; count grants.
            let mut grants = 0usize;
            for _ in 0..(ports + 1) {
                if book.try_book(path) {
                    grants += 1;
                }
            }
            prop_assert!(grants <= free_before, "over-granted segment {}", path[0]);
            prop_assert_eq!(book.free_now(path[0]), free_before - grants);
        }
    }
}

// ----------------------------------------------------------------------
// Store-set / pair predictor counters
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Below the saturation bound, the pair counter exactly equals the
    /// number of in-flight stores of the set under any interleaving of
    /// fetches, commits, and squashes; and it never underflows.
    #[test]
    fn pair_counter_tracks_inflight_stores(events in prop::collection::vec(0u8..3, 1..200)) {
        let mut p = StoreSetPredictor::new(1024, 64, 7, false);
        p.train_pair(Pc(0x100), Pc(0x200));
        let mut inflight = 0u64;
        let mut seq = 0u64;
        let mut ssid = None;
        for ev in events {
            match ev {
                // Fetch a store (stay below the 3-bit saturation bound so
                // the counter is exact, not clamped).
                0 if inflight < 7 => {
                    ssid = Some(p.on_store_fetch(Pc(0x200), seq).expect("trained"));
                    seq += 1;
                    inflight += 1;
                }
                // Commit the oldest in-flight store.
                1 if inflight > 0 => {
                    p.on_store_commit(ssid.expect("fetched"));
                    inflight -= 1;
                }
                // Squash the youngest in-flight store.
                2 if inflight > 0 => {
                    p.on_store_squash(ssid.expect("fetched"), seq - 1);
                    inflight -= 1;
                }
                _ => continue,
            }
            if let Some(id) = ssid {
                prop_assert_eq!(u64::from(p.counter(id)), inflight);
            }
        }
        // Over-draining never underflows.
        if let Some(id) = ssid {
            for _ in 0..20 {
                p.on_store_commit(id);
            }
            prop_assert_eq!(p.counter(id), 0);
        }
    }
}
