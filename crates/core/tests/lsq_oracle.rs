//! Property tests: the [`Lsq`] model against a naive oracle
//! disambiguator.
//!
//! Random interleavings of dispatch / out-of-order issue / commit /
//! drain / squash are replayed against a shadow model that tracks program
//! order and addresses directly. At every step:
//!
//! * store-to-load **forwarding** must come from the youngest older
//!   executed store to the same word (or nowhere);
//! * conventional **violation detection** at store execute must flag
//!   exactly the oracle's oldest premature load;
//! * queue occupancies must match the shadow's;
//! * the load buffer must hold exactly the loads issued past an older
//!   unissued load, never exceeding its capacity.

use lsq_core::{LoadIssue, LoadOrderPolicy, Lsq, LsqConfig, StoreDrain, StoreIssue};
use lsq_isa::{Addr, Pc};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct ShadowOp {
    seq: u64,
    is_load: bool,
    addr: Addr,
    issued: bool,
    retired: bool,
    forwarded_from: Option<u64>,
}

#[derive(Debug, Default)]
struct Shadow {
    ops: Vec<ShadowOp>,
    next_seq: u64,
}

impl Shadow {
    fn dispatch(&mut self, is_load: bool, addr: Addr) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ops.push(ShadowOp {
            seq,
            is_load,
            addr,
            issued: false,
            retired: false,
            forwarded_from: None,
        });
        seq
    }

    fn get_mut(&mut self, seq: u64) -> &mut ShadowOp {
        self.ops
            .iter_mut()
            .find(|o| o.seq == seq)
            .expect("resident")
    }

    /// Youngest older executed store to the same word.
    fn forwarding_source(&self, seq: u64, addr: Addr) -> Option<u64> {
        self.ops
            .iter()
            .rev()
            .filter(|o| !o.is_load && o.seq < seq && o.issued)
            .find(|o| o.addr.same_word(addr))
            .map(|o| o.seq)
    }

    /// Oldest premature load younger than an executing store.
    fn violation_victim(&self, store_seq: u64, addr: Addr) -> Option<u64> {
        self.ops
            .iter()
            .filter(|o| o.is_load && o.seq > store_seq && o.issued)
            .find(|o| o.addr.same_word(addr) && o.forwarded_from.is_none_or(|f| f < store_seq))
            .map(|o| o.seq)
    }

    fn squash_from(&mut self, seq: u64) {
        self.ops.retain(|o| o.seq < seq);
        self.next_seq = seq;
    }

    fn loads(&self) -> usize {
        self.ops.iter().filter(|o| o.is_load).count()
    }

    fn stores(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_load).count()
    }

    /// Loads issued while an older load is unissued (load-buffer
    /// occupancy equivalent).
    fn ooo_issued_loads(&self) -> usize {
        let mut unissued_seen = false;
        let mut n = 0;
        for o in self.ops.iter().filter(|o| o.is_load) {
            if o.issued {
                if unissued_seen {
                    n += 1;
                }
            } else {
                unissued_seen = true;
            }
        }
        n
    }
}

/// One decoded action; raw bytes are interpreted against current state so
/// every generated sequence is valid.
#[derive(Debug, Clone, Copy)]
enum Action {
    Dispatch { is_load: bool, addr_sel: u8 },
    IssueNth(u8),
    CommitHead,
    Squash(u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (any::<bool>(), any::<u8>()).prop_map(|(is_load, addr_sel)| Action::Dispatch { is_load, addr_sel }),
        4 => any::<u8>().prop_map(Action::IssueNth),
        3 => Just(Action::CommitHead),
        1 => any::<u8>().prop_map(Action::Squash),
    ]
}

fn lsq_config(lb: Option<usize>) -> LsqConfig {
    LsqConfig {
        lq_entries: 16,
        sq_entries: 16,
        ports: 8,
        // Gating off so issue order is fully controlled by the test.
        store_set_gating: false,
        load_order: match lb {
            Some(n) => LoadOrderPolicy::LoadBuffer(n),
            None => LoadOrderPolicy::SearchLoadQueue,
        },
        ..LsqConfig::default()
    }
}

/// Runs one random scenario; returns the number of issues checked.
fn run_scenario(actions: &[Action], lb: Option<usize>) -> usize {
    let mut lsq = Lsq::new(lsq_config(lb)).expect("valid config");
    let mut shadow = Shadow::default();
    // A small address pool maximizes aliasing.
    let pool = [0x100u64, 0x108, 0x110, 0x200, 0x208];
    let mut checked = 0;

    for &a in actions {
        lsq.begin_cycle();
        match a {
            Action::Dispatch { is_load, addr_sel } => {
                let addr = Addr(pool[addr_sel as usize % pool.len()]);
                let can = if is_load {
                    lsq.can_dispatch_load()
                } else {
                    lsq.can_dispatch_store()
                };
                if !can {
                    continue;
                }
                let seq = shadow.dispatch(is_load, addr);
                let pc = Pc(0x1000 + seq * 4);
                if is_load {
                    lsq.dispatch_load(seq, pc, addr);
                } else {
                    lsq.dispatch_store(seq, pc, addr);
                }
            }
            Action::IssueNth(n) => {
                let unissued: Vec<ShadowOp> =
                    shadow.ops.iter().copied().filter(|o| !o.issued).collect();
                if unissued.is_empty() {
                    continue;
                }
                let pick = unissued[n as usize % unissued.len()];
                if pick.is_load {
                    match lsq.load_issue(pick.seq) {
                        LoadIssue::Issued(iss) => {
                            let expect = shadow.forwarding_source(pick.seq, pick.addr);
                            assert_eq!(
                                iss.forwarded_from, expect,
                                "forwarding mismatch for load {}",
                                pick.seq
                            );
                            let s = shadow.get_mut(pick.seq);
                            s.issued = true;
                            s.forwarded_from = iss.forwarded_from;
                            checked += 1;
                        }
                        LoadIssue::LbFull => {
                            // Must be a genuine out-of-order issue against
                            // a full buffer.
                            let cap = lb.expect("LbFull only with a buffer");
                            assert!(shadow.ooo_issued_loads() >= cap, "spurious LbFull");
                        }
                        other => panic!("unexpected stall {other:?} (8 ports, no gating)"),
                    }
                } else {
                    match lsq.store_issue(pick.seq) {
                        StoreIssue::Issued { violation } => {
                            let expect = shadow.violation_victim(pick.seq, pick.addr);
                            assert_eq!(
                                violation, expect,
                                "violation mismatch for store {}",
                                pick.seq
                            );
                            shadow.get_mut(pick.seq).issued = true;
                            checked += 1;
                            if let Some(v) = violation {
                                lsq.squash_from(v);
                                shadow.squash_from(v);
                            }
                        }
                        StoreIssue::NoLqPort => panic!("ports cannot run out (8 ports)"),
                    }
                }
            }
            Action::CommitHead => {
                // Retire the oldest op if it has issued.
                let Some(head) = shadow.ops.first().copied() else {
                    continue;
                };
                if !head.issued {
                    continue;
                }
                if head.is_load {
                    lsq.commit_load(head.seq);
                    shadow.ops.remove(0);
                } else {
                    if !head.retired {
                        lsq.store_retire(head.seq);
                        shadow.get_mut(head.seq).retired = true;
                    }
                    match lsq.drain_store() {
                        StoreDrain::Drained { seq, violation, .. } => {
                            assert_eq!(seq, head.seq);
                            assert_eq!(
                                violation, None,
                                "conventional scheme detects at execute, not drain"
                            );
                            shadow.ops.remove(0);
                        }
                        other => panic!("drain failed: {other:?}"),
                    }
                }
            }
            Action::Squash(n) => {
                if shadow.ops.is_empty() {
                    continue;
                }
                // Never squash below an already-retired store.
                let min = shadow
                    .ops
                    .iter()
                    .filter(|o| o.retired)
                    .map(|o| o.seq + 1)
                    .max()
                    .unwrap_or_else(|| shadow.ops.first().expect("non-empty").seq);
                let max = shadow.ops.last().expect("non-empty").seq;
                if min > max {
                    continue;
                }
                let at = min + u64::from(n) % (max - min + 1);
                lsq.squash_from(at);
                shadow.squash_from(at);
            }
        }
        // Structural invariants after every action.
        assert_eq!(lsq.lq_occupancy(), shadow.loads(), "LQ occupancy");
        assert_eq!(lsq.sq_occupancy(), shadow.stores(), "SQ occupancy");
        assert_eq!(
            lsq.out_of_order_issued_loads(),
            shadow.ooo_issued_loads(),
            "OoO-issued load count"
        );
        if let Some(cap) = lb {
            assert!(shadow.ooo_issued_loads() <= cap, "load buffer overflow");
        }
    }
    checked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conventional LSQ vs the oracle.
    #[test]
    fn conventional_matches_oracle(actions in prop::collection::vec(action_strategy(), 1..160)) {
        run_scenario(&actions, None);
    }

    /// Load-buffer LSQ vs the oracle, buffer sizes 1/2/4.
    #[test]
    fn load_buffer_matches_oracle(
        actions in prop::collection::vec(action_strategy(), 1..160),
        cap in 1usize..5,
    ) {
        run_scenario(&actions, Some(cap));
    }
}

/// A deterministic regression mix (cheap to run, easy to debug).
#[test]
fn deterministic_mixed_scenario() {
    use Action::*;
    let actions = [
        Dispatch {
            is_load: false,
            addr_sel: 0,
        },
        Dispatch {
            is_load: true,
            addr_sel: 0,
        },
        Dispatch {
            is_load: true,
            addr_sel: 1,
        },
        IssueNth(1), // load (premature w.r.t. store 0)
        IssueNth(0), // store 0 -> violation on load 1
        Dispatch {
            is_load: true,
            addr_sel: 0,
        },
        IssueNth(0),
        CommitHead,
        CommitHead,
        Squash(0),
    ];
    let checked = run_scenario(&actions, None);
    assert!(checked >= 2);
}
