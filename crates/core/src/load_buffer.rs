//! The **load buffer** (paper §2.2): a tiny buffer holding only the loads
//! that issued out of order with respect to older, not-yet-issued loads.
//!
//! Only such loads can be victims of a load-load order violation, and the
//! paper measures fewer than 3 of them in flight on average, so a ≤4-entry
//! buffer replaces the whole load queue as the search target for load-load
//! ordering. Bookkeeping follows the paper's implementation:
//!
//! * the **Load Issue Vector (LIV)** — one issued bit per load-queue entry
//!   (here: the `issued` flag on each tracked load);
//! * the **Non-Issued Load Pointer (NILP)** — points at the oldest
//!   non-issued load; it advances over issued loads, and each buffered
//!   load it skips over has its buffer entry *released* (that load can no
//!   longer violate load-load order) and performs its final load-buffer
//!   search.
//!
//! A load that issues while it is the NILP target elides the buffer; a
//! load that issues past the NILP needs a free buffer entry and stalls
//! when the buffer is full (the paper's stall mechanism, analogous to
//! store-set load stalling).

/// Outcome of attempting to issue a load through the load buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbIssue {
    /// The load was the oldest non-issued load: no buffer entry needed.
    /// Carries the number of load-buffer searches performed (its own plus
    /// one per buffered load released by the NILP advancing) and any
    /// load-load ordering violation the search detected.
    InOrder {
        /// Load-buffer searches performed as a result of this issue.
        searches: u32,
        /// Oldest buffered *younger* load to the same word, if any — a
        /// load-load ordering violation victim (paper §2.2: "load E
        /// searches the load buffer and compares its address against the
        /// address of load G").
        violation: Option<u64>,
    },
    /// The load issued out of order and occupies a buffer entry (it also
    /// searched the buffer once); carries any violation victim found.
    Buffered {
        /// Oldest buffered younger load to the same word, if any.
        violation: Option<u64>,
    },
    /// The buffer is full: the load must stall until an entry frees or it
    /// becomes the oldest non-issued load.
    Full,
}

#[derive(Debug, Clone, Copy)]
struct TrackedLoad {
    seq: u64,
    addr: Addr,
    issued: bool,
    buffered: bool,
}

use lsq_isa::Addr;

/// Load-buffer state machine tracking all in-flight loads.
#[derive(Debug, Clone)]
pub struct LoadBuffer {
    capacity: usize,
    loads: std::collections::VecDeque<TrackedLoad>,
    /// Index into `loads` of the NILP target (== `loads.len()` when every
    /// tracked load has issued). Cached so the per-issue NILP lookup does
    /// not rescan the queue.
    nilp_idx: usize,
    buffered: usize,
    total_searches: u64,
}

impl LoadBuffer {
    /// Creates a load buffer with `capacity` entries. A zero-capacity
    /// buffer forces loads to issue in program order (the paper's
    /// "0-entry" design point).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            loads: std::collections::VecDeque::new(),
            nilp_idx: 0,
            buffered: 0,
            total_searches: 0,
        }
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffer entries currently occupied (= loads currently
    /// issued out of order).
    pub fn occupancy(&self) -> usize {
        self.buffered
    }

    /// Total load-buffer searches performed so far.
    pub fn searches(&self) -> u64 {
        self.total_searches
    }

    /// Registers a dispatched load and its (oracle) address. Loads must
    /// be registered in program order.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `seq` is not younger than every tracked load.
    // lsq-lint: hot
    pub fn on_dispatch(&mut self, seq: u64, addr: Addr) {
        debug_assert!(self.loads.back().is_none_or(|l| l.seq < seq));
        self.loads.push_back(TrackedLoad {
            seq,
            addr,
            issued: false,
            buffered: false,
        });
    }

    /// Oldest *buffered* load younger than `seq` reading the same word —
    /// the load-load ordering violation the buffer search detects.
    // lsq-lint: hot
    fn violation_victim(&self, seq: u64, addr: Addr) -> Option<u64> {
        if self.buffered == 0 {
            return None;
        }
        self.loads
            .iter()
            .find(|l| l.buffered && l.seq > seq && l.addr.same_word(addr))
            .map(|l| l.seq)
    }

    /// The NILP: sequence number of the oldest non-issued load.
    pub fn nilp(&self) -> Option<u64> {
        self.loads.get(self.nilp_idx).map(|l| l.seq)
    }

    // lsq-lint: hot
    fn index_of(&self, seq: u64) -> Option<usize> {
        self.loads.binary_search_by_key(&seq, |l| l.seq).ok()
    }

    /// Attempts to issue the load `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched or has already issued.
    // lsq-lint: hot
    pub fn try_issue(&mut self, seq: u64) -> LbIssue {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "loads are registered at dispatch; a missing entry is pipeline bookkeeping corruption — fail loudly rather than skew results")
        let idx = self.index_of(seq).expect("load was dispatched");
        assert!(!self.loads[idx].issued, "load already issued");

        // lsq-lint: allow(no-unwrap-in-lib, reason = "try_issue's caller established an unissued load exists, so the NILP scan finds one")
        let nilp = self.nilp().expect("an unissued load exists");
        let addr = self.loads[idx].addr;
        if nilp == seq {
            // The NILP target issues: search the buffer (detecting any
            // younger same-word load issued out of order), then advance
            // the NILP over already-issued loads, releasing their entries.
            let violation = self.violation_victim(seq, addr);
            self.loads[idx].issued = true;
            let mut searches = 1u32;
            self.nilp_idx += 1;
            while let Some(l) = self.loads.get_mut(self.nilp_idx) {
                if !l.issued {
                    break;
                }
                if l.buffered {
                    l.buffered = false;
                    self.buffered -= 1;
                    // The released load performs its final buffer search.
                    searches += 1;
                }
                self.nilp_idx += 1;
            }
            self.total_searches += u64::from(searches);
            LbIssue::InOrder {
                searches,
                violation,
            }
        } else {
            if self.buffered == self.capacity {
                return LbIssue::Full;
            }
            let violation = self.violation_victim(seq, addr);
            self.loads[idx].issued = true;
            self.loads[idx].buffered = true;
            self.buffered += 1;
            self.total_searches += 1;
            LbIssue::Buffered { violation }
        }
    }

    /// Removes the oldest tracked load at commit.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the oldest tracked load.
    pub fn on_commit(&mut self, seq: u64) {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "in-order commit retires only loads the buffer tracked at dispatch")
        let front = self.loads.pop_front().expect("commit of untracked load");
        assert_eq!(front.seq, seq, "loads commit in program order");
        if front.buffered {
            // Unreachable in a well-formed pipeline (all older loads have
            // committed, so the NILP passed this load), but release
            // defensively so capacity can never leak.
            self.buffered -= 1;
        }
        if self.nilp_idx > 0 {
            self.nilp_idx -= 1;
        } else {
            // Committing an unissued front is likewise unreachable, but
            // re-derive the cached NILP defensively if it happens.
            self.nilp_idx = self.loads.iter().take_while(|l| l.issued).count();
        }
    }

    /// Squashes every tracked load with sequence number `>= seq`.
    pub fn squash_from(&mut self, seq: u64) {
        while let Some(back) = self.loads.back() {
            if back.seq < seq {
                break;
            }
            if back.buffered {
                self.buffered -= 1;
            }
            self.loads.pop_back();
        }
        self.nilp_idx = self.nilp_idx.min(self.loads.len());
    }

    /// Number of loads currently tracked (in flight).
    pub fn in_flight(&self) -> usize {
        self.loads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use lsq_isa::Addr;

    /// Builds a buffer with loads 0..n dispatched, each to its own word.
    fn with_loads(capacity: usize, n: u64) -> LoadBuffer {
        let mut lb = LoadBuffer::new(capacity);
        for seq in 0..n {
            lb.on_dispatch(seq, Addr(0x1000 + seq * 8));
        }
        lb
    }

    #[test]
    fn in_order_issue_never_buffers() {
        let mut lb = with_loads(2, 3);
        for seq in 0..3 {
            assert!(matches!(
                lb.try_issue(seq),
                LbIssue::InOrder { searches: 1, .. }
            ));
        }
        assert_eq!(lb.occupancy(), 0);
        assert_eq!(lb.searches(), 3);
    }

    #[test]
    fn out_of_order_issue_buffers() {
        let mut lb = with_loads(2, 3);
        assert_eq!(lb.nilp(), Some(0));
        assert!(matches!(lb.try_issue(2), LbIssue::Buffered { .. }));
        assert_eq!(lb.occupancy(), 1);
        assert_eq!(
            lb.nilp(),
            Some(0),
            "NILP stays at the oldest non-issued load"
        );
    }

    #[test]
    fn paper_figure4_scenario() {
        // Loads A..G = seq 0..7; E (4) and G (6) issue out of order while
        // C (2) and D (3) are unissued; A and B have issued in order.
        let mut lb = with_loads(4, 7);
        assert!(matches!(lb.try_issue(0), LbIssue::InOrder { .. }));
        assert!(matches!(lb.try_issue(1), LbIssue::InOrder { .. }));
        assert!(matches!(lb.try_issue(4), LbIssue::Buffered { .. })); // E
        assert!(matches!(lb.try_issue(6), LbIssue::Buffered { .. })); // G
        assert_eq!(lb.occupancy(), 2);
        assert_eq!(lb.nilp(), Some(2));
        // C issues in order: searches the buffer (E, G still buffered).
        assert!(matches!(
            lb.try_issue(2),
            LbIssue::InOrder { searches: 1, .. }
        ));
        assert_eq!(lb.occupancy(), 2, "E still has older non-issued D");
        // D issues: NILP advances past E (releasing it, +1 search) and
        // stops at F (5, unissued).
        assert!(matches!(
            lb.try_issue(3),
            LbIssue::InOrder { searches: 2, .. }
        ));
        assert_eq!(lb.occupancy(), 1, "only G remains buffered");
        // F issues: NILP passes G, releasing it.
        assert!(matches!(
            lb.try_issue(5),
            LbIssue::InOrder { searches: 2, .. }
        ));
        assert_eq!(lb.occupancy(), 0);
    }

    #[test]
    fn full_buffer_stalls_then_frees() {
        let mut lb = with_loads(1, 4);
        assert!(matches!(lb.try_issue(2), LbIssue::Buffered { .. }));
        assert_eq!(lb.try_issue(3), LbIssue::Full);
        assert_eq!(lb.occupancy(), 1);
        // Load 0 issues (NILP target); NILP advances to 1; load 2 still
        // buffered because load 1 is unissued.
        assert!(matches!(
            lb.try_issue(0),
            LbIssue::InOrder { searches: 1, .. }
        ));
        assert_eq!(lb.try_issue(3), LbIssue::Full);
        // Load 1 issues; NILP passes 2 (released) and stops at 3.
        assert!(matches!(
            lb.try_issue(1),
            LbIssue::InOrder { searches: 2, .. }
        ));
        assert!(matches!(
            lb.try_issue(3),
            LbIssue::InOrder { searches: 1, .. }
        ));
    }

    #[test]
    fn zero_capacity_forces_program_order() {
        let mut lb = with_loads(0, 2);
        assert_eq!(lb.try_issue(1), LbIssue::Full);
        assert!(matches!(lb.try_issue(0), LbIssue::InOrder { .. }));
        assert!(matches!(lb.try_issue(1), LbIssue::InOrder { .. }));
    }

    #[test]
    fn commit_removes_oldest() {
        let mut lb = with_loads(2, 2);
        lb.try_issue(0);
        lb.on_commit(0);
        assert_eq!(lb.in_flight(), 1);
        assert_eq!(lb.nilp(), Some(1));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_commit_panics() {
        let mut lb = with_loads(2, 2);
        lb.on_commit(1);
    }

    #[test]
    fn squash_releases_buffer_entries() {
        let mut lb = with_loads(2, 4);
        lb.try_issue(2);
        lb.try_issue(3);
        assert_eq!(lb.occupancy(), 2);
        lb.squash_from(3);
        assert_eq!(lb.occupancy(), 1);
        assert_eq!(lb.in_flight(), 3);
        lb.squash_from(0);
        assert_eq!(lb.occupancy(), 0);
        assert_eq!(lb.in_flight(), 0);
        assert_eq!(lb.nilp(), None);
    }

    #[test]
    fn squash_then_redispatch_same_seq() {
        let mut lb = with_loads(1, 3);
        lb.try_issue(1);
        lb.squash_from(1);
        lb.on_dispatch(1, Addr(0x1008));
        lb.on_dispatch(2, Addr(0x1010));
        assert_eq!(lb.nilp(), Some(0));
        assert!(
            matches!(lb.try_issue(1), LbIssue::Buffered { .. }),
            "buffer entry was freed by squash"
        );
    }

    #[test]
    #[should_panic(expected = "dispatched")]
    fn issue_of_unknown_load_panics() {
        let mut lb = LoadBuffer::new(2);
        lb.try_issue(0);
    }

    #[test]
    fn occupancy_counts_only_out_of_order_issued() {
        // Matches the paper's Table 4 metric: loads issued while an older
        // load is still unissued.
        let mut lb = with_loads(4, 5);
        lb.try_issue(0);
        lb.try_issue(4);
        lb.try_issue(2);
        assert_eq!(lb.occupancy(), 2);
    }
}
