//! The store-set predictor (Chrysos & Emer, ISCA '98) extended into the
//! paper's **store-load pair predictor** (§2.1).
//!
//! Both predictors share the same two physical tables (§2.1.2):
//!
//! * **SSIT** (Store Set ID Table): PC-indexed, maps a static load or
//!   store to its store-set identifier (SSID).
//! * **LFST** (Last Fetched Store Table): SSID-indexed, tracks the most
//!   recently fetched store of the set. Each entry holds the store-set
//!   **valid bit** (set at store fetch, cleared at store issue — the
//!   issue-gating semantics) *and* the pair predictor's **multi-bit
//!   counter** (incremented at store fetch, decremented at store commit
//!   or squash — the search-filtering semantics).
//!
//! A load consults the SSIT/LFST at fetch; at issue it (a) waits while the
//! valid bit points at an older unissued store of its set, and (b) under
//! the pair predictor, searches the store queue only while the counter is
//! non-zero.
//!
//! The *aggressive* variant of Figures 6–7 is emulated here with
//! alias-free tables (keyed by full PC / unbounded SSIDs), so store
//! sets never conflict. Alias-free SSIDs are allocated sequentially, so
//! the ideal LFST is a directly indexed, densely grown array rather
//! than a hash map; the ideal SSIT has an unbounded PC domain and stays
//! a map, but hashed with [`lsq_util::FastHasher`] instead of SipHash —
//! both tables sit on the per-instruction fetch path.

use lsq_isa::Pc;
use lsq_util::FastHashMap;

/// A store-set identifier.
pub type Ssid = u32;

/// What the predictor tells a fetched load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadPrediction {
    /// The load's store set, if it has one.
    pub ssid: Option<Ssid>,
    /// The most recently fetched (still in-flight) store of that set at
    /// load-fetch time, for issue gating. `None` when the set's valid bit
    /// is clear.
    pub wait_store: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LfstEntry {
    /// Store-set semantics: a store of this set is in flight and unissued.
    valid: bool,
    /// Sequence number of the most recently fetched store of this set.
    last_store: u64,
    /// Pair-predictor semantics: number of in-flight (fetched, not yet
    /// committed) stores of this set, saturating.
    counter: u8,
}

/// The combined store-set / store-load pair predictor state.
#[derive(Debug, Clone)]
pub struct StoreSetPredictor {
    /// Realistic SSIT: `ssit_entries` slots indexed by folded PC.
    ssit: Vec<Option<Ssid>>,
    /// Realistic LFST: `lfst_entries` slots indexed by `ssid % len`.
    lfst: Vec<LfstEntry>,
    /// Alias-free SSIT (aggressive variant): full PC → SSID.
    ideal_ssit: FastHashMap<u64, Ssid>,
    /// Alias-free LFST (aggressive variant): directly indexed by SSID,
    /// grown on demand (SSIDs are allocated sequentially).
    ideal_lfst: Vec<LfstEntry>,
    /// Next SSID for alias-free allocation.
    next_ideal_ssid: Ssid,
    /// Whether the alias-free tables are in use.
    alias_free: bool,
    ssit_bits: u32,
    counter_max: u8,
}

impl StoreSetPredictor {
    /// Builds a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if `ssit_entries` is not a non-zero power of two or
    /// `lfst_entries` is zero.
    pub fn new(
        ssit_entries: usize,
        lfst_entries: usize,
        counter_max: u8,
        alias_free: bool,
    ) -> Self {
        assert!(
            ssit_entries.is_power_of_two() && ssit_entries > 0,
            "SSIT entries must be a power of two"
        );
        assert!(lfst_entries > 0, "LFST entries must be non-zero");
        Self {
            ssit: vec![None; ssit_entries],
            lfst: vec![LfstEntry::default(); lfst_entries],
            ideal_ssit: FastHashMap::default(),
            ideal_lfst: Vec::new(),
            next_ideal_ssid: 0,
            alias_free,
            ssit_bits: ssit_entries.trailing_zeros(),
            counter_max,
        }
    }

    /// The paper's configuration: 4K-entry SSIT, 128-entry LFST, 3-bit
    /// counter, realistic (aliasing) tables.
    pub fn paper() -> Self {
        Self::new(4096, 128, 7, false)
    }

    fn ssid_of(&self, pc: Pc) -> Option<Ssid> {
        if self.alias_free {
            self.ideal_ssit.get(&pc.0).copied()
        } else {
            self.ssit[pc.index(self.ssit_bits)]
        }
    }

    fn set_ssid(&mut self, pc: Pc, ssid: Ssid) {
        if self.alias_free {
            self.ideal_ssit.insert(pc.0, ssid);
        } else {
            let idx = pc.index(self.ssit_bits);
            self.ssit[idx] = Some(ssid);
        }
    }

    fn lfst_mut(&mut self, ssid: Ssid) -> &mut LfstEntry {
        if self.alias_free {
            let idx = ssid as usize;
            if idx >= self.ideal_lfst.len() {
                self.ideal_lfst.resize(idx + 1, LfstEntry::default());
            }
            &mut self.ideal_lfst[idx]
        } else {
            let len = self.lfst.len();
            &mut self.lfst[ssid as usize % len]
        }
    }

    fn lfst(&self, ssid: Ssid) -> LfstEntry {
        if self.alias_free {
            self.ideal_lfst
                .get(ssid as usize)
                .copied()
                .unwrap_or_default()
        } else {
            self.lfst[ssid as usize % self.lfst.len()]
        }
    }

    /// Called when a store is fetched: if the store belongs to a set,
    /// records it as the set's last-fetched store, sets the valid bit, and
    /// increments the pair counter (saturating at `counter_max`). Returns
    /// the store's SSID, which the caller keeps in the store-queue entry
    /// for issue/commit/squash bookkeeping.
    pub fn on_store_fetch(&mut self, pc: Pc, seq: u64) -> Option<Ssid> {
        let ssid = self.ssid_of(pc)?;
        let max = self.counter_max;
        let e = self.lfst_mut(ssid);
        e.valid = true;
        e.last_store = seq;
        if e.counter < max {
            e.counter += 1;
        }
        Some(ssid)
    }

    /// Called when a load is fetched: reports the load's set and the store
    /// it must wait for (store-set issue gating).
    pub fn on_load_fetch(&mut self, pc: Pc) -> LoadPrediction {
        match self.ssid_of(pc) {
            None => LoadPrediction::default(),
            Some(ssid) => {
                let e = self.lfst(ssid);
                LoadPrediction {
                    ssid: Some(ssid),
                    wait_store: e.valid.then_some(e.last_store),
                }
            }
        }
    }

    /// Whether a load of set `ssid` must search the store queue right now
    /// (pair-predictor counter non-zero). Loads with no set never search
    /// under the pair predictor.
    pub fn must_search(&self, ssid: Option<Ssid>) -> bool {
        ssid.is_some_and(|s| self.lfst(s).counter > 0)
    }

    /// Called when a store issues: clears the valid bit if this store is
    /// still the set's last-fetched store (no younger store of the set has
    /// been fetched since).
    pub fn on_store_issue(&mut self, ssid: Ssid, seq: u64) {
        let e = self.lfst_mut(ssid);
        if e.valid && e.last_store == seq {
            e.valid = false;
        }
    }

    /// Called when a store commits: decrements the pair counter.
    pub fn on_store_commit(&mut self, ssid: Ssid) {
        let e = self.lfst_mut(ssid);
        e.counter = e.counter.saturating_sub(1);
    }

    /// Called when an in-flight store is squashed: rolls the counter back
    /// (§2.1.2 — the SSIT/LFST themselves are not rolled back, but
    /// squashed stores must undo their counter increment). Also clears the
    /// valid bit when the squashed store was the set's last-fetched store,
    /// so later loads are not gated on a store that will never issue.
    pub fn on_store_squash(&mut self, ssid: Ssid, seq: u64) {
        let e = self.lfst_mut(ssid);
        e.counter = e.counter.saturating_sub(1);
        if e.valid && e.last_store == seq {
            e.valid = false;
        }
    }

    /// Trains on a detected store-load order violation (or, for the pair
    /// predictor, on any detected matching pair): the load and store are
    /// placed in the same store set using the Chrysos-Emer merge rules.
    pub fn train_pair(&mut self, load_pc: Pc, store_pc: Pc) {
        match (self.ssid_of(load_pc), self.ssid_of(store_pc)) {
            (None, None) => {
                let ssid = self.allocate_ssid(store_pc);
                self.set_ssid(load_pc, ssid);
                self.set_ssid(store_pc, ssid);
            }
            (Some(l), None) => self.set_ssid(store_pc, l),
            (None, Some(s)) => self.set_ssid(load_pc, s),
            (Some(l), Some(s)) => {
                // Merge: both adopt the smaller SSID.
                let win = l.min(s);
                self.set_ssid(load_pc, win);
                self.set_ssid(store_pc, win);
            }
        }
    }

    fn allocate_ssid(&mut self, store_pc: Pc) -> Ssid {
        if self.alias_free {
            let ssid = self.next_ideal_ssid;
            self.next_ideal_ssid += 1;
            ssid
        } else {
            // Derive the SSID from the store PC so allocation is stateless,
            // as in hardware; collisions in the LFST are part of the
            // realistic predictor's aliasing.
            (store_pc.index(self.lfst_len_bits()) as Ssid) % self.lfst.len() as Ssid
        }
    }

    fn lfst_len_bits(&self) -> u32 {
        // Round up to cover the LFST index space.
        usize::BITS - (self.lfst.len() - 1).leading_zeros()
    }

    /// Read-only view of a set's pair counter (diagnostics and tests).
    pub fn counter(&self, ssid: Ssid) -> u8 {
        self.lfst(ssid).counter
    }

    /// Read-only view of a set's valid bit (diagnostics and tests).
    pub fn valid(&self, ssid: Ssid) -> bool {
        self.lfst(ssid).valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOAD_PC: Pc = Pc(0x1000);
    const STORE_PC: Pc = Pc(0x2000);

    fn trained() -> StoreSetPredictor {
        let mut p = StoreSetPredictor::paper();
        p.train_pair(LOAD_PC, STORE_PC);
        p
    }

    #[test]
    fn untrained_predicts_nothing() {
        let mut p = StoreSetPredictor::paper();
        let pred = p.on_load_fetch(LOAD_PC);
        assert_eq!(pred, LoadPrediction::default());
        assert!(!p.must_search(pred.ssid));
        assert_eq!(p.on_store_fetch(STORE_PC, 1), None);
    }

    #[test]
    fn training_links_load_and_store() {
        let mut p = trained();
        let ssid = p.on_store_fetch(STORE_PC, 7).expect("store has a set");
        let pred = p.on_load_fetch(LOAD_PC);
        assert_eq!(pred.ssid, Some(ssid));
        assert_eq!(pred.wait_store, Some(7));
        assert!(p.must_search(pred.ssid));
    }

    #[test]
    fn valid_bit_clears_at_issue_but_counter_persists_to_commit() {
        let mut p = trained();
        let ssid = p.on_store_fetch(STORE_PC, 7).unwrap();
        p.on_store_issue(ssid, 7);
        let pred = p.on_load_fetch(LOAD_PC);
        assert_eq!(pred.wait_store, None, "valid bit cleared at issue");
        assert!(
            p.must_search(pred.ssid),
            "counter still non-zero until commit"
        );
        p.on_store_commit(ssid);
        assert!(!p.must_search(pred.ssid));
    }

    #[test]
    fn counter_tracks_multiple_inflight_instances() {
        // The §2.1.1 motivation: two in-flight instances of the same static
        // store; a single valid bit would free waiting loads after the
        // first commits, but the counter keeps them searching.
        let mut p = trained();
        let ssid = p.on_store_fetch(STORE_PC, 1).unwrap();
        p.on_store_fetch(STORE_PC, 2).unwrap();
        assert_eq!(p.counter(ssid), 2);
        p.on_store_commit(ssid);
        assert!(p.must_search(Some(ssid)), "second instance still in flight");
        p.on_store_commit(ssid);
        assert!(!p.must_search(Some(ssid)));
    }

    #[test]
    fn counter_saturates_and_never_underflows() {
        let mut p = trained();
        let mut ssid = 0;
        for i in 0..20 {
            ssid = p.on_store_fetch(STORE_PC, i).unwrap();
        }
        assert_eq!(p.counter(ssid), 7, "3-bit counter saturates at 7");
        for _ in 0..30 {
            p.on_store_commit(ssid);
        }
        assert_eq!(p.counter(ssid), 0);
    }

    #[test]
    fn squash_rolls_back_counter_and_valid() {
        let mut p = trained();
        let ssid = p.on_store_fetch(STORE_PC, 9).unwrap();
        assert!(p.valid(ssid));
        p.on_store_squash(ssid, 9);
        assert_eq!(p.counter(ssid), 0);
        assert!(
            !p.valid(ssid),
            "squashed last-fetched store must not gate loads"
        );
    }

    #[test]
    fn squash_of_older_store_keeps_valid_for_younger() {
        let mut p = trained();
        p.on_store_fetch(STORE_PC, 1).unwrap();
        let ssid = p.on_store_fetch(STORE_PC, 2).unwrap();
        p.on_store_squash(ssid, 1); // older instance squashed
        assert!(
            p.valid(ssid),
            "younger instance is still the last-fetched store"
        );
        assert_eq!(p.counter(ssid), 1);
    }

    #[test]
    fn issue_of_stale_store_does_not_clear_valid() {
        let mut p = trained();
        p.on_store_fetch(STORE_PC, 1).unwrap();
        let ssid = p.on_store_fetch(STORE_PC, 2).unwrap();
        p.on_store_issue(ssid, 1); // older instance issues
        assert!(p.valid(ssid), "set still has the younger unissued store");
        p.on_store_issue(ssid, 2);
        assert!(!p.valid(ssid));
    }

    #[test]
    fn merge_adopts_smaller_ssid() {
        let mut p = StoreSetPredictor::new(4096, 128, 7, true);
        p.train_pair(Pc(0x10), Pc(0x20)); // ssid 0
        p.train_pair(Pc(0x30), Pc(0x40)); // ssid 1
                                          // Cross-link: load 0x10 (set 0) violates with store 0x40 (set 1).
        p.train_pair(Pc(0x10), Pc(0x40));
        let s_load = p.on_load_fetch(Pc(0x10)).ssid.unwrap();
        p.on_store_fetch(Pc(0x40), 5).unwrap();
        let s_store = p.ssid_of(Pc(0x40)).unwrap();
        assert_eq!(s_load, s_store);
        assert_eq!(s_load, 0, "merge keeps the smaller SSID");
    }

    #[test]
    fn training_one_sided_joins_existing_set() {
        let mut p = StoreSetPredictor::new(4096, 128, 7, true);
        p.train_pair(LOAD_PC, STORE_PC);
        // A second store joins the load's existing set.
        p.train_pair(LOAD_PC, Pc(0x3000));
        let a = p.ssid_of(STORE_PC).unwrap();
        let b = p.ssid_of(Pc(0x3000)).unwrap();
        assert_eq!(a, b);
        // A second load joins the store's existing set.
        p.train_pair(Pc(0x1100), STORE_PC);
        assert_eq!(p.ssid_of(Pc(0x1100)).unwrap(), a);
    }

    #[test]
    fn realistic_tables_alias_but_ideal_do_not() {
        let mut real = StoreSetPredictor::new(16, 4, 7, false);
        let mut ideal = StoreSetPredictor::new(16, 4, 7, true);
        // Two unrelated pairs whose PCs collide in a 16-entry SSIT
        // (indices differ by a multiple of 16 words = 64 bytes).
        let (l1, s1) = (Pc(0x0), Pc(0x4));
        let (l2, s2) = (Pc(0x40), Pc(0x44));
        for p in [&mut real, &mut ideal] {
            p.train_pair(l1, s1);
        }
        // In the realistic predictor, l2 aliases l1's SSIT entry.
        let real_pred = real.on_load_fetch(l2);
        let ideal_pred = ideal.on_load_fetch(l2);
        assert!(real_pred.ssid.is_some(), "aliasing gives l2 a spurious set");
        assert!(ideal_pred.ssid.is_none(), "alias-free tables do not");
        let _ = (s2, l2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_ssit_size_panics() {
        let _ = StoreSetPredictor::new(1000, 128, 7, false);
    }
}
