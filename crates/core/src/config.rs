//! Configuration of the load/store queue models.
//!
//! A single [`LsqConfig`] describes one design point: queue capacities and
//! search ports, which search-filtering predictor runs in front of the
//! store queue (§2.1), how load-load ordering is enforced (§2.2), and
//! whether and how the queues are segmented (§3). The paper's figures are
//! sweeps over these fields; `LsqConfig` provides named constructors for
//! the recurring design points.

/// An invalid [`LsqConfig`] (or simulator configuration built on one).
///
/// Carries a human-readable description of the first inconsistent field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Creates an error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Which predictor filters load → store-queue searches (paper §2.1,
/// Figures 6 and 7).
///
/// In every variant the underlying store-set predictor still provides
/// memory-dependence *issue gating* (the paper's Table 1 base
/// configuration includes it); the variants differ only in which loads
/// spend a store-queue search port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Conventional: every load searches the store queue.
    #[default]
    None,
    /// Oracle: a load searches iff an older in-flight store to the same
    /// word exists at the moment the load issues.
    Perfect,
    /// Alias-free emulation of the store-load pair predictor: unbounded
    /// tables, so store sets never conflict. Overly eager to predict
    /// independence (the paper's "aggressive" predictor).
    Aggressive,
    /// The paper's store-load pair predictor on realistic 4K-entry SSIT /
    /// 128-entry LFST tables with a 3-bit counter per LFST entry.
    Pair,
}

impl PredictorKind {
    /// Whether store-load order violations are detected when the store
    /// *commits* (the §2.1 timing change) rather than when it executes.
    ///
    /// The pair and aggressive predictors can miss a dependent load that
    /// has not issued when the store executes, so detection must move to
    /// commit; conventional and perfect schemes keep execute-time checks.
    pub fn detects_at_commit(self) -> bool {
        matches!(self, PredictorKind::Aggressive | PredictorKind::Pair)
    }

    /// Whether this predictor uses the realistic (aliasing) tables.
    pub fn uses_real_tables(self) -> bool {
        matches!(
            self,
            PredictorKind::None | PredictorKind::Perfect | PredictorKind::Pair
        )
    }
}

/// How load-load ordering (same-address loads, §2.2) is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadOrderPolicy {
    /// Conventional: loads issue out of order and every executing load
    /// searches the load queue (consumes an LQ search port).
    #[default]
    SearchLoadQueue,
    /// Loads issue in program order (w.r.t. other loads) but still
    /// fruitlessly search the load queue — the paper's
    /// "in-order-always-search" strawman in Figure 9.
    InOrderAlwaysSearch,
    /// Loads issue in program order and skip the search — the paper's
    /// "0-entry load buffer" point in Figure 9.
    InOrderNoSearch,
    /// The paper's load buffer of the given capacity: at most N loads may
    /// be in flight issued out of order past an older unissued load;
    /// further out-of-order loads stall until an entry frees. Executing
    /// loads search the load buffer instead of the load queue.
    LoadBuffer(usize),
}

impl LoadOrderPolicy {
    /// Whether loads are forced to issue in program order among loads.
    pub fn in_order(self) -> bool {
        matches!(
            self,
            LoadOrderPolicy::InOrderAlwaysSearch | LoadOrderPolicy::InOrderNoSearch
        )
    }

    /// Whether an executing load consumes a load-queue search port.
    pub fn searches_lq(self) -> bool {
        matches!(
            self,
            LoadOrderPolicy::SearchLoadQueue | LoadOrderPolicy::InOrderAlwaysSearch
        )
    }

    /// Load-buffer capacity, if the load-buffer mechanism is active.
    pub fn buffer_entries(self) -> Option<usize> {
        match self {
            LoadOrderPolicy::LoadBuffer(n) => Some(n),
            _ => None,
        }
    }
}

/// Segment allocation strategy (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegAlloc {
    /// One logical circular queue laid linearly across segments;
    /// allocation advances to the next segment even when the current one
    /// has free entries. Spreads entries (higher aggregate bandwidth,
    /// longer searches).
    NoSelfCircular,
    /// Each segment is its own circular buffer; allocation stays in the
    /// current segment while it has free entries. Compacts entries
    /// (shorter searches).
    SelfCircular,
}

/// Segmentation of one queue (paper §3): `segments` smaller queues of
/// `entries_per_segment` entries, searched as a pipeline — one segment per
/// cycle, each segment having its own set of search ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegConfig {
    /// Number of segments in the chain.
    pub segments: usize,
    /// Entries per segment.
    pub entries_per_segment: usize,
    /// Allocation strategy.
    pub alloc: SegAlloc,
}

impl SegConfig {
    /// The paper's evaluated design: four 28-entry segments (112 total).
    pub fn paper(alloc: SegAlloc) -> Self {
        Self {
            segments: 4,
            entries_per_segment: 28,
            alloc,
        }
    }

    /// Total capacity across segments.
    pub fn total_entries(&self) -> usize {
        self.segments * self.entries_per_segment
    }
}

/// A complete LSQ design point.
///
/// Hashable so the experiment engine can use a design point as part of
/// its result-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LsqConfig {
    /// Load-queue capacity when unsegmented (paper base: 32).
    pub lq_entries: usize,
    /// Store-queue capacity when unsegmented (paper base: 32).
    pub sq_entries: usize,
    /// Search ports per queue (per segment when segmented). The paper's
    /// base case is 2.
    pub ports: usize,
    /// Store-queue search filtering predictor.
    pub predictor: PredictorKind,
    /// Load-load ordering enforcement.
    pub load_order: LoadOrderPolicy,
    /// Segmentation, if any (applies to both queues).
    pub segmentation: Option<SegConfig>,
    /// SSIT size (paper: 4K entries).
    pub ssit_entries: usize,
    /// LFST size (paper: 128 entries).
    pub lfst_entries: usize,
    /// Saturation bound of the per-LFST-entry counter (3 bits → 7).
    pub counter_max: u8,
    /// Whether store-set issue gating is enabled (Table 1 includes the
    /// predictor; disable only for ablation studies).
    pub store_set_gating: bool,
    /// Whether detected load-load ordering violations squash (the paper's
    /// §2.2 scheme 1, as in Alpha). Off by default: the paper's
    /// uniprocessor evaluation measures the *search bandwidth*; squashes
    /// there require multiprocessor invalidations. Enable for the
    /// supplementary coherence experiments.
    pub load_load_squash: bool,
}

impl Default for LsqConfig {
    /// The paper's base case: a conventional two-ported 32+32-entry LSQ
    /// (all loads search the SQ; all loads search the LQ for load-load
    /// ordering), with store-set issue gating.
    fn default() -> Self {
        Self {
            lq_entries: 32,
            sq_entries: 32,
            ports: 2,
            predictor: PredictorKind::None,
            load_order: LoadOrderPolicy::SearchLoadQueue,
            segmentation: None,
            ssit_entries: 4096,
            lfst_entries: 128,
            counter_max: 7,
            store_set_gating: true,
            load_load_squash: false,
        }
    }
}

impl LsqConfig {
    /// The conventional base case with a given number of ports.
    pub fn conventional(ports: usize) -> Self {
        Self {
            ports,
            ..Self::default()
        }
    }

    /// Both §2 bandwidth-reduction techniques on a queue with the given
    /// ports: the pair predictor and a 2-entry load buffer (Figure 10).
    pub fn with_techniques(ports: usize) -> Self {
        Self {
            ports,
            predictor: PredictorKind::Pair,
            load_order: LoadOrderPolicy::LoadBuffer(2),
            ..Self::default()
        }
    }

    /// Segmentation alone on the conventional queue (Figure 11).
    pub fn segmented(alloc: SegAlloc) -> Self {
        Self {
            segmentation: Some(SegConfig::paper(alloc)),
            ..Self::default()
        }
    }

    /// All three techniques on a one-ported queue (Figure 12): pair
    /// predictor, 2-entry load buffer, self-circular 4 × 28 segmentation.
    pub fn all_techniques_one_port() -> Self {
        Self {
            ports: 1,
            predictor: PredictorKind::Pair,
            load_order: LoadOrderPolicy::LoadBuffer(2),
            segmentation: Some(SegConfig::paper(SegAlloc::SelfCircular)),
            ..Self::default()
        }
    }

    /// Effective load-queue capacity (accounting for segmentation).
    pub fn lq_capacity(&self) -> usize {
        self.segmentation
            .map_or(self.lq_entries, |s| s.total_entries())
    }

    /// Effective store-queue capacity (accounting for segmentation).
    pub fn sq_capacity(&self) -> usize {
        self.segmentation
            .map_or(self.sq_entries, |s| s.total_entries())
    }

    /// Number of segments (1 when unsegmented).
    pub fn num_segments(&self) -> usize {
        self.segmentation.map_or(1, |s| s.segments)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistent field
    /// (zero capacities, zero ports, or empty predictor tables).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lq_capacity() == 0 || self.sq_capacity() == 0 {
            return Err(ConfigError::new("queue capacity must be non-zero"));
        }
        if self.ports == 0 {
            return Err(ConfigError::new("search ports must be non-zero"));
        }
        if self.ssit_entries == 0 || !self.ssit_entries.is_power_of_two() {
            return Err(ConfigError::new(
                "SSIT entries must be a non-zero power of two",
            ));
        }
        if self.lfst_entries == 0 {
            return Err(ConfigError::new("LFST entries must be non-zero"));
        }
        if let Some(seg) = &self.segmentation {
            if seg.segments == 0 || seg.entries_per_segment == 0 {
                return Err(ConfigError::new(
                    "segments and entries per segment must be non-zero",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests mutate one field of a default config
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_base_case() {
        let c = LsqConfig::default();
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.ports, 2);
        assert_eq!(c.predictor, PredictorKind::None);
        assert_eq!(c.load_order, LoadOrderPolicy::SearchLoadQueue);
        assert!(c.segmentation.is_none());
        assert_eq!(c.ssit_entries, 4096);
        assert_eq!(c.lfst_entries, 128);
        assert_eq!(c.counter_max, 7);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn detection_timing_by_predictor() {
        assert!(!PredictorKind::None.detects_at_commit());
        assert!(!PredictorKind::Perfect.detects_at_commit());
        assert!(PredictorKind::Aggressive.detects_at_commit());
        assert!(PredictorKind::Pair.detects_at_commit());
        assert!(!PredictorKind::Aggressive.uses_real_tables());
        assert!(PredictorKind::Pair.uses_real_tables());
    }

    #[test]
    fn load_order_policy_properties() {
        assert!(LoadOrderPolicy::SearchLoadQueue.searches_lq());
        assert!(!LoadOrderPolicy::SearchLoadQueue.in_order());
        assert!(LoadOrderPolicy::InOrderAlwaysSearch.searches_lq());
        assert!(LoadOrderPolicy::InOrderAlwaysSearch.in_order());
        assert!(!LoadOrderPolicy::InOrderNoSearch.searches_lq());
        assert!(LoadOrderPolicy::InOrderNoSearch.in_order());
        let lb = LoadOrderPolicy::LoadBuffer(2);
        assert!(!lb.searches_lq());
        assert!(!lb.in_order());
        assert_eq!(lb.buffer_entries(), Some(2));
        assert_eq!(LoadOrderPolicy::SearchLoadQueue.buffer_entries(), None);
    }

    #[test]
    fn paper_segmentation_is_4x28() {
        let s = SegConfig::paper(SegAlloc::SelfCircular);
        assert_eq!(s.segments, 4);
        assert_eq!(s.entries_per_segment, 28);
        assert_eq!(s.total_entries(), 112);
    }

    #[test]
    fn capacity_accounts_for_segmentation() {
        let c = LsqConfig::segmented(SegAlloc::SelfCircular);
        assert_eq!(c.lq_capacity(), 112);
        assert_eq!(c.sq_capacity(), 112);
        assert_eq!(c.num_segments(), 4);
        let base = LsqConfig::default();
        assert_eq!(base.lq_capacity(), 32);
        assert_eq!(base.num_segments(), 1);
    }

    #[test]
    fn named_design_points() {
        let t = LsqConfig::with_techniques(1);
        assert_eq!(t.ports, 1);
        assert_eq!(t.predictor, PredictorKind::Pair);
        assert_eq!(t.load_order, LoadOrderPolicy::LoadBuffer(2));
        let all = LsqConfig::all_techniques_one_port();
        assert_eq!(all.ports, 1);
        assert_eq!(all.segmentation.unwrap().alloc, SegAlloc::SelfCircular);
        assert!(all.validate().is_ok());
    }

    #[test]
    fn config_error_is_a_real_error_type() {
        let e = LsqConfig {
            ports: 0,
            ..LsqConfig::default()
        }
        .validate()
        .unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("invalid configuration"));
        assert!(msg.contains("ports"));
        // Usable with dyn Error consumers.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = LsqConfig::default();
        c.ports = 0;
        assert!(c.validate().is_err());
        let mut c = LsqConfig::default();
        c.lq_entries = 0;
        assert!(c.validate().is_err());
        let mut c = LsqConfig::default();
        c.ssit_entries = 1000; // not a power of two
        assert!(c.validate().is_err());
        let mut c = LsqConfig::segmented(SegAlloc::SelfCircular);
        c.segmentation = Some(SegConfig {
            segments: 0,
            entries_per_segment: 28,
            alloc: SegAlloc::SelfCircular,
        });
        assert!(c.validate().is_err());
    }
}
