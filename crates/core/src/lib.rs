#![warn(missing_docs)]

//! # lsq-core — the paper's contribution
//!
//! Load/store-queue models from Park, Ooi & Vijaykumar, *Reducing Design
//! Complexity of the Load/Store Queue* (MICRO-36, 2003):
//!
//! * [`StoreSetPredictor`] — the store-set predictor extended into the
//!   **store-load pair predictor** (§2.1): loads predicted independent of
//!   all in-flight stores skip the store-queue search, cutting its search
//!   bandwidth demand; violation detection moves to store commit.
//! * [`LoadBuffer`] — the **load buffer** (§2.2): a ≤4-entry buffer
//!   holding only out-of-order-issued loads, replacing whole-load-queue
//!   searches for load-load ordering.
//! * [`SegmentedAlloc`]/[`PortBook`] — **segmentation** (§3): the queue
//!   becomes a chain of small segments searched as a pipeline, with
//!   self-circular or no-self-circular allocation.
//! * [`Lsq`] — the composed, configurable model the pipeline drives; every
//!   design point in the paper's figures is an [`LsqConfig`].
//!
//! # Examples
//!
//! ```
//! use lsq_core::{Lsq, LsqConfig, LoadIssue};
//! use lsq_isa::{Pc, Addr};
//!
//! let mut lsq = Lsq::new(LsqConfig::default())?;
//! lsq.begin_cycle();
//! lsq.dispatch_store(0, Pc(0x100), Addr(0x40));
//! lsq.dispatch_load(1, Pc(0x104), Addr(0x40));
//! lsq.store_issue(0);
//! lsq.begin_cycle();
//! if let LoadIssue::Issued(issued) = lsq.load_issue(1) {
//!     assert_eq!(issued.forwarded_from, Some(0)); // store-to-load forwarding
//! }
//! # Ok::<(), lsq_core::ConfigError>(())
//! ```

pub mod config;
pub mod load_buffer;
pub mod lsq;
pub mod segmented;
pub mod stats;
pub mod store_set;

pub use config::{ConfigError, LoadOrderPolicy, LsqConfig, PredictorKind, SegAlloc, SegConfig};
pub use load_buffer::{LbIssue, LoadBuffer};
pub use lsq::{LoadIssue, LoadIssued, Lsq, StoreDrain, StoreIssue};
pub use segmented::{Placement, PortBook, SegmentedAlloc};
pub use stats::LsqStats;
pub use store_set::{LoadPrediction, Ssid, StoreSetPredictor};
