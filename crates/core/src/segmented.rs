//! Segmentation machinery (paper §3): segment allocation strategies and
//! the pipelined search-port book.
//!
//! A segmented queue is a chain of small queues. Searches proceed one
//! segment per cycle (toward the head for forwarding searches, toward the
//! tail for violation searches) and each segment has its own search
//! ports, so distinct segments can serve different searches in the same
//! cycle — that is where segmentation's extra aggregate bandwidth comes
//! from, and where its extra latency and port contention come from.
//!
//! [`SegmentedAlloc`] implements the two §3.1 allocation strategies.
//! An unsegmented queue is the degenerate single-segment case.
//!
//! [`PortBook`] tracks port reservations over a sliding window of future
//! cycles: a k-segment search books one port in segment `s_i` at cycle
//! `t + i` for each step, all-or-nothing. A failed booking means the
//! searcher must wait (delayed store commit / stalled load issue — the
//! paper's §3.2 contention resolutions).

use crate::config::SegAlloc;
use std::collections::VecDeque;

/// Where an entry landed: its segment and (for the ring strategy) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Segment index in `0..segments`.
    pub segment: usize,
    /// Slot index within the whole structure (ring strategy) — needed to
    /// free the exact slot later. Self-circular uses only per-segment
    /// counts and stores the segment here redundantly.
    pub slot: usize,
}

/// Allocation state for one segmented queue.
#[derive(Debug, Clone)]
pub struct SegmentedAlloc {
    segments: usize,
    per_segment: usize,
    alloc: SegAlloc,
    /// Ring strategy: occupancy of each physical slot.
    slots: Vec<bool>,
    /// Ring strategy: next slot to try.
    tail_pos: usize,
    /// Self-circular: free entries per segment.
    free: Vec<usize>,
    /// Self-circular: segment currently receiving allocations.
    cur_seg: usize,
    occupied: usize,
}

impl SegmentedAlloc {
    /// Creates an empty allocator.
    ///
    /// # Panics
    ///
    /// Panics if `segments` or `per_segment` is zero.
    pub fn new(segments: usize, per_segment: usize, alloc: SegAlloc) -> Self {
        assert!(segments > 0 && per_segment > 0, "empty segmented queue");
        Self {
            segments,
            per_segment,
            alloc,
            slots: vec![false; segments * per_segment],
            tail_pos: 0,
            free: vec![per_segment; segments],
            cur_seg: 0,
            occupied: 0,
        }
    }

    /// An unsegmented queue of `capacity` entries (one segment).
    pub fn unsegmented(capacity: usize) -> Self {
        Self::new(1, capacity, SegAlloc::SelfCircular)
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.segments * self.per_segment
    }

    /// Entries currently allocated.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Whether an allocation would currently succeed.
    pub fn can_allocate(&self) -> bool {
        match self.alloc {
            // The ring stalls when the slot at the tail position is still
            // live, even if other slots are free.
            SegAlloc::NoSelfCircular => !self.slots[self.tail_pos],
            SegAlloc::SelfCircular => self.occupied < self.capacity(),
        }
    }

    /// Allocates a slot for a new (youngest) entry, or `None` when the
    /// strategy cannot place it.
    pub fn allocate(&mut self) -> Option<Placement> {
        match self.alloc {
            SegAlloc::NoSelfCircular => {
                if self.slots[self.tail_pos] {
                    return None;
                }
                let slot = self.tail_pos;
                self.slots[slot] = true;
                self.tail_pos = (self.tail_pos + 1) % self.slots.len();
                self.occupied += 1;
                Some(Placement {
                    segment: slot / self.per_segment,
                    slot,
                })
            }
            SegAlloc::SelfCircular => {
                // Stay in the current segment while it has free entries;
                // otherwise move to the next segment in chain order.
                for step in 0..self.segments {
                    let seg = (self.cur_seg + step) % self.segments;
                    if self.free[seg] > 0 {
                        self.free[seg] -= 1;
                        self.cur_seg = seg;
                        self.occupied += 1;
                        return Some(Placement {
                            segment: seg,
                            slot: seg * self.per_segment,
                        });
                    }
                }
                None
            }
        }
    }

    /// Frees a previously allocated placement (at commit or squash).
    pub fn free(&mut self, p: Placement) {
        match self.alloc {
            SegAlloc::NoSelfCircular => {
                debug_assert!(self.slots[p.slot], "double free of slot {}", p.slot);
                self.slots[p.slot] = false;
            }
            SegAlloc::SelfCircular => {
                debug_assert!(self.free[p.segment] < self.per_segment, "double free");
                self.free[p.segment] += 1;
            }
        }
        self.occupied -= 1;
    }

    /// After a squash, rewinds the allocation cursor so refetched
    /// instructions are placed where the squashed ones were.
    /// `youngest_surviving` is the placement of the youngest entry still
    /// allocated, or `None` when the queue emptied.
    pub fn rewind_after_squash(
        &mut self,
        oldest_squashed: Option<Placement>,
        youngest_surviving: Option<Placement>,
    ) {
        match self.alloc {
            SegAlloc::NoSelfCircular => {
                if let Some(p) = oldest_squashed {
                    self.tail_pos = p.slot;
                }
            }
            SegAlloc::SelfCircular => {
                self.cur_seg = youngest_surviving.map_or(0, |p| p.segment);
            }
        }
    }
}

/// Port reservations over a sliding window of future cycles.
///
/// `window[offset][segment]` counts ports already booked for cycle
/// `now + offset` in that segment. The window is as deep as the segment
/// chain, the longest possible pipelined search.
#[derive(Debug, Clone)]
pub struct PortBook {
    ports: usize,
    window: VecDeque<Vec<usize>>,
}

impl PortBook {
    /// Creates a book for a queue with `segments` segments and `ports`
    /// search ports per segment.
    ///
    /// # Panics
    ///
    /// Panics if `ports` or `segments` is zero.
    pub fn new(segments: usize, ports: usize) -> Self {
        assert!(
            ports > 0 && segments > 0,
            "ports and segments must be non-zero"
        );
        Self {
            ports,
            window: (0..segments).map(|_| vec![0; segments]).collect(),
        }
    }

    /// Advances to the next cycle: reservations for the old current cycle
    /// expire and a fresh farthest-future cycle opens. The expired row is
    /// recycled as the new one, so this runs every simulated cycle without
    /// allocating.
    pub fn begin_cycle(&mut self) {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the sliding window always holds at least the current segment row")
        let mut row = self.window.pop_front().expect("window is never empty");
        row.fill(0);
        self.window.push_back(row);
    }

    /// Ports still free in `segment` this cycle.
    pub fn free_now(&self, segment: usize) -> usize {
        self.ports - self.window[0][segment]
    }

    /// Whether a pipelined search touching `path[i]` at cycle offset `i`
    /// could be booked right now (no state change).
    ///
    /// # Panics
    ///
    /// Panics if the path is longer than the window (searches are at most
    /// `segments` long) or names an out-of-range segment.
    pub fn can_book(&self, path: &[usize]) -> bool {
        assert!(
            path.len() <= self.window.len(),
            "search longer than segment chain"
        );
        path.iter()
            .enumerate()
            .all(|(offset, &seg)| self.window[offset][seg] < self.ports)
    }

    /// Books a search previously checked with [`Self::can_book`].
    ///
    /// # Panics
    ///
    /// Panics if any slot on the path is already full.
    pub fn book(&mut self, path: &[usize]) {
        assert!(self.can_book(path), "booking an unavailable path");
        for (offset, &seg) in path.iter().enumerate() {
            self.window[offset][seg] += 1;
        }
    }

    /// Attempts to book a pipelined search touching `path[i]` at cycle
    /// offset `i`. All-or-nothing: on any full slot, nothing is booked and
    /// `false` is returned.
    ///
    /// # Panics
    ///
    /// Panics if the path is longer than the window (searches are at most
    /// `segments` long) or names an out-of-range segment.
    pub fn try_book(&mut self, path: &[usize]) -> bool {
        if !self.can_book(path) {
            return false;
        }
        self.book(path);
        true
    }

    /// Clears all reservations (used when the pipeline squashes).
    pub fn clear(&mut self) {
        for cycle in &mut self.window {
            cycle.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    mod no_self_circular {
        use super::*;

        #[test]
        fn fills_segments_linearly() {
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::NoSelfCircular);
            let p: Vec<_> = (0..4).map(|_| a.allocate().unwrap()).collect();
            assert_eq!(
                p.iter().map(|p| p.segment).collect::<Vec<_>>(),
                [0, 0, 1, 1]
            );
            assert!(!a.can_allocate());
            assert!(a.allocate().is_none());
        }

        #[test]
        fn ring_stalls_on_live_tail_slot_despite_free_space() {
            // The defining property of no-self-circular: allocation moves
            // linearly even when earlier slots have freed, so a freed
            // *middle* slot does not help.
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::NoSelfCircular);
            let p0 = a.allocate().unwrap();
            let _p1 = a.allocate().unwrap();
            let _p2 = a.allocate().unwrap();
            let p3 = a.allocate().unwrap();
            // Free slot 0 (head commits) but not the others.
            a.free(p0);
            // Tail wrapped to slot 0, which is now free: allocate there.
            let p4 = a.allocate().unwrap();
            assert_eq!(p4.slot, 0);
            assert_eq!(p4.segment, 0);
            // Next tail slot (1) is still live: stall despite slot 0 - er,
            // despite capacity existing only at... nowhere else. Free p3
            // and confirm the ring still stalls because tail points at 1.
            a.free(p3);
            assert!(
                !a.can_allocate(),
                "ring blocked on live slot 1 though slot 3 is free"
            );
        }

        #[test]
        fn spreads_small_footprint_across_two_segments() {
            // The paper's Table 5 explanation: a working set that fits in
            // one segment still straddles two under no-self-circular.
            let mut a = SegmentedAlloc::new(4, 4, SegAlloc::NoSelfCircular);
            // Steady state: 4 in flight, alternating allocate/free.
            let mut live = VecDeque::new();
            for _ in 0..4 {
                live.push_back(a.allocate().unwrap());
            }
            let mut segments_used = std::collections::HashSet::new();
            for _ in 0..32 {
                let old = live.pop_front().unwrap();
                a.free(old);
                let new = a.allocate().unwrap();
                segments_used.insert(new.segment);
                live.push_back(new);
            }
            assert!(
                segments_used.len() >= 2,
                "entries should spread across segments"
            );
        }

        #[test]
        fn rewind_resets_tail_to_squash_point() {
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::NoSelfCircular);
            let _p0 = a.allocate().unwrap();
            let p1 = a.allocate().unwrap();
            let p2 = a.allocate().unwrap();
            // Squash the two youngest.
            a.free(p2);
            a.free(p1);
            a.rewind_after_squash(
                Some(p1),
                Some(Placement {
                    segment: 0,
                    slot: 0,
                }),
            );
            let again = a.allocate().unwrap();
            assert_eq!(again.slot, p1.slot, "refetch reuses the squashed slot");
        }
    }

    mod self_circular {
        use super::*;

        #[test]
        fn compacts_into_one_segment_while_space_frees() {
            // The defining property of self-circular: a small working set
            // stays in segment 0 forever.
            let mut a = SegmentedAlloc::new(4, 4, SegAlloc::SelfCircular);
            let mut live = VecDeque::new();
            for _ in 0..3 {
                live.push_back(a.allocate().unwrap());
            }
            for _ in 0..32 {
                let old = live.pop_front().unwrap();
                a.free(old);
                let new = a.allocate().unwrap();
                assert_eq!(new.segment, 0, "small footprint never leaves segment 0");
                live.push_back(new);
            }
        }

        #[test]
        fn overflows_to_next_segment_only_when_full() {
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::SelfCircular);
            assert_eq!(a.allocate().unwrap().segment, 0);
            assert_eq!(a.allocate().unwrap().segment, 0);
            assert_eq!(a.allocate().unwrap().segment, 1);
            assert_eq!(a.allocate().unwrap().segment, 1);
            assert!(a.allocate().is_none());
        }

        #[test]
        fn uses_full_capacity_unlike_ring() {
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::SelfCircular);
            let p0 = a.allocate().unwrap();
            let _ = a.allocate().unwrap();
            let _ = a.allocate().unwrap();
            let _ = a.allocate().unwrap();
            a.free(p0);
            assert!(a.can_allocate());
            // Freed entry in segment 0 is reused (allocation wraps around
            // the chain back to the segment with space).
            let p = a.allocate().unwrap();
            assert_eq!(p.segment, 0);
        }

        #[test]
        fn rewind_returns_to_surviving_segment() {
            let mut a = SegmentedAlloc::new(2, 2, SegAlloc::SelfCircular);
            let p0 = a.allocate().unwrap();
            let p1 = a.allocate().unwrap();
            let p2 = a.allocate().unwrap();
            assert_eq!(p2.segment, 1);
            // Squash the two youngest; only p0 (segment 0) survives.
            a.free(p2);
            a.free(p1);
            a.rewind_after_squash(Some(p1), Some(p0));
            assert_eq!(
                a.allocate().unwrap().segment,
                0,
                "allocation resumes in segment 0"
            );
        }
    }

    mod port_book {
        use super::*;

        #[test]
        fn single_segment_single_port() {
            let mut b = PortBook::new(1, 1);
            assert!(b.try_book(&[0]));
            assert!(!b.try_book(&[0]), "port exhausted this cycle");
            b.begin_cycle();
            assert!(b.try_book(&[0]));
        }

        #[test]
        fn pipelined_searches_in_different_segments_coexist() {
            // The paper's Figure 5 example: segment 1 serves two store
            // searches while segment 3 serves two load searches, all in
            // the same cycle, on a 2-ported queue.
            let mut b = PortBook::new(4, 2);
            assert!(b.try_book(&[0, 1]));
            assert!(b.try_book(&[0, 1]));
            assert!(b.try_book(&[2, 3]));
            assert!(b.try_book(&[2, 3]));
            // Segment 0 is now full this cycle.
            assert!(!b.try_book(&[0]));
            // But a search starting elsewhere is fine.
            assert!(b.try_book(&[3]));
        }

        #[test]
        fn booking_is_all_or_nothing() {
            let mut b = PortBook::new(2, 1);
            assert!(b.try_book(&[0, 1]));
            // This wants segment 1 at offset 1, which is taken.
            assert!(!b.try_book(&[1, 1]));
            // Offset-0 use of segment 1 must NOT have been recorded by the
            // failed attempt.
            assert!(b.try_book(&[1]));
        }

        #[test]
        fn future_reservations_shift_with_cycles() {
            let mut b = PortBook::new(2, 1);
            assert!(b.try_book(&[0, 1])); // books seg1 at offset 1
            b.begin_cycle();
            // The seg1 reservation is now at offset 0.
            assert!(!b.try_book(&[1]));
            assert!(b.try_book(&[0]));
            b.begin_cycle();
            assert!(b.try_book(&[1]));
        }

        #[test]
        fn contention_scenario_from_section_3_2() {
            // Two stores start a violation search in segment 0 at t; a
            // load wants segment 1 at t+1 where the stores will be.
            let mut b = PortBook::new(2, 2);
            assert!(b.try_book(&[0, 1]));
            assert!(b.try_book(&[0, 1]));
            // Loads issuing from segment 1 next cycle collide at offset 1.
            assert!(b.try_book(&[1])); // this cycle is fine
            b.begin_cycle();
            // Both ports of segment 1 are taken by the arriving stores.
            assert!(!b.try_book(&[1]));
        }

        #[test]
        fn clear_releases_everything() {
            let mut b = PortBook::new(2, 1);
            assert!(b.try_book(&[0]));
            assert!(b.try_book(&[1, 0]));
            b.clear();
            assert!(b.try_book(&[0]));
            assert!(b.try_book(&[1, 0]));
        }

        #[test]
        #[should_panic(expected = "longer than segment chain")]
        fn overlong_path_panics() {
            let mut b = PortBook::new(2, 1);
            let _ = b.try_book(&[0, 1, 0]);
        }

        #[test]
        fn free_now_reports_remaining_ports() {
            let mut b = PortBook::new(2, 2);
            assert_eq!(b.free_now(0), 2);
            b.try_book(&[0]);
            assert_eq!(b.free_now(0), 1);
            assert_eq!(b.free_now(1), 2);
        }
    }
}
