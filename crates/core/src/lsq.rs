//! The load/store queue engine: a single configurable model composing the
//! conventional queues, the store-set / store-load pair predictor, the
//! load buffer, and segmentation, as selected by [`LsqConfig`].
//!
//! The pipeline drives an [`Lsq`] with one call per microarchitectural
//! event:
//!
//! * [`Lsq::dispatch_load`] / [`Lsq::dispatch_store`] when an instruction
//!   enters the queues (program order);
//! * [`Lsq::load_issue`] when a ready load wants to access memory — this
//!   is where search-port arbitration, predictor filtering, load-buffer
//!   allocation, and store-to-load forwarding happen;
//! * [`Lsq::store_issue`] when a store's address generation completes —
//!   in the conventional scheme this is also where the store searches the
//!   load queue for premature loads;
//! * [`Lsq::commit_load`] / [`Lsq::store_retire`] at retirement, then
//!   [`Lsq::drain_store`] when the store leaves the store queue — in the
//!   pair scheme the commit-time violation search happens at the drain
//!   (§2.1);
//! * [`Lsq::squash_from`] on any flush.
//!
//! Addresses are known to the *model* at dispatch (the trace is the
//! oracle) but become visible to the *hardware* only at issue; forwarding
//! and violation checks use hardware-visible state, while the perfect
//! predictor peeks at the oracle.

use crate::config::{ConfigError, LsqConfig, PredictorKind};
use crate::load_buffer::{LbIssue, LoadBuffer};
use crate::segmented::{Placement, PortBook, SegmentedAlloc};
use crate::stats::LsqStats;
use crate::store_set::{Ssid, StoreSetPredictor};
use lsq_isa::{Addr, Pc};
use lsq_obs::{Event, MemOp, NopTracer, QueueSide, Tracer};
use std::collections::VecDeque;

/// Outcome of a load trying to issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadIssue {
    /// Store-set gating: the load waits for this store to issue.
    WaitStore(u64),
    /// An older load has not issued and the policy is in-order.
    InOrderStall,
    /// No store-queue search port available this cycle.
    NoSqPort,
    /// No load-queue search port available this cycle (load-load search).
    NoLqPort,
    /// The load buffer is full.
    LbFull,
    /// The load issued.
    Issued(LoadIssued),
}

/// Details of a successful load issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadIssued {
    /// Store the load's value was forwarded from, if any.
    pub forwarded_from: Option<u64>,
    /// Extra cycles added to the load's latency by multi-segment
    /// searching (0 when unsegmented).
    pub extra_cycles: u32,
    /// Whether dependents may be scheduled early assuming a constant hit
    /// latency (§3: only when the search cannot leave one segment).
    pub early_wakeup: bool,
    /// Whether the load spent a store-queue search.
    pub searched_sq: bool,
    /// A younger same-word load issued out of order, detected by this
    /// load's load-queue or load-buffer search (§2.2 scheme 1); `Some`
    /// only when [`crate::LsqConfig::load_load_squash`] is enabled. The
    /// pipeline squashes from the victim.
    pub load_order_violation: Option<u64>,
}

/// Outcome of a store's address generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreIssue {
    /// No load-queue search port for the execute-time violation search.
    NoLqPort,
    /// The store executed; a violation victim (oldest premature load) may
    /// have been detected (conventional/perfect schemes only).
    Issued {
        /// Oldest violating load, to be squashed (with everything
        /// younger) by the pipeline.
        violation: Option<u64>,
    },
}

/// Outcome of draining the oldest retired store from the store queue.
///
/// Retirement (leaving the ROB) and draining (writing the cache,
/// performing the pair scheme's commit-time violation search, and freeing
/// the SQ entry) are separate events: the paper's §3.2 notes that a
/// delayed commit-time search is harmless precisely because "the store is
/// not in the pipeline anymore".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDrain {
    /// No retired store is waiting to drain.
    Idle,
    /// Load-queue ports unavailable for the commit-time search: the drain
    /// retries next cycle (§3.2's easy contention fix).
    Blocked,
    /// A store drained; the caller writes its address to the cache.
    Drained {
        /// The drained store.
        seq: u64,
        /// Its address (for the cache write).
        addr: Addr,
        /// Oldest violating load detected by the commit-time search, to
        /// be squashed by the pipeline (pair/aggressive schemes only).
        violation: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct LqEntry {
    seq: u64,
    pc: Pc,
    addr: Addr,
    issued: bool,
    forwarded_from: Option<u64>,
    place: Placement,
    ssid: Option<Ssid>,
    wait_store: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct SqEntry {
    seq: u64,
    pc: Pc,
    addr: Addr,
    issued: bool,
    /// Left the ROB; waiting to drain (write the cache and free the
    /// entry).
    retired: bool,
    place: Placement,
    ssid: Option<Ssid>,
}

/// The configurable load/store queue model.
///
/// The `T` parameter is the trace sink; the default [`NopTracer`]
/// monomorphizes every emission site away, so untraced queues compile
/// to the pre-tracing code.
#[derive(Debug, Clone)]
pub struct Lsq<T: Tracer = NopTracer> {
    cfg: LsqConfig,
    pred: StoreSetPredictor,
    lb: Option<LoadBuffer>,
    lq: VecDeque<LqEntry>,
    sq: VecDeque<SqEntry>,
    lq_alloc: SegmentedAlloc,
    sq_alloc: SegmentedAlloc,
    lq_ports: PortBook,
    sq_ports: PortBook,
    /// Scratch buffer for store-queue search paths, reused across
    /// searches so the issue path never allocates.
    sq_path_buf: Vec<usize>,
    /// Scratch buffer for load-queue search paths.
    lq_path_buf: Vec<usize>,
    stats: LsqStats,
    tracer: T,
}

impl Lsq<NopTracer> {
    /// Builds an untraced LSQ for the given design point.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an inconsistent [`LsqConfig`].
    pub fn new(cfg: LsqConfig) -> Result<Self, ConfigError> {
        Self::with_tracer(cfg, NopTracer)
    }
}

impl<T: Tracer> Lsq<T> {
    /// Builds an LSQ emitting queue events to `tracer`.
    ///
    /// # Errors
    ///
    /// Returns the validation error of an inconsistent [`LsqConfig`].
    pub fn with_tracer(cfg: LsqConfig, tracer: T) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let (lq_alloc, sq_alloc) = match cfg.segmentation {
            Some(seg) => (
                SegmentedAlloc::new(seg.segments, seg.entries_per_segment, seg.alloc),
                SegmentedAlloc::new(seg.segments, seg.entries_per_segment, seg.alloc),
            ),
            None => (
                SegmentedAlloc::unsegmented(cfg.lq_entries),
                SegmentedAlloc::unsegmented(cfg.sq_entries),
            ),
        };
        let nsegs = cfg.num_segments();
        Ok(Self {
            pred: StoreSetPredictor::new(
                cfg.ssit_entries,
                cfg.lfst_entries,
                cfg.counter_max,
                !cfg.predictor.uses_real_tables(),
            ),
            lb: cfg.load_order.buffer_entries().map(LoadBuffer::new),
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            lq_alloc,
            sq_alloc,
            lq_ports: PortBook::new(nsegs, cfg.ports),
            sq_ports: PortBook::new(nsegs, cfg.ports),
            sq_path_buf: Vec::with_capacity(nsegs),
            lq_path_buf: Vec::with_capacity(nsegs),
            stats: LsqStats::new(nsegs),
            tracer,
            cfg,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &LsqConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LsqStats {
        &self.stats
    }

    /// Advances port bookkeeping to the next cycle. Call exactly once per
    /// simulated cycle, before any issue/commit calls for that cycle.
    // lsq-lint: hot
    pub fn begin_cycle(&mut self) {
        self.lq_ports.begin_cycle();
        self.sq_ports.begin_cycle();
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Whether a load can be allocated this cycle.
    pub fn can_dispatch_load(&self) -> bool {
        self.lq_alloc.can_allocate()
    }

    /// Whether a store can be allocated this cycle.
    pub fn can_dispatch_store(&self) -> bool {
        self.sq_alloc.can_allocate()
    }

    /// Allocates a load-queue entry for load `seq` (program order). The
    /// trace-known address is the oracle address; hardware sees it at
    /// issue.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not younger than every
    /// resident load.
    pub fn dispatch_load(&mut self, seq: u64, pc: Pc, addr: Addr) {
        assert!(self.lq.back().is_none_or(|e| e.seq < seq), "program order");
        // lsq-lint: allow(no-unwrap-in-lib, reason = "dispatch is gated on lq_free() by the pipeline; overflow here is a dispatch-stage bug")
        let place = self.lq_alloc.allocate().expect("load queue full");
        let pred = self.pred.on_load_fetch(pc);
        self.lq.push_back(LqEntry {
            seq,
            pc,
            addr,
            issued: false,
            forwarded_from: None,
            place,
            ssid: pred.ssid,
            // Only an older store can gate this load.
            wait_store: pred.wait_store.filter(|&s| s < seq),
        });
        if let Some(lb) = &mut self.lb {
            lb.on_dispatch(seq, addr);
        }
        self.stats.loads_dispatched += 1;
        if self.tracer.enabled() {
            self.tracer.emit(Event::Dispatch {
                op: MemOp::Load,
                seq,
                pc,
                addr,
            });
        }
    }

    /// Allocates a store-queue entry for store `seq` (program order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is not younger than every
    /// resident store.
    pub fn dispatch_store(&mut self, seq: u64, pc: Pc, addr: Addr) {
        assert!(self.sq.back().is_none_or(|e| e.seq < seq), "program order");
        // lsq-lint: allow(no-unwrap-in-lib, reason = "dispatch is gated on sq_free() by the pipeline; overflow here is a dispatch-stage bug")
        let place = self.sq_alloc.allocate().expect("store queue full");
        let ssid = self.pred.on_store_fetch(pc, seq);
        self.sq.push_back(SqEntry {
            seq,
            pc,
            addr,
            issued: false,
            retired: false,
            place,
            ssid,
        });
        self.stats.stores_dispatched += 1;
        if self.tracer.enabled() {
            self.tracer.emit(Event::Dispatch {
                op: MemOp::Store,
                seq,
                pc,
                addr,
            });
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    // lsq-lint: hot
    fn lq_index(&self, seq: u64) -> Option<usize> {
        self.lq.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    // lsq-lint: hot
    fn sq_index(&self, seq: u64) -> Option<usize> {
        self.sq.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Youngest issued older store writing the same word, if any — the
    /// store-to-load forwarding source.
    // lsq-lint: hot
    fn forwarding_source(&self, load_seq: u64, addr: Addr) -> Option<u64> {
        self.sq
            .iter()
            .rev()
            .filter(|s| s.seq < load_seq)
            .find(|s| s.issued && s.addr.same_word(addr))
            .map(|s| s.seq)
    }

    /// Whether the oracle sees any older in-flight store to the same word
    /// (the perfect predictor's decision).
    // lsq-lint: hot
    fn oracle_dependent(&self, load_seq: u64, addr: Addr) -> bool {
        self.sq
            .iter()
            .any(|s| s.seq < load_seq && s.addr.same_word(addr))
    }

    /// Recomputes `self.sq_path_buf` as the segment path of a forwarding
    /// search: distinct segments of stores older than the load, youngest
    /// first, truncated at the segment containing the forwarding match.
    /// Empty span searches the tail segment only.
    ///
    /// The path lands in a reusable scratch buffer so issuing never
    /// allocates; an unsegmented queue's path is always `[0]`, so the
    /// queue walk is skipped entirely there.
    // lsq-lint: hot
    fn compute_sq_search_path(&mut self, load_seq: u64, addr: Addr) {
        self.sq_path_buf.clear();
        if self.cfg.segmentation.is_none() {
            self.sq_path_buf.push(0);
            return;
        }
        let path = &mut self.sq_path_buf;
        for s in self.sq.iter().rev().filter(|s| s.seq < load_seq) {
            if path.last() != Some(&s.place.segment) && !path.contains(&s.place.segment) {
                path.push(s.place.segment);
            }
            if s.issued && s.addr.same_word(addr) {
                break; // match found in this segment; search stops here
            }
        }
        if path.is_empty() {
            // Nothing older in the queue: the search still occupies one
            // port for a cycle in the segment it starts from.
            path.push(self.sq.back().map_or(0, |s| s.place.segment));
        }
    }

    /// Recomputes `self.lq_path_buf` as the segment path of a store's
    /// violation search over loads younger than the store — distinct
    /// segments oldest-first, stopping at the segment containing the
    /// oldest violating load — and returns that victim, if any.
    // lsq-lint: hot
    fn compute_lq_violation_scan(&mut self, store_seq: u64, addr: Addr) -> Option<u64> {
        let premature = |l: &&LqEntry| {
            l.issued && l.addr.same_word(addr) && l.forwarded_from.is_none_or(|f| f < store_seq)
        };
        self.lq_path_buf.clear();
        if self.cfg.segmentation.is_none() {
            self.lq_path_buf.push(0);
            return self
                .lq
                .iter()
                .filter(|l| l.seq > store_seq)
                .find(premature)
                .map(|l| l.seq);
        }
        let path = &mut self.lq_path_buf;
        let mut victim = None;
        for l in self.lq.iter().filter(|l| l.seq > store_seq) {
            if !path.contains(&l.place.segment) {
                path.push(l.place.segment);
            }
            if premature(&l) {
                victim = Some(l.seq);
                break;
            }
        }
        if path.is_empty() {
            path.push(self.lq.back().map_or(0, |l| l.place.segment));
        }
        victim
    }

    /// Recomputes `self.lq_path_buf` as the segment path of a load-load
    /// ordering search over loads younger than the load (no victim in a
    /// uniprocessor run: the search is pure bandwidth, which is exactly
    /// what the paper measures).
    // lsq-lint: hot
    fn compute_lq_loadload_path(&mut self, load_seq: u64) {
        self.lq_path_buf.clear();
        if self.cfg.segmentation.is_none() {
            self.lq_path_buf.push(0);
            return;
        }
        let path = &mut self.lq_path_buf;
        for l in self.lq.iter().filter(|l| l.seq > load_seq) {
            if !path.contains(&l.place.segment) {
                path.push(l.place.segment);
            }
        }
        if path.is_empty() {
            path.push(self.lq.back().map_or(0, |l| l.place.segment));
        }
    }

    /// Attempts to issue load `seq` this cycle.
    ///
    /// On success the load is marked issued, its forwarding source (if
    /// any) is bound, ports are booked, and the predictor is trained on a
    /// discovered match. On failure nothing changes and the caller
    /// retries a later cycle.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched or already issued.
    // lsq-lint: hot
    pub fn load_issue(&mut self, seq: u64) -> LoadIssue {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "load_issue's documented # Panics contract: seq must be a dispatched, unretired load")
        let idx = self.lq_index(seq).expect("load is in the load queue");
        assert!(!self.lq[idx].issued, "load already issued");
        let addr = self.lq[idx].addr;

        // 1. Store-set issue gating: wait while the predicted store is in
        //    flight and unissued.
        if !self.cfg.store_set_gating {
            self.lq[idx].wait_store = None;
        }
        if let Some(ws) = self.lq[idx].wait_store {
            match self.sq_index(ws) {
                Some(sidx) if !self.sq[sidx].issued => {
                    self.stats.store_set_waits += 1;
                    return LoadIssue::WaitStore(ws);
                }
                _ => self.lq[idx].wait_store = None,
            }
        }

        // 2. In-order load policies gate on older unissued loads.
        if self.cfg.load_order.in_order() && self.lq.iter().take(idx).any(|l| !l.issued) {
            self.stats.in_order_stalls += 1;
            return LoadIssue::InOrderStall;
        }

        // 3. Decide whether this load searches the store queue.
        let searches_sq = match self.cfg.predictor {
            PredictorKind::None => true,
            PredictorKind::Perfect => self.oracle_dependent(seq, addr),
            PredictorKind::Aggressive | PredictorKind::Pair => {
                self.pred.must_search(self.lq[idx].ssid)
            }
        };

        // 4. Check (without booking) every port the load needs. Paths are
        //    computed into the reusable scratch buffers.
        if searches_sq {
            self.compute_sq_search_path(seq, addr);
            if !self.sq_ports.can_book(&self.sq_path_buf) {
                self.stats.sq_port_stalls += 1;
                return LoadIssue::NoSqPort;
            }
        }
        let searches_lq = self.cfg.load_order.searches_lq();
        if searches_lq {
            self.compute_lq_loadload_path(seq);
            if !self.lq_ports.can_book(&self.lq_path_buf) {
                self.stats.lq_port_stalls += 1;
                return LoadIssue::NoLqPort;
            }
        }
        if let Some(lb) = &self.lb {
            // Out-of-order issue needs a load-buffer entry.
            if lb.nilp() != Some(seq) && lb.occupancy() == lb.capacity() {
                self.stats.lb_full_stalls += 1;
                return LoadIssue::LbFull;
            }
        }

        // 5. All resources available: commit the issue.
        let mut extra_cycles = 0u32;
        // §3: dependents are scheduled early only when the load's hit
        // latency is constant, i.e. the load sits in the head segment —
        // a positional property the scheduler knows at schedule time.
        // Loads in younger segments forgo early scheduling even when
        // their search happens to end within one segment.
        let head_segment = self.lq.front().map_or(0, |e| e.place.segment);
        let mut early_wakeup = self.lq[idx].place.segment == head_segment;
        if searches_sq {
            self.sq_ports.book(&self.sq_path_buf);
            self.stats.sq_searches += 1;
            self.stats
                .seg_search_hist
                .record(self.sq_path_buf.len() - 1);
            extra_cycles = (self.sq_path_buf.len() as u32).saturating_sub(1);
            early_wakeup &= self.sq_path_buf.len() <= 1;
        }
        if searches_lq {
            self.lq_ports.book(&self.lq_path_buf);
            self.stats.lq_searches_by_loads += 1;
        }
        let mut load_order_violation = None;
        let mut lb_searched = false;
        if let Some(lb) = &mut self.lb {
            match lb.try_issue(seq) {
                LbIssue::Full => unreachable!("checked above"),
                LbIssue::InOrder {
                    searches,
                    violation,
                } => {
                    self.stats.lb_searches += u64::from(searches);
                    lb_searched = searches > 0;
                    load_order_violation = violation;
                }
                LbIssue::Buffered { violation } => {
                    self.stats.lb_searches += 1;
                    lb_searched = true;
                    load_order_violation = violation;
                }
            }
        } else if searches_lq {
            // Conventional load-load search: detect the oldest younger
            // same-word load already issued out of order.
            load_order_violation = self
                .lq
                .iter()
                .find(|l| l.seq > seq && l.issued && l.addr.same_word(addr))
                .map(|l| l.seq);
        }
        if !self.cfg.load_load_squash {
            load_order_violation = None;
        } else if load_order_violation.is_some() {
            self.stats.load_load_violations += 1;
        }

        let mut useless_search = false;
        let forwarded_from = if searches_sq {
            let hit = self.forwarding_source(seq, addr);
            match hit {
                Some(store_seq) => {
                    self.stats.sq_search_hits += 1;
                    // The pair predictor learns *all* matching pairs, not
                    // just violating ones (§2.1, Figure 2).
                    if matches!(
                        self.cfg.predictor,
                        PredictorKind::Aggressive | PredictorKind::Pair
                    ) {
                        let store_pc =
                            // lsq-lint: allow(no-unwrap-in-lib, reason = "the SQ search just above returned this store, so it is resident")
                            self.sq[self.sq_index(store_seq).expect("store resident")].pc;
                        let load_pc = self.lq[idx].pc;
                        self.pred.train_pair(load_pc, store_pc);
                    }
                }
                None => {
                    if matches!(
                        self.cfg.predictor,
                        PredictorKind::Aggressive | PredictorKind::Pair
                    ) {
                        self.stats.useless_searches += 1;
                        useless_search = true;
                    }
                }
            }
            hit
        } else {
            None
        };

        let e = &mut self.lq[idx];
        e.issued = true;
        e.forwarded_from = forwarded_from;
        self.stats.loads_issued += 1;
        if self.tracer.enabled() {
            let pc = self.lq[idx].pc;
            if searches_sq {
                self.tracer.emit(Event::SqSearch {
                    load: seq,
                    segments: self.sq_path_buf.len() as u32,
                    hit: forwarded_from.is_some(),
                });
                emit_seg_path(&mut self.tracer, QueueSide::Sq, &self.sq_path_buf);
            }
            if searches_lq {
                self.tracer.emit(Event::LqSearch {
                    by: MemOp::Load,
                    seq,
                    segments: self.lq_path_buf.len() as u32,
                });
                emit_seg_path(&mut self.tracer, QueueSide::Lq, &self.lq_path_buf);
            }
            if lb_searched {
                self.tracer.emit(Event::LbSearch { load: seq });
            }
            if let Some(store) = forwarded_from {
                self.tracer.emit(Event::Forward {
                    load: seq,
                    store,
                    addr,
                });
            }
            if useless_search {
                self.tracer.emit(Event::UselessSearch { load: seq, pc });
            }
            self.tracer.emit(Event::Issue {
                op: MemOp::Load,
                seq,
                pc,
                addr,
            });
        }
        LoadIssue::Issued(LoadIssued {
            forwarded_from,
            extra_cycles,
            early_wakeup,
            searched_sq: searches_sq,
            load_order_violation,
        })
    }

    /// Attempts to execute store `seq` (address generation) this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was never dispatched or already executed.
    // lsq-lint: hot
    pub fn store_issue(&mut self, seq: u64) -> StoreIssue {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "store_issue's documented # Panics contract: seq must be a dispatched, unretired store")
        let idx = self.sq_index(seq).expect("store is in the store queue");
        assert!(!self.sq[idx].issued, "store already executed");
        let addr = self.sq[idx].addr;

        // Conventional/perfect schemes: violation search at execute.
        let searches_lq = !self.cfg.predictor.detects_at_commit();
        let mut violation = None;
        if searches_lq {
            let victim = self.compute_lq_violation_scan(seq, addr);
            if !self.lq_ports.can_book(&self.lq_path_buf) {
                self.stats.lq_port_stalls += 1;
                return StoreIssue::NoLqPort;
            }
            self.lq_ports.book(&self.lq_path_buf);
            self.stats.lq_searches_by_stores += 1;
            violation = victim;
        }

        let e = &mut self.sq[idx];
        e.issued = true;
        let (ssid, pc) = (e.ssid, e.pc);
        if let Some(ssid) = ssid {
            self.pred.on_store_issue(ssid, seq);
        }
        self.stats.stores_issued += 1;
        if self.tracer.enabled() {
            if searches_lq {
                self.tracer.emit(Event::LqSearch {
                    by: MemOp::Store,
                    seq,
                    segments: self.lq_path_buf.len() as u32,
                });
                emit_seg_path(&mut self.tracer, QueueSide::Lq, &self.lq_path_buf);
            }
            self.tracer.emit(Event::Issue {
                op: MemOp::Store,
                seq,
                pc,
                addr,
            });
        }

        if let Some(victim) = violation {
            self.record_violation(victim, pc, false);
        }
        StoreIssue::Issued { violation }
    }

    fn record_violation(&mut self, victim: u64, store_pc: Pc, at_commit: bool) {
        self.stats.violations += 1;
        if at_commit {
            self.stats.commit_violations += 1;
        }
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the LQ violation scan just above returned this victim, so it is resident")
        let load_pc = self.lq[self.lq_index(victim).expect("victim resident")].pc;
        self.pred.train_pair(load_pc, store_pc);
        if self.tracer.enabled() {
            self.tracer.emit(Event::Violation {
                victim,
                load_pc,
                store_pc,
                at_commit,
            });
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Retires the oldest load, which must be `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the oldest resident load.
    pub fn commit_load(&mut self, seq: u64) {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "in-order commit retires only loads the LQ tracked at dispatch")
        let front = self.lq.pop_front().expect("commit of empty load queue");
        assert_eq!(front.seq, seq, "loads retire in program order");
        assert!(front.issued, "committing an unissued load");
        self.lq_alloc.free(front.place);
        if let Some(lb) = &mut self.lb {
            lb.on_commit(seq);
        }
    }

    /// Marks store `seq` as retired from the ROB. The store-queue entry
    /// remains resident until [`Lsq::drain_store`] completes its cache
    /// write and (in the pair scheme) commit-time violation search.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not resident, has not executed, or an older
    /// unretired store exists (retirement is in program order).
    pub fn store_retire(&mut self, seq: u64) {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "stores retire in program order after dispatch; a miss here is a pipeline bug")
        let idx = self.sq_index(seq).expect("store resident at retirement");
        assert!(self.sq[idx].issued, "retiring an unexecuted store");
        assert!(
            self.sq.iter().take(idx).all(|s| s.retired),
            "stores retire in program order"
        );
        self.sq[idx].retired = true;
    }

    /// Whether any retired-but-undrained store older than `seq` exists.
    /// Loads must not retire past one: the commit-time violation search
    /// must still find them in the load queue.
    // lsq-lint: hot
    pub fn has_undrained_store_before(&self, seq: u64) -> bool {
        self.sq.front().is_some_and(|s| s.retired && s.seq < seq)
    }

    /// Attempts to drain the oldest retired store: the commit-time
    /// violation search (pair/aggressive schemes) plus freeing the entry.
    /// The caller performs the cache write of the returned address and
    /// charges the d-cache port.
    // lsq-lint: hot
    pub fn drain_store(&mut self) -> StoreDrain {
        let Some(front) = self.sq.front().copied() else {
            return StoreDrain::Idle;
        };
        if !front.retired {
            return StoreDrain::Idle;
        }

        let mut violation = None;
        if self.cfg.predictor.detects_at_commit() {
            let victim = self.compute_lq_violation_scan(front.seq, front.addr);
            if !self.lq_ports.can_book(&self.lq_path_buf) {
                self.stats.commit_port_delays += 1;
                return StoreDrain::Blocked;
            }
            self.lq_ports.book(&self.lq_path_buf);
            self.stats.lq_searches_by_stores += 1;
            violation = victim;
            if self.tracer.enabled() {
                self.tracer.emit(Event::LqSearch {
                    by: MemOp::Store,
                    seq: front.seq,
                    segments: self.lq_path_buf.len() as u32,
                });
                emit_seg_path(&mut self.tracer, QueueSide::Lq, &self.lq_path_buf);
            }
        }

        self.sq.pop_front();
        self.sq_alloc.free(front.place);
        if let Some(ssid) = front.ssid {
            self.pred.on_store_commit(ssid);
        }
        self.stats.stores_committed += 1;
        if let Some(victim) = violation {
            self.record_violation(victim, front.pc, true);
        }
        StoreDrain::Drained {
            seq: front.seq,
            addr: front.addr,
            violation,
        }
    }

    /// Address of the `n`-th (mod count) currently issued in-flight
    /// load, if any — used by coherence-traffic injectors to target words
    /// another processor would plausibly write (shared data being read).
    // lsq-lint: hot
    pub fn nth_issued_load_addr(&self, n: usize) -> Option<Addr> {
        let count = self.lq.iter().filter(|l| l.issued).count();
        if count == 0 {
            return None;
        }
        self.lq
            .iter()
            .filter(|l| l.issued)
            .nth(n % count)
            .map(|l| l.addr)
    }

    /// Processes an external invalidation of `addr`'s word (§2.2 scheme
    /// 2, as in the MIPS R10000: another processor wrote shared data).
    /// Searches the load queue for any outstanding (issued) load to the
    /// word and returns the oldest as a squash victim. Invalidation
    /// searches are rare and L2-filtered, so they are not charged search
    /// ports (the paper makes the same argument).
    pub fn invalidate(&mut self, addr: Addr) -> Option<u64> {
        self.stats.invalidations += 1;
        let victim = self
            .lq
            .iter()
            .find(|l| l.issued && l.addr.same_word(addr))
            .map(|l| l.seq);
        if victim.is_some() {
            self.stats.invalidation_squashes += 1;
        }
        victim
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Removes every entry with sequence number `>= seq` from both
    /// queues, rolling back predictor counters, load-buffer entries, and
    /// allocation cursors.
    pub fn squash_from(&mut self, seq: u64) {
        let mut oldest_lq: Option<Placement> = None;
        while let Some(back) = self.lq.back() {
            if back.seq < seq {
                break;
            }
            // lsq-lint: allow(no-unwrap-in-lib, reason = "squash pops from the tail only while entries remain younger than the victim")
            let e = self.lq.pop_back().expect("non-empty");
            self.lq_alloc.free(e.place);
            oldest_lq = Some(e.place);
        }
        self.lq_alloc
            .rewind_after_squash(oldest_lq, self.lq.back().map(|e| e.place));

        let mut oldest_sq: Option<Placement> = None;
        while let Some(back) = self.sq.back() {
            if back.seq < seq {
                break;
            }
            // lsq-lint: allow(no-unwrap-in-lib, reason = "squash pops from the tail only while entries remain younger than the victim")
            let e = self.sq.pop_back().expect("non-empty");
            self.sq_alloc.free(e.place);
            oldest_sq = Some(e.place);
            if let Some(ssid) = e.ssid {
                self.pred.on_store_squash(ssid, e.seq);
            }
        }
        self.sq_alloc
            .rewind_after_squash(oldest_sq, self.sq.back().map(|e| e.place));

        if let Some(lb) = &mut self.lb {
            lb.squash_from(seq);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current load-queue occupancy.
    pub fn lq_occupancy(&self) -> usize {
        self.lq.len()
    }

    /// Current store-queue occupancy.
    pub fn sq_occupancy(&self) -> usize {
        self.sq.len()
    }

    /// Number of loads currently issued out of program order (an older
    /// load is still unissued) — the paper's Table 4 metric.
    pub fn out_of_order_issued_loads(&self) -> usize {
        let mut unissued_seen = false;
        let mut count = 0;
        for l in &self.lq {
            if l.issued {
                if unissued_seen {
                    count += 1;
                }
            } else {
                unissued_seen = true;
            }
        }
        count
    }

    /// Whether load `seq` is resident and issued.
    pub fn load_is_issued(&self, seq: u64) -> bool {
        self.lq_index(seq).is_some_and(|i| self.lq[i].issued)
    }

    /// Whether store `seq` is resident and executed.
    pub fn store_is_issued(&self, seq: u64) -> bool {
        self.sq_index(seq).is_some_and(|i| self.sq[i].issued)
    }

    /// The forwarding source bound to an issued load, if any.
    pub fn load_forwarded_from(&self, seq: u64) -> Option<u64> {
        self.lq_index(seq).and_then(|i| self.lq[i].forwarded_from)
    }
}

/// Emits one [`Event::SegAdvance`] per hop of a multi-segment search
/// path. A free function (not a method) so callers can borrow the path
/// out of the `Lsq` scratch buffers; a no-op unless the tracer is
/// enabled, so untraced builds pay nothing for path emission.
// lsq-lint: hot
fn emit_seg_path<T: Tracer>(tracer: &mut T, queue: QueueSide, path: &[usize]) {
    if !tracer.enabled() {
        return;
    }
    for w in path.windows(2) {
        tracer.emit(Event::SegAdvance {
            queue,
            from_segment: w[0] as u32,
            to_segment: w[1] as u32,
        });
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests mutate one field of a default config
mod tests {
    use super::*;
    use crate::config::{LoadOrderPolicy, SegAlloc, SegConfig};

    fn lsq(cfg: LsqConfig) -> Lsq {
        Lsq::new(cfg).expect("valid config")
    }

    /// Dispatch a load and a store helper.
    fn disp_load(l: &mut Lsq, seq: u64, addr: u64) {
        l.dispatch_load(seq, Pc(0x1000 + seq * 4), Addr(addr));
    }

    fn disp_store(l: &mut Lsq, seq: u64, addr: u64) {
        l.dispatch_store(seq, Pc(0x1000 + seq * 4), Addr(addr));
    }

    fn issue_load(l: &mut Lsq, seq: u64) -> LoadIssued {
        match l.load_issue(seq) {
            LoadIssue::Issued(i) => i,
            other => panic!("load {seq} failed to issue: {other:?}"),
        }
    }

    #[test]
    fn forwarding_from_youngest_matching_store() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        disp_store(&mut l, 1, 0x100);
        disp_load(&mut l, 2, 0x100);
        assert!(matches!(
            l.store_issue(0),
            StoreIssue::Issued { violation: None }
        ));
        assert!(matches!(
            l.store_issue(1),
            StoreIssue::Issued { violation: None }
        ));
        l.begin_cycle();
        let i = issue_load(&mut l, 2);
        assert_eq!(
            i.forwarded_from,
            Some(1),
            "youngest older matching store wins"
        );
        assert!(i.searched_sq);
        assert_eq!(l.stats().sq_search_hits, 1);
    }

    #[test]
    fn no_forwarding_from_younger_store() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_store(&mut l, 1, 0x100);
        assert!(matches!(l.store_issue(1), StoreIssue::Issued { .. }));
        l.begin_cycle();
        let i = issue_load(&mut l, 0);
        assert_eq!(i.forwarded_from, None);
    }

    #[test]
    fn premature_load_detected_at_store_execute() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_store(&mut l, 0, 0x200);
        disp_load(&mut l, 1, 0x200);
        // Load issues before the store's address is known: premature.
        let i = issue_load(&mut l, 1);
        assert_eq!(i.forwarded_from, None);
        l.begin_cycle();
        match l.store_issue(0) {
            StoreIssue::Issued { violation } => assert_eq!(violation, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats().violations, 1);
        assert_eq!(l.stats().commit_violations, 0);
    }

    #[test]
    fn store_set_wait_then_release() {
        // A violation trains the predictor; the next dynamic instance of
        // the same static pair is gated at issue, then released when the
        // store executes, and forwards correctly.
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        l.dispatch_store(0, Pc(0x2000), Addr(0x200));
        l.dispatch_load(1, Pc(0x3000), Addr(0x200));
        issue_load(&mut l, 1);
        l.begin_cycle();
        let StoreIssue::Issued { violation: Some(v) } = l.store_issue(0) else {
            panic!("expected violation")
        };
        l.squash_from(v);
        l.begin_cycle();
        // Refetch load 1; also fetch a new instance of the store (seq 2)?
        // Program order: store 0 already executed, load 1 refetches.
        l.dispatch_load(1, Pc(0x3000), Addr(0x200));
        // New dynamic instance of the same static store arrives later in
        // program order — gating applies to *older* stores only, so use a
        // fresh LSQ sequence: store 2 then load 3.
        l.begin_cycle();
        issue_load(&mut l, 1); // no older store in flight: free to go
        l.commit_load(1);
        l.store_retire(0);
        assert!(matches!(
            l.drain_store(),
            StoreDrain::Drained { seq: 0, .. }
        ));
        l.begin_cycle();
        l.dispatch_store(2, Pc(0x2000), Addr(0x200));
        l.dispatch_load(3, Pc(0x3000), Addr(0x200));
        match l.load_issue(3) {
            LoadIssue::WaitStore(2) => {}
            other => panic!("expected WaitStore(2), got {other:?}"),
        }
        // Store executes; the load may now issue and forwards.
        l.begin_cycle();
        assert!(matches!(
            l.store_issue(2),
            StoreIssue::Issued { violation: None }
        ));
        l.begin_cycle();
        let i = issue_load(&mut l, 3);
        assert_eq!(i.forwarded_from, Some(2));
    }

    #[test]
    fn port_exhaustion_stalls_loads() {
        let mut cfg = LsqConfig::default();
        cfg.ports = 1;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x200);
        issue_load(&mut l, 0);
        // Load 1 needs an SQ port (conventional: all loads search) but the
        // single port is taken this cycle.
        assert_eq!(l.load_issue(1), LoadIssue::NoSqPort);
        assert_eq!(l.stats().sq_port_stalls, 1);
        l.begin_cycle();
        issue_load(&mut l, 1);
    }

    #[test]
    fn lq_port_shared_between_stores_and_loadload_searches() {
        let mut cfg = LsqConfig::default();
        cfg.ports = 1;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x300);
        assert!(matches!(l.store_issue(0), StoreIssue::Issued { .. }));
        // The store consumed the only LQ port; the load's load-load search
        // cannot proceed (its SQ port is free).
        assert_eq!(l.load_issue(1), LoadIssue::NoLqPort);
        l.begin_cycle();
        issue_load(&mut l, 1);
    }

    #[test]
    fn pair_predictor_skips_searches_for_untrained_loads() {
        let mut cfg = LsqConfig::default();
        cfg.predictor = PredictorKind::Pair;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x500); // unrelated address, untrained PC
        assert!(matches!(
            l.store_issue(0),
            StoreIssue::Issued { violation: None }
        ));
        let i = issue_load(&mut l, 1);
        assert!(!i.searched_sq, "untrained load skips the SQ search");
        assert_eq!(l.stats().sq_searches, 0);
    }

    #[test]
    fn pair_misprediction_caught_at_store_commit() {
        let mut cfg = LsqConfig::default();
        cfg.predictor = PredictorKind::Pair;
        let mut l = lsq(cfg);
        l.begin_cycle();
        l.dispatch_store(0, Pc(0x2000), Addr(0x100));
        l.dispatch_load(1, Pc(0x3000), Addr(0x100));
        assert!(matches!(
            l.store_issue(0),
            StoreIssue::Issued { violation: None }
        ));
        // The load is untrained, skips its search, misses the forwarding.
        let i = issue_load(&mut l, 1);
        assert!(!i.searched_sq);
        assert_eq!(i.forwarded_from, None);
        // The store's execute did NOT search (pair scheme); detection
        // happens at commit.
        assert_eq!(l.stats().lq_searches_by_stores, 0);
        l.begin_cycle();
        l.store_retire(0);
        assert!(l.has_undrained_store_before(1));
        match l.drain_store() {
            StoreDrain::Drained { violation, .. } => assert_eq!(violation, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!l.has_undrained_store_before(1));
        assert_eq!(l.stats().commit_violations, 1);
        // Training happened: refetch the pair; now the load is gated and
        // then searches.
        l.squash_from(1);
        l.begin_cycle();
        l.dispatch_store(2, Pc(0x2000), Addr(0x100));
        l.dispatch_load(3, Pc(0x3000), Addr(0x100));
        assert!(matches!(l.load_issue(3), LoadIssue::WaitStore(2)));
        l.begin_cycle();
        assert!(matches!(l.store_issue(2), StoreIssue::Issued { .. }));
        l.begin_cycle();
        let i = issue_load(&mut l, 3);
        assert!(i.searched_sq, "trained pair searches");
        assert_eq!(i.forwarded_from, Some(2));
    }

    #[test]
    fn perfect_predictor_searches_only_real_dependences() {
        let mut cfg = LsqConfig::default();
        cfg.predictor = PredictorKind::Perfect;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x100);
        disp_load(&mut l, 2, 0x900);
        let i1 = issue_load(&mut l, 1);
        assert!(i1.searched_sq, "oracle sees the matching in-flight store");
        let i2 = issue_load(&mut l, 2);
        assert!(!i2.searched_sq, "oracle sees no match");
        assert_eq!(l.stats().sq_searches, 1);
    }

    #[test]
    fn conventional_loads_always_search_both_queues() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        issue_load(&mut l, 0);
        assert_eq!(l.stats().sq_searches, 1);
        assert_eq!(l.stats().lq_searches_by_loads, 1);
    }

    #[test]
    fn load_buffer_removes_lq_searches() {
        let mut cfg = LsqConfig::default();
        cfg.load_order = LoadOrderPolicy::LoadBuffer(2);
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x200);
        issue_load(&mut l, 1); // out of order: buffered
        issue_load(&mut l, 0);
        assert_eq!(l.stats().lq_searches_by_loads, 0);
        assert!(l.stats().lb_searches >= 2);
    }

    #[test]
    fn load_buffer_full_stalls_third_ooo_load() {
        let mut cfg = LsqConfig::default();
        cfg.load_order = LoadOrderPolicy::LoadBuffer(2);
        cfg.ports = 4;
        let mut l = lsq(cfg);
        l.begin_cycle();
        for s in 0..4 {
            disp_load(&mut l, s, 0x100 + s * 64);
        }
        issue_load(&mut l, 1);
        issue_load(&mut l, 2);
        assert_eq!(l.load_issue(3), LoadIssue::LbFull);
        assert_eq!(l.stats().lb_full_stalls, 1);
        // Load 0 issues (NILP target), releasing 1 and 2.
        issue_load(&mut l, 0);
        l.begin_cycle();
        issue_load(&mut l, 3);
    }

    #[test]
    fn in_order_policies_stall_younger_loads() {
        for policy in [
            LoadOrderPolicy::InOrderAlwaysSearch,
            LoadOrderPolicy::InOrderNoSearch,
        ] {
            let mut cfg = LsqConfig::default();
            cfg.load_order = policy;
            let mut l = lsq(cfg);
            l.begin_cycle();
            disp_load(&mut l, 0, 0x100);
            disp_load(&mut l, 1, 0x200);
            assert_eq!(l.load_issue(1), LoadIssue::InOrderStall);
            issue_load(&mut l, 0);
            issue_load(&mut l, 1);
            let by_loads = l.stats().lq_searches_by_loads;
            if policy.searches_lq() {
                assert_eq!(by_loads, 2, "in-order-always-search still burns LQ ports");
            } else {
                assert_eq!(by_loads, 0);
            }
        }
    }

    #[test]
    fn capacity_limits_dispatch() {
        let mut cfg = LsqConfig::default();
        cfg.lq_entries = 2;
        cfg.sq_entries = 2;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x0);
        disp_load(&mut l, 1, 0x8);
        assert!(!l.can_dispatch_load());
        assert!(l.can_dispatch_store());
        disp_store(&mut l, 2, 0x10);
        disp_store(&mut l, 3, 0x18);
        assert!(!l.can_dispatch_store());
        // Commit frees space.
        issue_load(&mut l, 0);
        l.commit_load(0);
        assert!(l.can_dispatch_load());
    }

    #[test]
    fn squash_restores_everything() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_store(&mut l, 1, 0x200);
        disp_load(&mut l, 2, 0x200);
        issue_load(&mut l, 0);
        issue_load(&mut l, 2);
        l.squash_from(1);
        assert_eq!(l.lq_occupancy(), 1);
        assert_eq!(l.sq_occupancy(), 0);
        // Redispatch with the same seqs.
        l.begin_cycle();
        disp_store(&mut l, 1, 0x200);
        disp_load(&mut l, 2, 0x200);
        assert!(matches!(l.store_issue(1), StoreIssue::Issued { .. }));
        l.begin_cycle();
        let i = issue_load(&mut l, 2);
        assert_eq!(i.forwarded_from, Some(1));
    }

    #[test]
    fn out_of_order_issued_load_count() {
        let mut cfg = LsqConfig::default();
        cfg.ports = 4;
        let mut l = lsq(cfg);
        l.begin_cycle();
        for s in 0..5 {
            disp_load(&mut l, s, 0x100 + s * 64);
        }
        assert_eq!(l.out_of_order_issued_loads(), 0);
        issue_load(&mut l, 2);
        issue_load(&mut l, 4);
        assert_eq!(l.out_of_order_issued_loads(), 2);
        l.begin_cycle();
        issue_load(&mut l, 0);
        issue_load(&mut l, 1);
        // Loads 2 and 4: load 2 has no older unissued load now; load 4
        // still has load 3 unissued.
        assert_eq!(l.out_of_order_issued_loads(), 1);
    }

    #[test]
    fn segmented_forwarding_latency_grows_with_distance() {
        let mut cfg = LsqConfig::default();
        cfg.segmentation = Some(SegConfig {
            segments: 4,
            entries_per_segment: 4,
            alloc: SegAlloc::NoSelfCircular,
        });
        let mut l = lsq(cfg);
        l.begin_cycle();
        // Fill two segments of the SQ with non-matching stores, with the
        // matching store oldest (segment 0).
        disp_store(&mut l, 0, 0x100);
        for s in 1..8 {
            disp_store(&mut l, s, 0x1000 + s * 64);
        }
        for s in 0..8 {
            assert!(matches!(l.store_issue(s), StoreIssue::Issued { .. }));
            l.begin_cycle();
        }
        disp_load(&mut l, 8, 0x100);
        let i = issue_load(&mut l, 8);
        assert_eq!(i.forwarded_from, Some(0));
        assert_eq!(i.extra_cycles, 1, "match is in the second searched segment");
        assert!(!i.early_wakeup);
        assert_eq!(l.stats().seg_search_hist.bucket(1), 1);
    }

    #[test]
    fn segmented_search_within_one_segment_keeps_early_wakeup() {
        let mut cfg = LsqConfig::default();
        cfg.segmentation = Some(SegConfig {
            segments: 4,
            entries_per_segment: 8,
            alloc: SegAlloc::SelfCircular,
        });
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        assert!(matches!(l.store_issue(0), StoreIssue::Issued { .. }));
        disp_load(&mut l, 1, 0x100);
        l.begin_cycle();
        let i = issue_load(&mut l, 1);
        assert_eq!(i.extra_cycles, 0);
        assert!(i.early_wakeup);
    }

    #[test]
    fn segmented_capacity_is_total_across_segments() {
        let mut cfg = LsqConfig::default();
        cfg.segmentation = Some(SegConfig {
            segments: 4,
            entries_per_segment: 28,
            alloc: SegAlloc::SelfCircular,
        });
        let mut l = lsq(cfg);
        l.begin_cycle();
        for s in 0..112 {
            assert!(l.can_dispatch_load(), "load {s} should fit");
            disp_load(&mut l, s, s * 8);
        }
        assert!(!l.can_dispatch_load());
    }

    #[test]
    fn commit_blocked_by_lq_port_contention() {
        let mut cfg = LsqConfig::default();
        cfg.predictor = PredictorKind::Pair;
        cfg.ports = 1;
        cfg.load_order = LoadOrderPolicy::SearchLoadQueue;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_store(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x800);
        assert!(matches!(l.store_issue(0), StoreIssue::Issued { .. }));
        // The load's load-load search takes the single LQ port...
        issue_load(&mut l, 1);
        // ... so the store's commit-time search is blocked this cycle.
        l.store_retire(0);
        assert_eq!(l.drain_store(), StoreDrain::Blocked);
        assert_eq!(l.stats().commit_port_delays, 1);
        l.begin_cycle();
        assert!(matches!(
            l.drain_store(),
            StoreDrain::Drained {
                violation: None,
                ..
            }
        ));
        assert_eq!(l.drain_store(), StoreDrain::Idle);
    }

    #[test]
    fn load_load_violation_detected_when_enabled() {
        let mut cfg = LsqConfig::default();
        cfg.load_load_squash = true;
        cfg.ports = 4;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x100); // same word, younger
                                     // Younger load issues first (out of order).
        issue_load(&mut l, 1);
        // The older load's LQ search finds the premature younger load.
        let i = issue_load(&mut l, 0);
        assert_eq!(i.load_order_violation, Some(1));
        assert_eq!(l.stats().load_load_violations, 1);
    }

    #[test]
    fn load_load_violation_suppressed_by_default() {
        let mut cfg = LsqConfig::default();
        cfg.ports = 4;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x100);
        issue_load(&mut l, 1);
        let i = issue_load(&mut l, 0);
        assert_eq!(i.load_order_violation, None, "uniprocessor default");
        assert_eq!(l.stats().load_load_violations, 0);
    }

    #[test]
    fn load_buffer_detects_load_load_violation() {
        let mut cfg = LsqConfig::default();
        cfg.load_load_squash = true;
        cfg.load_order = LoadOrderPolicy::LoadBuffer(2);
        cfg.ports = 4;
        let mut l = lsq(cfg);
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x100);
        issue_load(&mut l, 1); // buffered, out of order
        let i = issue_load(&mut l, 0); // NILP target searches the buffer
        assert_eq!(
            i.load_order_violation,
            Some(1),
            "buffer search finds the victim"
        );
    }

    #[test]
    fn invalidation_squashes_outstanding_load() {
        let mut l = lsq(LsqConfig::default());
        l.begin_cycle();
        disp_load(&mut l, 0, 0x100);
        disp_load(&mut l, 1, 0x200);
        issue_load(&mut l, 0);
        // Another processor writes 0x100: the outstanding load is hit.
        assert_eq!(
            l.invalidate(Addr(0x104)),
            Some(0),
            "same-word invalidation hits"
        );
        assert_eq!(l.invalidate(Addr(0x300)), None, "unrelated word misses");
        assert_eq!(l.stats().invalidations, 2);
        assert_eq!(l.stats().invalidation_squashes, 1);
        // Unissued loads are not outstanding.
        assert_eq!(l.invalidate(Addr(0x200)), None);
        // Address sampling helper sees only issued loads.
        assert_eq!(l.nth_issued_load_addr(0), Some(Addr(0x100)));
        assert_eq!(l.nth_issued_load_addr(7), Some(Addr(0x100)));
    }

    #[test]
    fn useless_search_counted_for_pair() {
        let mut cfg = LsqConfig::default();
        cfg.predictor = PredictorKind::Pair;
        let mut l = lsq(cfg);
        // Train a pair, then make the load search when no store matches.
        l.begin_cycle();
        l.dispatch_store(0, Pc(0x2000), Addr(0x100));
        l.dispatch_load(1, Pc(0x3000), Addr(0x100));
        assert!(matches!(l.store_issue(0), StoreIssue::Issued { .. }));
        let _ = l.load_issue(1); // untrained: skips the search, reads stale data
        l.store_retire(0);
        match l.drain_store() {
            StoreDrain::Drained {
                violation: Some(v), ..
            } => {
                l.squash_from(v);
            }
            other => panic!("expected violation, got {other:?}"),
        }
        // Second instance: store of the same set in flight (counter > 0),
        // load searches but the store writes a DIFFERENT address now.
        l.begin_cycle();
        l.dispatch_store(2, Pc(0x2000), Addr(0x900));
        l.dispatch_load(3, Pc(0x3000), Addr(0x100));
        assert!(matches!(l.store_issue(2), StoreIssue::Issued { .. }));
        l.begin_cycle();
        let i = issue_load(&mut l, 3);
        assert!(i.searched_sq);
        assert_eq!(i.forwarded_from, None);
        assert_eq!(l.stats().useless_searches, 1);
    }
}
