//! Event counters collected by the LSQ models.
//!
//! These are the quantities the paper's evaluation reports: search
//! bandwidth demand on each queue (Figures 6 and 8), predictor accuracy
//! (Table 3), and the distribution of segments searched (Table 6).

use lsq_stats::Histogram;

/// Counters accumulated by an [`crate::Lsq`] over a run.
#[derive(Debug, Clone)]
pub struct LsqStats {
    /// Loads allocated into the load queue (dispatch events, including
    /// refetches after squashes).
    pub loads_dispatched: u64,
    /// Stores allocated into the store queue.
    pub stores_dispatched: u64,
    /// Loads that issued to memory (execute events).
    pub loads_issued: u64,
    /// Stores that executed (address generation).
    pub stores_issued: u64,
    /// Stores that committed (wrote the cache).
    pub stores_committed: u64,

    /// Store-queue searches performed by loads (the Figure 6 quantity).
    pub sq_searches: u64,
    /// Store-queue searches that found a forwarding match.
    pub sq_search_hits: u64,
    /// Load-queue searches performed by stores (violation detection),
    /// whether at execute (conventional) or commit (pair scheme).
    pub lq_searches_by_stores: u64,
    /// Load-queue searches performed by loads (load-load ordering) — the
    /// component the load buffer removes (the Figure 8 quantity).
    pub lq_searches_by_loads: u64,
    /// Load-buffer searches (these do not consume load-queue ports).
    pub lb_searches: u64,

    /// Store-load order violations detected (each causes a squash).
    pub violations: u64,
    /// Violations detected at store *commit*, i.e. attributable to the
    /// pair/aggressive predictor having let a dependent load skip its
    /// search (the Table 3 "Squash" numerator).
    pub commit_violations: u64,
    /// Pair-predictor searches that found no matching store (the
    /// unnecessary-search component of Table 3's misprediction rate).
    pub useless_searches: u64,
    /// Load-load ordering violations detected (and squashed) by load or
    /// load-buffer searches (§2.2 scheme 1; only with `load_load_squash`).
    pub load_load_violations: u64,
    /// External invalidations processed (§2.2 scheme 2, R10000-style).
    pub invalidations: u64,
    /// Invalidations that hit an outstanding load and squashed it.
    pub invalidation_squashes: u64,

    /// Loads that could not issue for lack of a store-queue search port.
    pub sq_port_stalls: u64,
    /// Loads/stores that could not issue for lack of a load-queue port.
    pub lq_port_stalls: u64,
    /// Store commits delayed by load-queue port contention (§3.2).
    pub commit_port_delays: u64,
    /// Loads stalled because the load buffer was full.
    pub lb_full_stalls: u64,
    /// Loads stalled by the in-order load-issue policies.
    pub in_order_stalls: u64,
    /// Loads stalled waiting for a store-set-predicted dependence.
    pub store_set_waits: u64,

    /// Distribution of the number of segments searched per store-queue
    /// forwarding search (Table 6). Bucket k = "k+1 segments".
    pub seg_search_hist: Histogram,
}

impl LsqStats {
    /// Creates zeroed counters sized for `segments` segments.
    pub fn new(segments: usize) -> Self {
        Self {
            loads_dispatched: 0,
            stores_dispatched: 0,
            loads_issued: 0,
            stores_issued: 0,
            stores_committed: 0,
            sq_searches: 0,
            sq_search_hits: 0,
            lq_searches_by_stores: 0,
            lq_searches_by_loads: 0,
            lb_searches: 0,
            violations: 0,
            commit_violations: 0,
            useless_searches: 0,
            load_load_violations: 0,
            invalidations: 0,
            invalidation_squashes: 0,
            sq_port_stalls: 0,
            lq_port_stalls: 0,
            commit_port_delays: 0,
            lb_full_stalls: 0,
            in_order_stalls: 0,
            store_set_waits: 0,
            seg_search_hist: Histogram::new(segments.max(1)),
        }
    }

    /// Total load-queue search demand (stores + loads).
    pub fn lq_searches(&self) -> u64 {
        self.lq_searches_by_stores + self.lq_searches_by_loads
    }

    /// Fraction of issued loads that searched the store queue.
    pub fn sq_search_fraction(&self) -> f64 {
        if self.loads_issued == 0 {
            0.0
        } else {
            self.sq_searches as f64 / self.loads_issued as f64
        }
    }

    /// Table 3 "Mispred.": mispredictions (useless searches plus
    /// commit-time violation squashes) per issued load.
    pub fn pair_mispred_rate(&self) -> f64 {
        if self.loads_issued == 0 {
            0.0
        } else {
            (self.useless_searches + self.commit_violations) as f64 / self.loads_issued as f64
        }
    }

    /// Table 3 "Squash": commit-detected violations per issued load.
    pub fn pair_squash_rate(&self) -> f64 {
        if self.loads_issued == 0 {
            0.0
        } else {
            self.commit_violations as f64 / self.loads_issued as f64
        }
    }

    /// Fraction of forwarding searches completing within `k+1` segments.
    pub fn seg_search_fraction(&self, k: usize) -> f64 {
        self.seg_search_hist.fraction(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_construction() {
        let s = LsqStats::new(4);
        assert_eq!(s.lq_searches(), 0);
        assert_eq!(s.sq_search_fraction(), 0.0);
        assert_eq!(s.pair_mispred_rate(), 0.0);
        assert_eq!(s.pair_squash_rate(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let mut s = LsqStats::new(4);
        s.loads_issued = 100;
        s.sq_searches = 40;
        s.useless_searches = 10;
        s.commit_violations = 5;
        s.lq_searches_by_stores = 7;
        s.lq_searches_by_loads = 3;
        assert_eq!(s.sq_search_fraction(), 0.4);
        assert_eq!(s.pair_mispred_rate(), 0.15);
        assert_eq!(s.pair_squash_rate(), 0.05);
        assert_eq!(s.lq_searches(), 10);
    }

    #[test]
    fn seg_hist_fractions() {
        let mut s = LsqStats::new(4);
        s.seg_search_hist.record(0);
        s.seg_search_hist.record(0);
        s.seg_search_hist.record(1);
        s.seg_search_hist.record(3);
        assert_eq!(s.seg_search_fraction(0), 0.5);
        assert_eq!(s.seg_search_fraction(3), 0.25);
    }

    #[test]
    fn zero_segment_request_clamps_to_one_bucket() {
        let s = LsqStats::new(0);
        assert_eq!(s.seg_search_fraction(0), 0.0);
    }
}
