//! The two-level hierarchy of the paper's Table 1.

use crate::cache::{Cache, CacheConfig, CacheStats};
use lsq_isa::Addr;
use lsq_obs::{Event, MissLevel, NopTracer, Tracer};

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 instruction cache (Table 1: 64K 2-way, 2-cycle, 32 B blocks).
    pub l1i: CacheConfig,
    /// L1 data cache (Table 1: 64K 2-way, 2-cycle, 32 B blocks).
    pub l1d: CacheConfig,
    /// Unified L2 (Table 1: 2M 8-way, 12-cycle, 64 B blocks).
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (Table 1: 150).
    pub mem_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                ways: 2,
                block_bytes: 32,
                hit_latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                ways: 2,
                block_bytes: 32,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                ways: 8,
                block_bytes: 64,
                hit_latency: 12,
            },
            mem_latency: 150,
        }
    }
}

impl HierarchyConfig {
    /// The scaled-processor variant used by the paper's Figure 12: same
    /// capacities, but a 3-cycle L1 hit.
    pub fn scaled() -> Self {
        let mut cfg = Self::default();
        cfg.l1i.hit_latency = 3;
        cfg.l1d.hit_latency = 3;
        cfg
    }

    /// Latency of an L1 data hit.
    pub fn l1d_hit_latency(&self) -> u32 {
        self.l1d.hit_latency
    }
}

/// The L1I/L1D/L2/memory timing model.
///
/// The `T` parameter is the trace sink; the default [`NopTracer`]
/// monomorphizes every emission site away, so untraced hierarchies
/// compile to the pre-tracing code.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy<T: Tracer = NopTracer> {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    tracer: T,
}

impl MemoryHierarchy<NopTracer> {
    /// Builds an empty, untraced hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::with_tracer(cfg, NopTracer)
    }
}

impl<T: Tracer> MemoryHierarchy<T> {
    /// Builds an empty hierarchy emitting cache-miss events to `tracer`.
    pub fn with_tracer(cfg: HierarchyConfig, tracer: T) -> Self {
        Self {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            tracer,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The trace sink (for setting the cycle from the owning pipeline).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Performs a data access (load or store write-through to L1) and
    /// returns its total latency in cycles.
    pub fn data_access(&mut self, addr: Addr, write: bool) -> u32 {
        self.access_inner(addr, write, false, true)
    }

    /// Performs an instruction fetch of the block containing `pc_addr` and
    /// returns its latency in cycles.
    pub fn inst_fetch(&mut self, pc_addr: Addr) -> u32 {
        self.access_inner(pc_addr, false, true, true)
    }

    fn access_inner(&mut self, addr: Addr, write: bool, fetch: bool, trace: bool) -> u32 {
        let (l1, l1_cfg) = if fetch {
            (&mut self.l1i, &self.cfg.l1i)
        } else {
            (&mut self.l1d, &self.cfg.l1d)
        };
        let mut lat = l1_cfg.hit_latency;
        if !l1.access(addr, write && !fetch) {
            lat += self.cfg.l2.hit_latency;
            let level = if self.l2.access(addr, false) {
                MissLevel::L2
            } else {
                lat += self.cfg.mem_latency;
                MissLevel::Memory
            };
            if trace && self.tracer.enabled() {
                self.tracer.emit(Event::CacheMiss { addr, level, fetch });
            }
        }
        lat
    }

    /// Whether a data access to `addr` would hit in the L1 d-cache.
    pub fn l1d_would_hit(&self, addr: Addr) -> bool {
        self.l1d.probe(addr)
    }

    /// L1 d-cache statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L1 i-cache statistics.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Touches every block of the given data regions (read accesses,
    /// coldest region first) so that steady-state cache contents are in
    /// place before measurement — the stand-in for a multi-billion-
    /// instruction fast-forward. Statistics are cleared afterwards.
    pub fn prewarm_data(&mut self, regions: &[(u64, u64)]) {
        let block = self.cfg.l1d.block_bytes;
        for &(base, bytes) in regions {
            let mut a = base;
            while a < base + bytes {
                // trace=false: warm-up fills are not simulated events.
                self.access_inner(Addr(a), false, false, false);
                a += block;
            }
        }
        self.clear_stats();
    }

    /// Touches every block of the code region in the i-cache.
    pub fn prewarm_code(&mut self, base: u64, bytes: u64) {
        let block = self.cfg.l1i.block_bytes;
        let mut a = base;
        while a < base + bytes {
            self.access_inner(Addr(a), false, true, false);
            a += block;
        }
        self.clear_stats();
    }

    /// Clears hit/miss statistics on all levels without invalidating
    /// cache contents.
    pub fn clear_stats(&mut self) {
        self.l1i.clear_stats();
        self.l1d.clear_stats();
        self.l2.clear_stats();
    }

    /// Invalidates all levels and clears statistics.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1d.size_bytes, 64 << 10);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.block_bytes, 32);
        assert_eq!(c.l1d.hit_latency, 2);
        assert_eq!(c.l2.size_bytes, 2 << 20);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.block_bytes, 64);
        assert_eq!(c.l2.hit_latency, 12);
        assert_eq!(c.mem_latency, 150);
    }

    #[test]
    fn scaled_config_slows_l1_only() {
        let c = HierarchyConfig::scaled();
        assert_eq!(c.l1d.hit_latency, 3);
        assert_eq!(c.l1i.hit_latency, 3);
        assert_eq!(c.l2.hit_latency, 12);
    }

    #[test]
    fn latency_tiers() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        // Cold: misses everywhere = 2 + 12 + 150.
        assert_eq!(m.data_access(Addr(0x8000), false), 164);
        // L1 hit.
        assert_eq!(m.data_access(Addr(0x8000), false), 2);
        // Evict from L1 but not L2: access enough conflicting blocks.
        // L1: 1024 sets * 32B; blocks 0x8000 + k*32*1024 map to the same set.
        let conflict = |k: u64| Addr(0x8000 + k * 32 * 1024);
        m.data_access(conflict(1), false);
        m.data_access(conflict(2), false);
        // 0x8000 now evicted from L1 (2-way) but resident in L2: 2 + 12.
        assert_eq!(m.data_access(Addr(0x8000), false), 14);
    }

    #[test]
    fn inst_fetch_uses_icache() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let cold = m.inst_fetch(Addr(0x400000));
        let warm = m.inst_fetch(Addr(0x400000));
        assert_eq!(cold, 164);
        assert_eq!(warm, 2);
        assert_eq!(m.l1i_stats().accesses(), 2);
        assert_eq!(m.l1d_stats().accesses(), 0);
    }

    #[test]
    fn l2_shared_between_i_and_d() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.inst_fetch(Addr(0x10000)); // fills L2
                                     // Data access to the same block: L1D miss, L2 hit.
        assert_eq!(m.data_access(Addr(0x10000), false), 14);
    }

    #[test]
    fn prewarm_data_fills_and_clears_stats() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.prewarm_data(&[(0x10_0000, 4096), (0x20_0000, 4096)]);
        assert_eq!(m.l1d_stats().accesses(), 0, "stats cleared after prewarm");
        // All touched blocks are L1-resident (footprint << 64K).
        assert_eq!(m.data_access(Addr(0x10_0000), false), 2);
        assert_eq!(m.data_access(Addr(0x10_0000 + 4064), false), 2);
        assert_eq!(m.data_access(Addr(0x20_0000 + 2048), false), 2);
        // An untouched address still misses.
        assert_eq!(m.data_access(Addr(0x30_0000), false), 164);
    }

    #[test]
    fn prewarm_larger_than_l1_leaves_l2_resident() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        // 256K footprint: exceeds the 64K L1, fits the 2M L2.
        m.prewarm_data(&[(0x10_0000, 256 << 10)]);
        let lat = m.data_access(Addr(0x10_0000), false);
        assert_eq!(lat, 14, "evicted from L1 but resident in L2");
    }

    #[test]
    fn prewarm_code_fills_icache() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.prewarm_code(0x40_0000, 2048);
        assert_eq!(m.inst_fetch(Addr(0x40_0000)), 2);
        assert_eq!(m.l1i_stats().misses, 0);
    }

    #[test]
    fn clear_stats_keeps_contents() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.data_access(Addr(0x40), false);
        m.clear_stats();
        assert_eq!(m.l1d_stats().accesses(), 0);
        assert_eq!(m.data_access(Addr(0x40), false), 2, "line still resident");
    }

    #[test]
    fn traced_hierarchy_emits_misses_but_not_prewarm() {
        use lsq_obs::SharedTracer;
        let tracer = SharedTracer::with_capacity(64);
        let mut m = MemoryHierarchy::with_tracer(HierarchyConfig::default(), tracer.clone());
        m.prewarm_data(&[(0x10_0000, 4096)]);
        assert_eq!(tracer.snapshot().len(), 0, "prewarm is silent");
        m.data_access(Addr(0x30_0000), false); // memory miss
        m.data_access(Addr(0x30_0000), false); // L1 hit: no event
        m.inst_fetch(Addr(0x30_0000)); // L1I miss, L2 hit
        let snap = tracer.snapshot();
        let events: Vec<_> = snap.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].event,
            Event::CacheMiss {
                addr: Addr(0x30_0000),
                level: MissLevel::Memory,
                fetch: false
            }
        );
        assert_eq!(
            events[1].event,
            Event::CacheMiss {
                addr: Addr(0x30_0000),
                level: MissLevel::L2,
                fetch: true
            }
        );
    }

    #[test]
    fn probe_and_reset() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        m.data_access(Addr(0x40), true);
        assert!(m.l1d_would_hit(Addr(0x40)));
        m.reset();
        assert!(!m.l1d_would_hit(Addr(0x40)));
        assert_eq!(m.l1d_stats().accesses(), 0);
    }
}
