#![warn(missing_docs)]

//! Memory-hierarchy substrate: set-associative caches with LRU replacement
//! composed into the paper's two-level hierarchy (Table 1: 64 KB 2-way L1s
//! with 2-cycle pipelined hits and 32 B blocks, a 2 MB 8-way L2 with
//! 12-cycle hits and 64 B blocks, and 150-cycle memory).
//!
//! The hierarchy is a *timing* model: an access returns the total latency
//! in cycles and updates cache state. Bandwidth (the 4 d-cache ports and 2
//! i-cache ports) is arbitrated by the pipeline, not here; misses are
//! overlap-friendly (no MSHR limit), and write-backs of dirty victims are
//! tracked but charged no extra latency — both standard simplifications
//! that leave the LSQ-side contention the paper studies untouched.
//!
//! # Examples
//!
//! ```
//! use lsq_mem::{HierarchyConfig, MemoryHierarchy};
//! use lsq_isa::Addr;
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let cold = mem.data_access(Addr(0x1000), false);
//! let warm = mem.data_access(Addr(0x1000), false);
//! assert!(cold > warm);
//! assert_eq!(warm, 2); // L1 hit
//! ```

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy};
