//! A single set-associative cache level with true-LRU replacement.

use lsq_isa::Addr;

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u64,
    /// Latency of a hit, in cycles. Hits are pipelined: latency, not
    /// occupancy.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sizes, or
    /// capacity not divisible by `ways * block_bytes`).
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes.is_power_of_two(),
            "size must be a power of two"
        );
        assert!(
            self.block_bytes.is_power_of_two(),
            "block must be a power of two"
        );
        assert!(self.ways > 0, "ways must be non-zero");
        let lines = self.size_bytes / self.block_bytes;
        assert!(
            (lines as usize).is_multiple_of(self.ways) && lines as usize >= self.ways,
            "capacity must hold a whole number of sets"
        );
        lines as usize / self.ways
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
    /// Dirty lines evicted (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0.0 with no accesses.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// One set-associative, write-back, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is inconsistent (see
    /// [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Self {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let block = addr.block(self.cfg.block_bytes);
        (
            (block % self.sets as u64) as usize,
            block / self.sets as u64,
        )
    }

    /// Accesses `addr`; returns `true` on a hit. On a miss the block is
    /// filled (write-allocate), evicting the LRU way. `write` marks the
    /// line dirty.
    pub fn access(&mut self, addr: Addr, write: bool) -> bool {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= write;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            // lsq-lint: allow(no-unwrap-in-lib, reason = "associativity is validated non-zero at construction, so every set has ways")
            .expect("ways is non-empty");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.stamp,
        };
        false
    }

    /// Whether `addr`'s block is currently resident (no state change).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Clears statistics without invalidating contents.
    pub fn clear_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.stamp = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16B blocks = 64B.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            block_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr(0), false));
        assert!(c.access(Addr(0), false));
        assert!(c.access(Addr(15), false)); // same block
        assert!(!c.access(Addr(16), false)); // next block, other set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose block number is even (2 sets).
        c.access(Addr(0), false); // block 0 -> set 0
        c.access(Addr(32), false); // block 2 -> set 0
        c.access(Addr(0), false); // touch block 0 (block 2 now LRU)
        c.access(Addr(64), false); // block 4 -> set 0, evicts block 2
        assert!(c.probe(Addr(0)));
        assert!(!c.probe(Addr(32)));
        assert!(c.probe(Addr(64)));
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = tiny();
        c.access(Addr(0), true); // dirty fill
        c.access(Addr(32), false);
        c.access(Addr(64), false); // evicts block 0 (dirty)
        assert_eq!(c.stats().writebacks, 1);
        c.access(Addr(96), false); // evicts block 2 (clean)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(Addr(0), false);
        c.access(Addr(0), true); // now dirty via hit
        c.access(Addr(32), false);
        c.access(Addr(64), false); // evict block 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = tiny();
        c.access(Addr(0), false);
        let before = *c.stats();
        assert!(c.probe(Addr(0)));
        assert!(!c.probe(Addr(16)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(Addr(0), true);
        c.reset();
        assert!(!c.probe(Addr(0)));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(Addr(0), false);
        c.access(Addr(0), false);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 60,
            ways: 2,
            block_bytes: 16,
            hit_latency: 1,
        });
    }

    #[test]
    fn fully_associative_degenerate_case() {
        // 1 set x 4 ways.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 4,
            block_bytes: 16,
            hit_latency: 1,
        });
        for i in 0..4 {
            c.access(Addr(i * 16), false);
        }
        for i in 0..4 {
            assert!(c.probe(Addr(i * 16)));
        }
        c.access(Addr(4 * 16), false);
        assert!(!c.probe(Addr(0))); // LRU was block 0
    }

    #[test]
    fn table1_l1_geometry() {
        // 64K 2-way 32B: 1024 sets.
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            block_bytes: 32,
            hit_latency: 2,
        };
        assert_eq!(cfg.sets(), 1024);
    }
}
