//! Property tests over the workload substrate: for every profile and any
//! seed, generated traces are deterministic, well-formed, and live inside
//! their declared memory regions.

use lsq_isa::InstructionStream;
use lsq_trace::{BenchProfile, StaticProgram, TraceGenerator};
use proptest::prelude::*;

fn profile_index() -> impl Strategy<Value = usize> {
    0..BenchProfile::all().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same (profile, seed) → identical traces; the reproduction's
    /// determinism rests on this.
    #[test]
    fn traces_are_deterministic(idx in profile_index(), seed in 0u64..1000) {
        let p = &BenchProfile::all()[idx];
        let mut a = p.stream(seed);
        let mut b = p.stream(seed);
        for _ in 0..2000 {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    /// Every emitted instruction is well-formed: memory ops carry
    /// addresses inside a declared data region, non-memory ops carry
    /// none, and PCs stay inside the code region.
    #[test]
    fn traces_are_well_formed(idx in profile_index(), seed in 0u64..1000) {
        let p = &BenchProfile::all()[idx];
        let mut g = p.stream(seed);
        let regions = g.data_regions();
        let (code_base, code_len) = g.code_region();
        for _ in 0..4000 {
            let i = g.next_instr().expect("infinite stream");
            prop_assert!((code_base..code_base + code_len).contains(&i.pc.0));
            if i.kind.is_mem() {
                prop_assert!(
                    regions.iter().any(|&(b, len)| (b..b + len.max(64)).contains(&i.addr.0)),
                    "{:#x} outside regions", i.addr.0
                );
            } else {
                prop_assert_eq!(i.addr.0, 0);
                if !i.kind.is_branch() {
                    prop_assert!(!i.taken);
                }
            }
        }
    }

    /// Dynamic seeds perturb addresses/outcomes but never the static
    /// program: PCs visited form the same set.
    #[test]
    fn dynamic_seed_preserves_static_program(idx in profile_index(), s1 in 0u64..100, s2 in 100u64..200) {
        let p = &BenchProfile::all()[idx];
        let collect_pcs = |seed: u64| {
            let mut g = p.stream(seed);
            let mut pcs = std::collections::HashSet::new();
            for _ in 0..25_000 {
                pcs.insert(g.next_instr().unwrap().pc.0);
            }
            pcs
        };
        let a = collect_pcs(s1);
        let b = collect_pcs(s2);
        // Conditional skips and long loops may leave some blocks
        // unvisited in a finite window, so require substantial overlap
        // rather than equality.
        let inter = a.intersection(&b).count();
        prop_assert!(inter * 2 >= a.len().min(b.len()), "PC sets barely overlap");
    }

    /// The static program builder is total over arbitrary seeds and
    /// produces the kind mix the profile requests (within sampling slop).
    #[test]
    fn static_mix_tracks_profile(idx in profile_index(), pseed in 0u64..500) {
        let p = &BenchProfile::all()[idx];
        let prog = StaticProgram::build(p, pseed);
        let mut g = TraceGenerator::new(p.name, prog, 1);
        let n = 30_000;
        let mut loads = 0usize;
        let mut stores = 0usize;
        for _ in 0..n {
            let i = g.next_instr().unwrap();
            if i.kind.is_load() { loads += 1; }
            if i.kind.is_store() { stores += 1; }
        }
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        prop_assert!((lf - p.loads).abs() < 0.12, "loads {lf:.3} vs {:.3}", p.loads);
        prop_assert!((sf - p.stores).abs() < 0.09, "stores {sf:.3} vs {:.3}", p.stores);
    }
}
