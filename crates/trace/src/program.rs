//! The static-program model: basic blocks of static instructions with
//! stable PCs, built deterministically from a [`crate::BenchProfile`].

use crate::profile::BenchProfile;
use lsq_isa::{ArchReg, InstrKind, Pc};
use lsq_util::rng::{mix64, Xoshiro256};

/// Base address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x40_0000;
/// Base address of the streaming data regions.
pub const STREAM_BASE: u64 = 0x1000_0000;
/// Base address of the random/pointer-chase region (staggered off the
/// cache set span so it does not alias the streaming regions).
pub const HEAP_BASE: u64 = 0x5000_0000 + 0x2040;
/// Base address of the slot (stack-like) region used for store-load
/// pairs (likewise staggered).
pub const SLOT_BASE: u64 = 0x7000_0000 + 0x4080;

/// How a static memory instruction generates its effective addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Walks a private streaming region with a fixed stride (array
    /// traversal; the dominant FP pattern).
    Stream {
        /// Which streaming region this instruction owns a cursor into.
        region: usize,
    },
    /// Uniformly random within the working set (hash tables, irregular
    /// structures).
    Random,
    /// Random within the working set *and* serialized on its own previous
    /// instance through a register self-dependence (pointer chasing —
    /// mcf/art style).
    Chase,
    /// Communicates through a small set of slot addresses shared between
    /// a static store and the static loads paired with it — the source of
    /// PC-stable store-load dependences (spills/reloads, struct fields).
    Slot {
        /// Which slot this instruction reads or writes.
        slot: usize,
    },
}

/// One static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Stable program counter.
    pub pc: Pc,
    /// Operation class.
    pub kind: InstrKind,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Address behaviour for memory instructions.
    pub pattern: Option<AccessPattern>,
}

/// What happens at the end of a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockEnd {
    /// A backward loop branch: the block repeats `count` times per entry
    /// (taken `count - 1` times, then falls through). Highly predictable.
    Loop {
        /// Mean iteration count; the actual count per entry varies
        /// slightly around it.
        count: u32,
    },
    /// A data-dependent conditional: taken with probability `bias`
    /// (skipping the next block), otherwise falls through. Predictable
    /// only to the extent of the bias.
    Conditional {
        /// Probability the branch is taken.
        bias: f64,
    },
    /// Unconditional fall-through to the next block (no branch
    /// instruction emitted).
    FallThrough,
}

/// A basic block: body instructions plus the block-ending branch.
#[derive(Debug, Clone)]
pub struct StaticBlock {
    /// Straight-line body (no branches).
    pub body: Vec<StaticInst>,
    /// The block-ending control transfer.
    pub end: BlockEnd,
    /// PC of the block-ending branch (meaningful unless `FallThrough`).
    pub branch_pc: Pc,
}

/// A whole synthetic program.
#[derive(Debug, Clone)]
pub struct StaticProgram {
    /// The blocks, executed in order with loops and conditional skips.
    pub blocks: Vec<StaticBlock>,
    /// Number of streaming regions referenced by `Stream` patterns.
    pub stream_regions: usize,
    /// Bytes per streaming region.
    pub stream_bytes: u64,
    /// Stride of streaming cursors, bytes.
    pub stride: u64,
    /// Bytes of the random/chase working set.
    pub ws_bytes: u64,
    /// Bytes of the hot subset random accesses concentrate in.
    pub hot_bytes: u64,
    /// Probability a random access falls in the hot subset.
    pub hot_frac: f64,
    /// Number of communication slots.
    pub slots: usize,
    /// Probability a paired load reads the slot's current (matching)
    /// address rather than a stale one.
    pub slot_match_p: f64,
}

impl StaticProgram {
    /// Builds the deterministic static program for `profile`; the same
    /// `(profile, seed)` always yields the same program.
    pub fn build(profile: &BenchProfile, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(mix64(seed) ^ mix64(hash_name(profile.name)));
        let mut blocks = Vec::with_capacity(profile.blocks);
        let mut pc = CODE_BASE;
        // Round-robin destination registers r1..=GENERAL_REGS; the upper
        // registers are reserved for pointer-chase chains (CHASE_POOL) and
        // the serial accumulator (ACC_REG), so renaming cannot
        // accidentally break or create loop-carried dependences.
        let mut next_int = 1u8;
        let mut next_fp = 1u8;
        let mut next_chase = 0u8;
        // Recent producers for source selection, per class. Cleared at
        // block boundaries: cross-block values are live-ins, modeled as
        // always ready, so the only loop-carried register dependences are
        // the ones placed deliberately (accumulators and chase chains).
        let mut recent_int: Vec<ArchReg> = Vec::new();
        let mut recent_fp: Vec<ArchReg> = Vec::new();
        // Integer ALU producers only: the pool address operands draw
        // from. Loads never feed address generation here (except the
        // deliberate Chase chains), keeping load issue close to dispatch
        // order as on real codes (paper Table 4: < 3 OoO-issued loads).
        let mut recent_addr: Vec<ArchReg> = Vec::new();
        let mut next_stream = 0usize;
        let mut next_slot = 0usize;
        // Slots written by stores of the *current block*; slot loads pair
        // with these so the paired static store and load sit in the same
        // loop body and their dynamic instances stay close — the
        // store-to-load distances real spill/reload pairs exhibit.
        let mut recent_store_slots: Vec<usize> = Vec::new();

        // Fractions of body instructions by kind. Counts are materialised
        // *exactly* per block (with stochastic rounding of the fractional
        // part) so that uneven dynamic block-visit weights cannot skew the
        // dynamic instruction mix away from the profile.
        let body_frac = 1.0 - profile.branches;
        let p_load = profile.loads / body_frac;
        let p_store = profile.stores / body_frac;

        for b in 0..profile.blocks {
            recent_int.clear();
            recent_fp.clear();
            recent_addr.clear();
            recent_store_slots.clear();
            let len = (profile.body_len() as f64 * (0.6 + 0.8 * rng.f64())).round() as usize;
            let len = len.max(2);
            let round = |x: f64, rng: &mut Xoshiro256| -> usize {
                let f = x.floor();
                f as usize + usize::from(rng.chance(x - f))
            };
            let n_load = round(p_load * len as f64, &mut rng).min(len);
            let n_store = round(p_store * len as f64, &mut rng).min(len - n_load);
            // 0 = load, 1 = store, 2 = ALU; Fisher-Yates shuffle.
            let mut kinds = vec![0u8; n_load];
            kinds.extend(std::iter::repeat_n(1u8, n_store));
            kinds.extend(std::iter::repeat_n(2u8, len - n_load - n_store));
            for i in (1..kinds.len()).rev() {
                kinds.swap(i, rng.range_usize(i + 1));
            }
            let mut body = Vec::with_capacity(len);
            for k in kinds {
                let inst = match k {
                    0 => Self::make_load(
                        profile,
                        &mut rng,
                        Pc(pc),
                        &mut next_int,
                        &mut next_fp,
                        &mut next_chase,
                        &mut recent_int,
                        &mut recent_fp,
                        &mut recent_addr,
                        &mut next_stream,
                        &next_slot,
                        &recent_store_slots,
                    ),
                    1 => Self::make_store(
                        profile,
                        &mut rng,
                        Pc(pc),
                        &recent_int,
                        &recent_fp,
                        &recent_addr,
                        &mut next_stream,
                        &mut next_slot,
                        &mut recent_store_slots,
                    ),
                    _ => Self::make_alu(
                        profile,
                        &mut rng,
                        Pc(pc),
                        &mut next_int,
                        &mut next_fp,
                        &mut recent_int,
                        &mut recent_fp,
                        &mut recent_addr,
                    ),
                };
                body.push(inst);
                pc += 4;
            }
            let branch_pc = Pc(pc);
            let end = if b + 1 == profile.blocks || rng.chance(profile.loop_branch_frac) {
                // The final block always loops so the program never runs
                // off the end.
                let spread = (profile.loop_mean / 2).max(1);
                let count = profile.loop_mean + rng.range_u64(u64::from(spread)) as u32;
                pc += 4;
                BlockEnd::Loop {
                    count: count.max(2),
                }
            } else if rng.chance(0.85) {
                pc += 4;
                BlockEnd::Conditional {
                    bias: profile.branch_bias,
                }
            } else {
                BlockEnd::FallThrough
            };
            blocks.push(StaticBlock {
                body,
                end,
                branch_pc,
            });
        }

        Self {
            blocks,
            stream_regions: profile.stream_regions.max(1),
            stream_bytes: profile.stream_bytes.max(64),
            stride: profile.stride.max(8),
            ws_bytes: profile.ws_bytes.max(64),
            hot_bytes: profile.hot_bytes.max(64),
            hot_frac: profile.hot_frac,
            slots: profile.slots.max(1),
            slot_match_p: profile.slot_match_p,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_load(
        profile: &BenchProfile,
        rng: &mut Xoshiro256,
        pc: Pc,
        next_int: &mut u8,
        next_fp: &mut u8,
        next_chase: &mut u8,
        recent_int: &mut Vec<ArchReg>,
        recent_fp: &mut Vec<ArchReg>,
        recent_addr_sink: &mut Vec<ArchReg>,
        next_stream: &mut usize,
        next_slot: &usize,
        recent_store_slots: &[usize],
    ) -> StaticInst {
        let recent_addr: Vec<ArchReg> = recent_addr_sink.clone();
        let recent_addr = &recent_addr[..];
        let w = [
            profile.load_stream,
            profile.load_random,
            profile.load_chase,
            profile.load_slot,
        ];
        let pattern = match rng.weighted(&w).unwrap_or(1) {
            0 => {
                let region = *next_stream % profile.stream_regions.max(1);
                *next_stream += 1;
                AccessPattern::Stream { region }
            }
            1 => AccessPattern::Random,
            2 => AccessPattern::Chase,
            _ => {
                // Pair with a slot stored by this block: either one of
                // the stores already generated, or — when the load comes
                // first — the slot the block's next store will claim
                // (loop-carried pairing with the previous iteration).
                let slot = if recent_store_slots.is_empty() {
                    *next_slot % profile.slots.max(1)
                } else {
                    let d = rng.short_distance(recent_store_slots.len().min(4), 0.6);
                    recent_store_slots[recent_store_slots.len() - d]
                };
                AccessPattern::Slot { slot }
            }
        };
        // FP benchmarks load into FP registers most of the time.
        let fp_dst = profile.fp && rng.chance(0.7) && pattern != AccessPattern::Chase;
        let dst = if pattern == AccessPattern::Chase {
            // Dedicated registers keep each chase chain serialized across
            // its own dynamic instances without interference from the
            // round-robin allocator. The loaded pointer also feeds later
            // address generation (pointer-derived addressing), so when a
            // chase stalls, dependent loads stall with it instead of
            // issuing around it.
            let reg = ArchReg::int(CHASE_POOL_BASE + (*next_chase % CHASE_POOL_LEN));
            *next_chase += 1;
            recent_addr_sink.push(reg);
            if recent_addr_sink.len() > ADDR_WINDOW {
                recent_addr_sink.remove(0);
            }
            reg
        } else if fp_dst {
            alloc_reg(next_fp, recent_fp, true)
        } else {
            alloc_reg(next_int, recent_int, false)
        };
        let srcs = match pattern {
            // Serialize on the previous dynamic instance: src == dst.
            AccessPattern::Chase => [Some(dst), None],
            // Address generation depends on a recently computed index or
            // pointer; the dependence is short (sp/induction arithmetic)
            // but real — it is what keeps load issue roughly following
            // dataflow order, and hence the number of out-of-order-issued
            // loads small (the paper's Table 4 measures < 3 on average).
            AccessPattern::Slot { .. } | AccessPattern::Stream { .. } | AccessPattern::Random => {
                [pick_near(rng, recent_addr), None]
            }
        };
        StaticInst {
            pc,
            kind: InstrKind::Load,
            dst: Some(dst),
            srcs,
            pattern: Some(pattern),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_store(
        profile: &BenchProfile,
        rng: &mut Xoshiro256,
        pc: Pc,
        recent_int: &[ArchReg],
        recent_fp: &[ArchReg],
        recent_addr: &[ArchReg],
        next_stream: &mut usize,
        next_slot: &mut usize,
        recent_store_slots: &mut Vec<usize>,
    ) -> StaticInst {
        let w = [
            profile.store_stream,
            profile.store_slot,
            profile.store_random(),
        ];
        let pattern = match rng.weighted(&w).unwrap_or(1) {
            0 => {
                let region = *next_stream % profile.stream_regions.max(1);
                *next_stream += 1;
                AccessPattern::Stream { region }
            }
            1 => {
                let slot = *next_slot % profile.slots.max(1);
                *next_slot += 1;
                recent_store_slots.push(slot);
                if recent_store_slots.len() > 8 {
                    recent_store_slots.remove(0);
                }
                AccessPattern::Slot { slot }
            }
            _ => AccessPattern::Random,
        };
        // Store data operand: real stores spill a *recently computed*
        // value, so the data dependence is short (FP data in FP codes).
        let data = if profile.fp && rng.chance(0.6) {
            pick_near(rng, recent_fp)
        } else {
            pick_near(rng, recent_int)
        };
        // Slot/stream store addresses are sp- or induction-relative
        // (ready); only irregular stores compute an address late.
        let addr_src = match pattern {
            AccessPattern::Random => pick_near(rng, recent_addr),
            _ => None,
        };
        StaticInst {
            pc,
            kind: InstrKind::Store,
            dst: None,
            srcs: [data, addr_src],
            pattern: Some(pattern),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_alu(
        profile: &BenchProfile,
        rng: &mut Xoshiro256,
        pc: Pc,
        next_int: &mut u8,
        next_fp: &mut u8,
        recent_int: &mut Vec<ArchReg>,
        recent_fp: &mut Vec<ArchReg>,
        recent_addr: &mut Vec<ArchReg>,
    ) -> StaticInst {
        let fp = rng.chance(profile.fp_ops);
        let kind = if fp {
            if rng.chance(profile.div_ops) {
                InstrKind::FpDiv
            } else if rng.chance(profile.mul_ops) {
                InstrKind::FpMul
            } else {
                InstrKind::FpAlu
            }
        } else if rng.chance(profile.mul_ops) {
            InstrKind::IntMul
        } else {
            InstrKind::IntAlu
        };
        // With probability `dep_short_p` the op joins the class's serial
        // accumulator chain (acc = acc ⊕ x): the deliberate loop-carried
        // dependence that bounds a block's per-iteration ILP, like
        // reductions and induction updates in real loops.
        if rng.chance(profile.dep_short_p) {
            let acc = if fp {
                ArchReg::fp(ACC_REG)
            } else {
                ArchReg::int(ACC_REG)
            };
            let recent = if fp { recent_fp } else { recent_int };
            let s1 = if rng.chance(profile.src_density) {
                pick_src(rng, recent)
            } else {
                None
            };
            return StaticInst {
                pc,
                kind,
                dst: Some(acc),
                srcs: [Some(acc), s1],
                pattern: None,
            };
        }
        let (dst, recent) = if fp {
            (alloc_reg(next_fp, recent_fp, true), recent_fp)
        } else {
            let reg = alloc_reg(next_int, recent_int, false);
            recent_addr.push(reg);
            if recent_addr.len() > ADDR_WINDOW {
                recent_addr.remove(0);
            }
            (reg, recent_int)
        };
        let s0 = if rng.chance(profile.src_density) {
            pick_src(rng, recent)
        } else {
            None
        };
        let s1 = if rng.chance(profile.src_density * 0.6) {
            pick_src(rng, recent)
        } else {
            None
        };
        StaticInst {
            pc,
            kind,
            dst: Some(dst),
            srcs: [s0, s1],
            pattern: None,
        }
    }

    /// Total static instructions (bodies plus branches).
    pub fn static_len(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.body.len() + usize::from(b.end != BlockEnd::FallThrough))
            .sum()
    }
}

/// Highest register number handed out by the round-robin allocator.
const GENERAL_REGS: u8 = 24;
/// Size of the address-producer window: small, so that address chains
/// concentrate on few registers and a stalled producer holds dependent
/// memory operations back together (real index/pointer reuse).
const ADDR_WINDOW: usize = 4;
/// First register of the pointer-chase pool.
const CHASE_POOL_BASE: u8 = 25;
/// Number of dedicated chase-chain registers.
const CHASE_POOL_LEN: u8 = 5;
/// The per-class serial accumulator register.
const ACC_REG: u8 = 30;

/// Allocates the next destination register of a class (round-robin over
/// r1..=r24 / f1..=f24) and records it as a recent producer.
fn alloc_reg(next: &mut u8, recent: &mut Vec<ArchReg>, fp: bool) -> ArchReg {
    let num = *next;
    *next = if *next >= GENERAL_REGS { 1 } else { *next + 1 };
    let reg = if fp {
        ArchReg::fp(num)
    } else {
        ArchReg::int(num)
    };
    recent.push(reg);
    if recent.len() > 64 {
        recent.remove(0);
    }
    reg
}

/// Picks a source register uniformly among the block's recent producers
/// (wide, ILP-friendly dataflow; serial behaviour comes from the explicit
/// accumulator chains instead).
fn pick_src(rng: &mut Xoshiro256, recent: &[ArchReg]) -> Option<ArchReg> {
    if recent.is_empty() {
        return None;
    }
    let d = 1 + rng.range_usize(recent.len());
    Some(recent[recent.len() - d])
}

/// Picks a source among the last few producers (spill-style short data
/// dependence).
fn pick_near(rng: &mut Xoshiro256, recent: &[ArchReg]) -> Option<ArchReg> {
    if recent.is_empty() {
        return None;
    }
    let d = rng.short_distance(recent.len().min(4), 0.5);
    Some(recent[recent.len() - d])
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> &'static BenchProfile {
        BenchProfile::named("gcc").expect("gcc profile exists")
    }

    #[test]
    fn build_is_deterministic() {
        let p = sample_profile();
        let a = StaticProgram::build(p, 42);
        let b = StaticProgram::build(p, 42);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.body, y.body);
            assert_eq!(x.end, y.end);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = sample_profile();
        let a = StaticProgram::build(p, 1);
        let b = StaticProgram::build(p, 2);
        let same = a
            .blocks
            .iter()
            .zip(&b.blocks)
            .filter(|(x, y)| x.body == y.body)
            .count();
        assert!(same < a.blocks.len(), "programs should differ across seeds");
    }

    #[test]
    fn pcs_are_unique_and_word_aligned() {
        let prog = StaticProgram::build(sample_profile(), 7);
        let mut seen = std::collections::HashSet::new();
        for blk in &prog.blocks {
            for i in &blk.body {
                assert_eq!(i.pc.0 % 4, 0);
                assert!(seen.insert(i.pc.0), "duplicate pc {:#x}", i.pc.0);
            }
            if blk.end != BlockEnd::FallThrough {
                assert!(seen.insert(blk.branch_pc.0));
            }
        }
    }

    #[test]
    fn last_block_always_loops() {
        for seed in 0..5 {
            let prog = StaticProgram::build(sample_profile(), seed);
            assert!(
                matches!(prog.blocks.last().unwrap().end, BlockEnd::Loop { .. }),
                "program must be repeatable"
            );
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = sample_profile();
        let prog = StaticProgram::build(p, 3);
        let total: usize = prog.blocks.iter().map(|b| b.body.len()).sum();
        let loads: usize = prog
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.kind.is_load())
            .count();
        let stores: usize = prog
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.kind.is_store())
            .count();
        let lf = loads as f64 / total as f64;
        let sf = stores as f64 / total as f64;
        // Within loose statistical bounds of the requested body fractions.
        let body = 1.0 - p.branches;
        assert!((lf - p.loads / body).abs() < 0.1, "load fraction {lf}");
        assert!((sf - p.stores / body).abs() < 0.1, "store fraction {sf}");
    }

    #[test]
    fn chase_loads_self_depend() {
        // mcf is chase-heavy; its chase loads serialize on themselves.
        let p = BenchProfile::named("mcf").unwrap();
        let prog = StaticProgram::build(p, 11);
        let chase: Vec<&StaticInst> = prog
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.pattern == Some(AccessPattern::Chase))
            .collect();
        assert!(!chase.is_empty(), "mcf must have chase loads");
        for c in chase {
            assert_eq!(c.srcs[0], c.dst, "chase load serializes on its own value");
        }
    }

    #[test]
    fn slot_patterns_pair_stores_with_loads() {
        let p = sample_profile();
        let prog = StaticProgram::build(p, 5);
        let slot_stores = prog
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.kind.is_store() && matches!(i.pattern, Some(AccessPattern::Slot { .. })))
            .count();
        let slot_loads = prog
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.kind.is_load() && matches!(i.pattern, Some(AccessPattern::Slot { .. })))
            .count();
        assert!(slot_stores > 0, "int codes store to slots");
        assert!(slot_loads > 0, "int codes load from slots");
    }

    #[test]
    fn static_len_counts_branches() {
        let prog = StaticProgram::build(sample_profile(), 9);
        let bodies: usize = prog.blocks.iter().map(|b| b.body.len()).sum();
        assert!(prog.static_len() > bodies);
    }

    #[test]
    fn every_profile_builds() {
        for p in BenchProfile::all() {
            let prog = StaticProgram::build(p, 1);
            assert!(!prog.blocks.is_empty(), "{} has blocks", p.name);
            assert!(prog.static_len() > 10, "{} is non-trivial", p.name);
        }
    }
}
