//! The 18 SPEC2K benchmark profiles of the paper's Table 2.
//!
//! Each profile encodes the workload facts the paper reports or implies:
//! instruction mix (e.g. mgrid: 51% loads / 2% stores; vortex: 18% loads /
//! 23% stores; equake: 42% loads), working-set and access structure
//! (mcf/art pointer-chase over huge footprints → base IPC 0.3; mesa/perl
//! small hot sets → base IPC ≥ 3), store-load communication density, and
//! branch behaviour. The absolute parameter values are calibrated so the
//! *base-configuration* simulator reproduces the ordering and rough
//! magnitudes of Table 2; they are inputs to [`crate::StaticProgram`].

use crate::generator::TraceGenerator;
use crate::program::StaticProgram;

/// Workload description for one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchProfile {
    /// Benchmark name (SPEC2K short name).
    pub name: &'static str,
    /// Whether this is a floating-point benchmark.
    pub fp: bool,

    /// Fraction of dynamic instructions that are loads.
    pub loads: f64,
    /// Fraction of dynamic instructions that are stores.
    pub stores: f64,
    /// Fraction of dynamic instructions that are branches.
    pub branches: f64,
    /// Of ALU operations, fraction executed on the FP pipes.
    pub fp_ops: f64,
    /// Of ALU operations, fraction that are multiplies.
    pub mul_ops: f64,
    /// Of FP operations, fraction that are divides.
    pub div_ops: f64,

    /// Bytes of the random/pointer-chase working set.
    pub ws_bytes: u64,
    /// Bytes of the *hot* subset of the working set that random accesses
    /// concentrate in (cache-resident locality of real programs).
    pub hot_bytes: u64,
    /// Probability a random access falls in the hot subset.
    pub hot_frac: f64,
    /// Bytes per streaming region.
    pub stream_bytes: u64,
    /// Number of concurrent streaming regions.
    pub stream_regions: usize,
    /// Streaming stride in bytes (vs. the 32 B L1 block: 8 = ¼ miss rate
    /// on cold blocks, 32 = one miss per access on non-resident regions).
    pub stride: u64,

    /// Load address-pattern weights (normalised internally).
    pub load_stream: f64,
    /// Weight of uniformly random loads.
    pub load_random: f64,
    /// Weight of serialized pointer-chase loads.
    pub load_chase: f64,
    /// Weight of slot (store-communicating) loads.
    pub load_slot: f64,

    /// Store pattern weight: streaming stores.
    pub store_stream: f64,
    /// Store pattern weight: slot stores (the store half of store-load
    /// pairs); the remainder is random.
    pub store_slot: f64,

    /// Number of communication slots (stack-frame-like footprint).
    pub slots: usize,
    /// Probability a slot load reads the slot's current address (and thus
    /// matches the most recent paired store).
    pub slot_match_p: f64,

    /// Geometric recency bias of register sources: higher = tighter
    /// dependence chains = less ILP.
    pub dep_short_p: f64,
    /// Probability each ALU source operand slot is populated.
    pub src_density: f64,

    /// Number of static basic blocks.
    pub blocks: usize,
    /// Mean loop trip count for loop-ending blocks.
    pub loop_mean: u32,
    /// Fraction of blocks ending in (predictable) loop branches.
    pub loop_branch_frac: f64,
    /// Taken bias of data-dependent conditional branches.
    pub branch_bias: f64,
    /// Seed of this benchmark's canonical static program. Fixed per
    /// benchmark (a calibration choice: the representative program whose
    /// base IPC matches Table 2); the runtime seed passed to
    /// [`BenchProfile::stream`] varies only the *dynamic* randomness
    /// (addresses, branch outcomes, trip counts).
    pub program_seed: u64,
}

impl BenchProfile {
    /// Mean body (non-branch) instructions per block, derived from the
    /// requested branch fraction.
    pub fn body_len(&self) -> usize {
        let b = self.branches.clamp(0.02, 0.4);
        (((1.0 - b) / b).round() as usize).clamp(3, 56)
    }

    /// Weight of random stores (the remainder of the store mix).
    pub fn store_random(&self) -> f64 {
        (1.0 - self.store_stream - self.store_slot).max(0.0)
    }

    /// Builds this profile's canonical static program.
    pub fn program(&self) -> StaticProgram {
        StaticProgram::build(self, self.program_seed)
    }

    /// Builds a dynamic instruction stream for this profile; `seed`
    /// varies only dynamic randomness, not the program structure.
    pub fn stream(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.name, self.program(), seed)
    }

    /// Looks a profile up by benchmark name.
    pub fn named(name: &str) -> Option<&'static BenchProfile> {
        ALL.iter().find(|p| p.name == name)
    }

    /// All 18 profiles, integer benchmarks first (Table 2 order).
    pub fn all() -> &'static [BenchProfile] {
        &ALL
    }

    /// The nine integer benchmarks.
    pub fn int_benchmarks() -> impl Iterator<Item = &'static BenchProfile> {
        ALL.iter().filter(|p| !p.fp)
    }

    /// The nine floating-point benchmarks.
    pub fn fp_benchmarks() -> impl Iterator<Item = &'static BenchProfile> {
        ALL.iter().filter(|p| p.fp)
    }
}

/// A template with middle-of-the-road values; each benchmark overrides the
/// fields that define its character.
const BASE: BenchProfile = BenchProfile {
    name: "base",
    fp: false,
    loads: 0.25,
    stores: 0.10,
    branches: 0.14,
    fp_ops: 0.0,
    mul_ops: 0.05,
    div_ops: 0.0,
    ws_bytes: 512 << 10,
    hot_bytes: 16 << 10,
    hot_frac: 0.94,
    stream_bytes: 128 << 10,
    stream_regions: 2,
    stride: 8,
    load_stream: 0.2,
    load_random: 0.45,
    load_chase: 0.05,
    load_slot: 0.3,
    store_stream: 0.1,
    store_slot: 0.6,
    slots: 64,
    slot_match_p: 0.5,
    dep_short_p: 0.45,
    src_density: 0.8,
    blocks: 32,
    loop_mean: 10,
    loop_branch_frac: 0.3,
    branch_bias: 0.9,
    program_seed: 0,
};

static ALL: [BenchProfile; 18] = [
    // ---------------- integer ----------------
    BenchProfile {
        name: "bzip",
        loads: 0.26,
        stores: 0.10,
        branches: 0.12,
        ws_bytes: 256 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.97,
        dep_short_p: 0.5,
        src_density: 0.5,
        branch_bias: 0.97,
        blocks: 24,
        loop_mean: 60,
        loop_branch_frac: 0.45,
        stream_bytes: 16 << 10,
        program_seed: 25,
        ..BASE
    },
    BenchProfile {
        name: "gcc",
        loads: 0.25,
        stores: 0.14,
        branches: 0.16,
        ws_bytes: 1 << 20,
        hot_bytes: 16 << 10,
        hot_frac: 0.96,
        dep_short_p: 0.5,
        src_density: 0.5,
        branch_bias: 0.96,
        blocks: 48,
        loop_mean: 24,
        loop_branch_frac: 0.25,
        slot_match_p: 0.4,
        stream_bytes: 16 << 10,
        program_seed: 53,
        ..BASE
    },
    BenchProfile {
        name: "gzip",
        loads: 0.22,
        stores: 0.10,
        branches: 0.14,
        ws_bytes: 256 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.95,
        dep_short_p: 0.28,
        src_density: 0.58,
        branch_bias: 0.955,
        blocks: 20,
        loop_mean: 40,
        loop_branch_frac: 0.4,
        stream_bytes: 16 << 10,
        program_seed: 52,
        ..BASE
    },
    BenchProfile {
        name: "mcf",
        loads: 0.30,
        stores: 0.09,
        branches: 0.17,
        ws_bytes: 12 << 20,
        hot_bytes: 512 << 10,
        hot_frac: 0.9,
        load_stream: 0.1,
        load_random: 0.5,
        load_chase: 0.15,
        load_slot: 0.25,
        store_slot: 0.5,
        dep_short_p: 0.6,
        src_density: 0.8,
        branch_bias: 0.9,
        blocks: 20,
        loop_mean: 16,
        loop_branch_frac: 0.25,
        stream_bytes: 64 << 10,
        program_seed: 15,
        ..BASE
    },
    BenchProfile {
        name: "parser",
        loads: 0.24,
        stores: 0.10,
        branches: 0.18,
        ws_bytes: 1 << 20,
        hot_bytes: 16 << 10,
        hot_frac: 0.95,
        dep_short_p: 0.4,
        src_density: 0.45,
        branch_bias: 0.96,
        blocks: 40,
        loop_mean: 40,
        loop_branch_frac: 0.25,
        stream_bytes: 16 << 10,
        program_seed: 19,
        ..BASE
    },
    BenchProfile {
        name: "perl",
        loads: 0.28,
        stores: 0.13,
        branches: 0.15,
        ws_bytes: 96 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.99,
        dep_short_p: 0.08,
        src_density: 0.4,
        branch_bias: 0.985,
        blocks: 36,
        loop_mean: 80,
        loop_branch_frac: 0.35,
        slot_match_p: 0.5,
        stream_bytes: 12 << 10,
        load_slot: 0.2,
        load_random: 0.55,
        program_seed: 24,
        ..BASE
    },
    BenchProfile {
        name: "twolf",
        loads: 0.25,
        stores: 0.09,
        branches: 0.15,
        ws_bytes: 1 << 20,
        hot_bytes: 24 << 10,
        hot_frac: 0.88,
        load_stream: 0.15,
        load_random: 0.6,
        load_slot: 0.2,
        dep_short_p: 0.65,
        src_density: 0.6,
        branch_bias: 0.93,
        blocks: 28,
        loop_mean: 24,
        loop_branch_frac: 0.3,
        stream_bytes: 24 << 10,
        program_seed: 48,
        ..BASE
    },
    BenchProfile {
        name: "vortex",
        loads: 0.18,
        stores: 0.23,
        branches: 0.14,
        ws_bytes: 1 << 20,
        hot_bytes: 16 << 10,
        hot_frac: 0.96,
        load_slot: 0.45,
        load_random: 0.35,
        load_stream: 0.15,
        store_slot: 0.7,
        slots: 128,
        slot_match_p: 0.6,
        dep_short_p: 0.2,
        src_density: 0.55,
        branch_bias: 0.97,
        blocks: 44,
        loop_mean: 40,
        loop_branch_frac: 0.3,
        stream_bytes: 24 << 10,
        program_seed: 43,
        ..BASE
    },
    BenchProfile {
        name: "vpr",
        loads: 0.28,
        stores: 0.11,
        branches: 0.13,
        ws_bytes: 1 << 20,
        hot_bytes: 24 << 10,
        hot_frac: 0.92,
        load_stream: 0.1,
        load_random: 0.6,
        load_chase: 0.05,
        load_slot: 0.25,
        dep_short_p: 0.55,
        src_density: 0.62,
        branch_bias: 0.93,
        blocks: 26,
        loop_mean: 24,
        loop_branch_frac: 0.3,
        stream_bytes: 16 << 10,
        program_seed: 48,
        ..BASE
    },
    // ---------------- floating point ----------------
    BenchProfile {
        name: "ammp",
        fp: true,
        loads: 0.28,
        stores: 0.09,
        branches: 0.06,
        fp_ops: 0.7,
        div_ops: 0.05,
        ws_bytes: 8 << 20,
        hot_bytes: 32 << 10,
        hot_frac: 0.95,
        stream_bytes: 64 << 10,
        stream_regions: 3,
        load_stream: 0.35,
        load_random: 0.52,
        load_chase: 0.03,
        load_slot: 0.1,
        store_stream: 0.4,
        store_slot: 0.3,
        slot_match_p: 0.35,
        dep_short_p: 0.5,
        src_density: 0.65,
        blocks: 14,
        loop_mean: 60,
        loop_branch_frac: 0.55,
        branch_bias: 0.96,
        program_seed: 40,
        ..BASE
    },
    BenchProfile {
        name: "applu",
        fp: true,
        loads: 0.30,
        stores: 0.12,
        branches: 0.03,
        fp_ops: 0.75,
        ws_bytes: 1 << 20,
        hot_bytes: 32 << 10,
        hot_frac: 0.97,
        stream_bytes: 24 << 10,
        stream_regions: 4,
        load_stream: 0.8,
        load_random: 0.1,
        load_chase: 0.0,
        load_slot: 0.1,
        store_stream: 0.7,
        store_slot: 0.2,
        slot_match_p: 0.3,
        dep_short_p: 0.4,
        src_density: 0.45,
        blocks: 10,
        loop_mean: 90,
        loop_branch_frac: 0.6,
        branch_bias: 0.985,
        program_seed: 41,
        ..BASE
    },
    BenchProfile {
        name: "art",
        fp: true,
        loads: 0.35,
        stores: 0.07,
        branches: 0.09,
        fp_ops: 0.6,
        ws_bytes: 24 << 20,
        hot_bytes: 64 << 10,
        hot_frac: 0.93,
        stream_bytes: 1 << 20,
        stream_regions: 2,
        stride: 32,
        load_stream: 0.55,
        load_random: 0.28,
        load_chase: 0.12,
        load_slot: 0.05,
        store_stream: 0.3,
        store_slot: 0.3,
        slot_match_p: 0.3,
        dep_short_p: 0.5,
        src_density: 0.85,
        blocks: 10,
        loop_mean: 60,
        loop_branch_frac: 0.5,
        branch_bias: 0.96,
        program_seed: 19,
        ..BASE
    },
    BenchProfile {
        name: "equake",
        fp: true,
        loads: 0.42,
        stores: 0.08,
        branches: 0.07,
        fp_ops: 0.65,
        ws_bytes: 2 << 20,
        hot_bytes: 48 << 10,
        hot_frac: 0.88,
        stream_bytes: 96 << 10,
        stream_regions: 3,
        load_stream: 0.6,
        load_random: 0.3,
        load_chase: 0.0,
        load_slot: 0.1,
        store_stream: 0.4,
        store_slot: 0.3,
        slot_match_p: 0.35,
        dep_short_p: 0.5,
        src_density: 0.55,
        blocks: 12,
        loop_mean: 70,
        loop_branch_frac: 0.55,
        branch_bias: 0.97,
        program_seed: 1,
        ..BASE
    },
    BenchProfile {
        name: "mesa",
        fp: true,
        loads: 0.25,
        stores: 0.09,
        branches: 0.09,
        fp_ops: 0.55,
        ws_bytes: 96 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.99,
        stream_bytes: 12 << 10,
        stream_regions: 3,
        load_stream: 0.5,
        load_random: 0.25,
        load_chase: 0.0,
        load_slot: 0.25,
        store_stream: 0.3,
        store_slot: 0.5,
        slot_match_p: 0.5,
        dep_short_p: 0.3,
        src_density: 0.35,
        blocks: 24,
        loop_mean: 90,
        loop_branch_frac: 0.45,
        branch_bias: 0.99,
        program_seed: 0,
        ..BASE
    },
    BenchProfile {
        name: "mgrid",
        fp: true,
        loads: 0.51,
        stores: 0.02,
        branches: 0.02,
        fp_ops: 0.8,
        ws_bytes: 512 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.97,
        stream_bytes: 96 << 10,
        stream_regions: 2,
        load_stream: 0.9,
        load_random: 0.08,
        load_chase: 0.0,
        load_slot: 0.02,
        store_stream: 0.8,
        store_slot: 0.1,
        slot_match_p: 0.25,
        dep_short_p: 0.45,
        src_density: 0.5,
        blocks: 6,
        loop_mean: 120,
        loop_branch_frac: 0.7,
        branch_bias: 0.99,
        program_seed: 20,
        ..BASE
    },
    BenchProfile {
        name: "sixtrack",
        fp: true,
        loads: 0.25,
        stores: 0.10,
        branches: 0.05,
        fp_ops: 0.75,
        mul_ops: 0.15,
        ws_bytes: 384 << 10,
        hot_bytes: 16 << 10,
        hot_frac: 0.95,
        stream_bytes: 16 << 10,
        stream_regions: 3,
        load_stream: 0.65,
        load_random: 0.2,
        load_chase: 0.0,
        load_slot: 0.15,
        store_stream: 0.5,
        store_slot: 0.3,
        slot_match_p: 0.4,
        dep_short_p: 0.28,
        src_density: 0.42,
        blocks: 12,
        loop_mean: 90,
        loop_branch_frac: 0.6,
        branch_bias: 0.985,
        program_seed: 0,
        ..BASE
    },
    BenchProfile {
        name: "swim",
        fp: true,
        loads: 0.30,
        stores: 0.15,
        branches: 0.02,
        fp_ops: 0.75,
        ws_bytes: 2 << 20,
        hot_bytes: 32 << 10,
        hot_frac: 0.97,
        stream_bytes: 320 << 10,
        stream_regions: 4,
        stride: 16,
        load_stream: 0.85,
        load_random: 0.1,
        load_chase: 0.0,
        load_slot: 0.05,
        store_stream: 0.8,
        store_slot: 0.1,
        slot_match_p: 0.25,
        dep_short_p: 0.75,
        src_density: 0.5,
        blocks: 6,
        loop_mean: 140,
        loop_branch_frac: 0.7,
        branch_bias: 0.99,
        program_seed: 17,
        ..BASE
    },
    BenchProfile {
        name: "wupwise",
        fp: true,
        loads: 0.25,
        stores: 0.12,
        branches: 0.05,
        fp_ops: 0.7,
        mul_ops: 0.2,
        ws_bytes: 512 << 10,
        hot_bytes: 32 << 10,
        hot_frac: 0.95,
        stream_bytes: 16 << 10,
        stream_regions: 3,
        load_stream: 0.6,
        load_random: 0.2,
        load_chase: 0.0,
        load_slot: 0.2,
        store_stream: 0.4,
        store_slot: 0.4,
        slot_match_p: 0.45,
        dep_short_p: 0.3,
        src_density: 0.45,
        blocks: 14,
        loop_mean: 90,
        loop_branch_frac: 0.55,
        branch_bias: 0.985,
        program_seed: 50,
        ..BASE
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks_nine_each() {
        assert_eq!(BenchProfile::all().len(), 18);
        assert_eq!(BenchProfile::int_benchmarks().count(), 9);
        assert_eq!(BenchProfile::fp_benchmarks().count(), 9);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for p in BenchProfile::all() {
            assert!(seen.insert(p.name), "duplicate profile {}", p.name);
            assert_eq!(BenchProfile::named(p.name).unwrap().name, p.name);
        }
        assert!(BenchProfile::named("nonesuch").is_none());
    }

    #[test]
    fn paper_reported_mixes_hold() {
        // §4.1.2: "51% of dynamic instructions in mgrid are loads and just
        // 2% are stores"; "just 18% ... are loads and 23% are stores" for
        // vortex; §4.2: equake 42% loads.
        let mgrid = BenchProfile::named("mgrid").unwrap();
        assert_eq!(mgrid.loads, 0.51);
        assert_eq!(mgrid.stores, 0.02);
        let vortex = BenchProfile::named("vortex").unwrap();
        assert_eq!(vortex.loads, 0.18);
        assert_eq!(vortex.stores, 0.23);
        let equake = BenchProfile::named("equake").unwrap();
        assert_eq!(equake.loads, 0.42);
    }

    #[test]
    fn fractions_are_sane() {
        for p in BenchProfile::all() {
            assert!(p.loads + p.stores + p.branches < 0.8, "{}", p.name);
            let lw = p.load_stream + p.load_random + p.load_chase + p.load_slot;
            assert!(
                (lw - 1.0).abs() < 1e-9,
                "{} load weights sum to {lw}",
                p.name
            );
            assert!(p.store_stream + p.store_slot <= 1.0 + 1e-9, "{}", p.name);
            assert!(p.store_random() >= 0.0);
            assert!((0.0..=1.0).contains(&p.slot_match_p));
            assert!((0.0..=1.0).contains(&p.branch_bias));
            assert!(p.body_len() >= 3);
        }
    }

    #[test]
    fn pointer_chasers_are_the_low_ipc_benchmarks() {
        let mcf = BenchProfile::named("mcf").unwrap();
        let mesa = BenchProfile::named("mesa").unwrap();
        assert!(mcf.load_chase > 0.1);
        assert!(mcf.ws_bytes > (4 << 20), "mcf footprint exceeds the 2M L2");
        assert_eq!(mesa.load_chase, 0.0);
        assert!(mesa.ws_bytes <= (256 << 10), "mesa is cache-resident");
    }

    #[test]
    fn body_len_tracks_branch_fraction() {
        let mgrid = BenchProfile::named("mgrid").unwrap(); // 2% branches
        let parser = BenchProfile::named("parser").unwrap(); // 18% branches
        assert!(mgrid.body_len() > 40);
        assert!(parser.body_len() < 6);
    }

    #[test]
    fn streams_build_and_are_named() {
        use lsq_isa::InstructionStream;
        let mut s = BenchProfile::named("swim").unwrap().stream(3);
        assert_eq!(s.name(), "swim");
        assert!(s.next_instr().is_some());
    }
}
