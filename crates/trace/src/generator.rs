//! Dynamic execution of a [`StaticProgram`] into an instruction stream.
//!
//! The generator walks the block graph (loops repeat, conditionals skip),
//! materialises effective addresses from each static instruction's
//! [`AccessPattern`] state, and emits the correct-path dynamic
//! instruction stream. The stream is infinite (the final block always
//! loops back); the simulator decides how many instructions to run.

use crate::program::{
    AccessPattern, BlockEnd, StaticInst, StaticProgram, HEAP_BASE, SLOT_BASE, STREAM_BASE,
};
use lsq_isa::{Addr, Instruction, InstructionStream};
use lsq_util::rng::{mix64, Xoshiro256};

/// Bytes reserved per communication slot.
const SLOT_SPAN: u64 = 64;
/// Gap between streaming regions (must exceed any region size). The gap
/// is deliberately *not* a multiple of any cache's set span (sets x
/// block), otherwise every region would start at the same set index and
/// regions would thrash each other — real segments are staggered.
const STREAM_REGION_SPAN: u64 = (64 << 20) + 8256;

/// An infinite dynamic instruction stream for one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    name: String,
    prog: StaticProgram,
    rng: Xoshiro256,
    block: usize,
    pos: usize,
    /// Remaining iterations of the current block's loop, once entered.
    loop_left: Option<u32>,
    stream_cursors: Vec<u64>,
    slot_addrs: Vec<u64>,
    emitted: u64,
}

impl TraceGenerator {
    /// Creates a generator executing `prog` with a deterministic dynamic
    /// random stream derived from `seed`.
    pub fn new(name: impl Into<String>, prog: StaticProgram, seed: u64) -> Self {
        let slots = prog.slots;
        Self {
            name: name.into(),
            rng: Xoshiro256::seed_from_u64(mix64(seed ^ 0x5eed_7ace)),
            stream_cursors: vec![0; prog.stream_regions],
            slot_addrs: (0..slots)
                .map(|s| SLOT_BASE + s as u64 * SLOT_SPAN)
                .collect(),
            prog,
            block: 0,
            pos: 0,
            loop_left: None,
            emitted: 0,
        }
    }

    /// Dynamic instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The data regions this workload touches, as `(base, bytes)` pairs,
    /// ordered roughly coldest-first. Used to pre-warm the cache
    /// hierarchy, substituting for the paper's 3-billion-instruction
    /// fast-forward: without it, uniformly random accesses over megabyte
    /// working sets would remain compulsory-miss-bound for the whole
    /// measurement window.
    pub fn data_regions(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        v.push((HEAP_BASE, self.prog.ws_bytes));
        for r in 0..self.prog.stream_regions {
            v.push((
                STREAM_BASE + r as u64 * STREAM_REGION_SPAN,
                self.prog.stream_bytes,
            ));
        }
        v.push((SLOT_BASE, self.prog.slots as u64 * SLOT_SPAN));
        v
    }

    /// The code region, as `(base, bytes)`.
    pub fn code_region(&self) -> (u64, u64) {
        let instrs: usize = self.prog.blocks.iter().map(|b| b.body.len() + 1).sum();
        (crate::program::CODE_BASE, (instrs as u64 + 8) * 4)
    }

    fn address_for(&mut self, inst: &StaticInst) -> Addr {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the generator attaches a pattern to every memory instruction it emits")
        match inst.pattern.expect("memory instruction has a pattern") {
            AccessPattern::Stream { region } => {
                let idx = region % self.stream_cursors.len();
                let addr =
                    STREAM_BASE + region as u64 * STREAM_REGION_SPAN + self.stream_cursors[idx];
                self.stream_cursors[idx] =
                    (self.stream_cursors[idx] + self.prog.stride) % self.prog.stream_bytes;
                Addr(addr)
            }
            AccessPattern::Random => {
                // Real programs concentrate irregular accesses in a hot
                // subset; the cold tail spans the full working set.
                let bytes = if self.rng.chance(self.prog.hot_frac) {
                    self.prog.hot_bytes.min(self.prog.ws_bytes)
                } else {
                    self.prog.ws_bytes
                };
                // Loads read even words, stores write odd words of the
                // same blocks: cache behaviour is unchanged, but there
                // are no *coincidental* same-word store-load collisions.
                // Genuine store-to-load communication is PC-stable in
                // real programs and is modeled by the Slot and Stream
                // patterns; uniform random collisions would manufacture
                // unpredictable dependences no predictor could learn.
                let granule = 16 * self.rng.range_u64((bytes / 16).max(1));
                let word_off = if inst.kind.is_store() { 8 } else { 0 };
                Addr(HEAP_BASE + granule + word_off)
            }
            AccessPattern::Chase => {
                // Pointer chases wander the whole footprint.
                let words = (self.prog.ws_bytes / 8).max(1);
                Addr(HEAP_BASE + 8 * self.rng.range_u64(words))
            }
            AccessPattern::Slot { slot } => {
                let slot = slot % self.slot_addrs.len();
                if inst.kind.is_store() {
                    // Occasionally move the slot to a new offset within
                    // its 64-byte frame (re-used stack slot behaviour).
                    if self.rng.chance(0.3) {
                        self.slot_addrs[slot] =
                            SLOT_BASE + slot as u64 * SLOT_SPAN + 8 * self.rng.range_u64(8);
                    }
                    Addr(self.slot_addrs[slot])
                } else if self.rng.chance(self.prog.slot_match_p) {
                    // Paired read of the slot's current address.
                    Addr(self.slot_addrs[slot])
                } else {
                    // A stale or neighbouring frame read: same region,
                    // usually a different word.
                    let other = self.rng.range_u64(self.slot_addrs.len() as u64 * 8);
                    Addr(SLOT_BASE + 8 * other)
                }
            }
        }
    }

    fn materialize(&mut self, inst: &StaticInst) -> Instruction {
        let mut out = Instruction {
            pc: inst.pc,
            kind: inst.kind,
            dst: inst.dst,
            srcs: inst.srcs,
            addr: Addr(0),
            taken: false,
        };
        if inst.kind.is_mem() {
            out.addr = self.address_for(inst);
        }
        out
    }
}

impl InstructionStream for TraceGenerator {
    fn next_instr(&mut self) -> Option<Instruction> {
        loop {
            let block = &self.prog.blocks[self.block];
            if self.pos < block.body.len() {
                let inst = block.body[self.pos];
                self.pos += 1;
                self.emitted += 1;
                return Some(self.materialize(&inst));
            }
            // Block end.
            match block.end {
                BlockEnd::Loop { count } => {
                    let left = match self.loop_left {
                        Some(left) => left,
                        None => {
                            // Entering the loop: pick this visit's trip
                            // count around the static mean.
                            let spread = (count / 4).max(1) as u64;
                            let c = count + self.rng.range_u64(spread) as u32;
                            self.loop_left = Some(c);
                            c
                        }
                    };
                    let taken = left > 1;
                    let pc = block.branch_pc;
                    if taken {
                        self.loop_left = Some(left - 1);
                        self.pos = 0; // repeat this block
                    } else {
                        self.loop_left = None;
                        self.pos = 0;
                        self.block = (self.block + 1) % self.prog.blocks.len();
                    }
                    self.emitted += 1;
                    return Some(Instruction::branch(pc, taken));
                }
                BlockEnd::Conditional { bias } => {
                    let taken = self.rng.chance(bias);
                    let pc = block.branch_pc;
                    let skip = if taken { 2 } else { 1 };
                    self.pos = 0;
                    self.block = (self.block + skip) % self.prog.blocks.len();
                    self.emitted += 1;
                    return Some(Instruction::branch(pc, taken));
                }
                BlockEnd::FallThrough => {
                    self.pos = 0;
                    self.block = (self.block + 1) % self.prog.blocks.len();
                    // No instruction emitted; continue into the next block.
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchProfile;
    use std::collections::HashMap;

    fn take(name: &str, seed: u64, n: usize) -> Vec<Instruction> {
        let mut g = BenchProfile::named(name).unwrap().stream(seed);
        (0..n).map(|_| g.next_instr().unwrap()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let a = take("gcc", 9, 5000);
        let b = take("gcc", 9, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_is_infinite() {
        let mut g = BenchProfile::named("mgrid").unwrap().stream(1);
        for _ in 0..200_000 {
            assert!(g.next_instr().is_some());
        }
        assert_eq!(g.emitted(), 200_000);
    }

    #[test]
    fn dynamic_mix_approximates_profile() {
        for name in ["gcc", "mgrid", "vortex", "mcf"] {
            let p = BenchProfile::named(name).unwrap();
            let v = take(name, 2, 60_000);
            let loads = v.iter().filter(|i| i.kind.is_load()).count() as f64 / v.len() as f64;
            let stores = v.iter().filter(|i| i.kind.is_store()).count() as f64 / v.len() as f64;
            let branches = v.iter().filter(|i| i.kind.is_branch()).count() as f64 / v.len() as f64;
            assert!(
                (loads - p.loads).abs() < 0.08,
                "{name}: loads {loads:.3} vs profile {:.3}",
                p.loads
            );
            assert!(
                (stores - p.stores).abs() < 0.06,
                "{name}: stores {stores:.3} vs profile {:.3}",
                p.stores
            );
            assert!(
                (branches - p.branches).abs() < 0.08,
                "{name}: branches {branches:.3} vs profile {:.3}",
                p.branches
            );
        }
    }

    #[test]
    fn mem_instructions_have_addresses_in_known_regions() {
        for i in take("equake", 4, 20_000) {
            if i.kind.is_mem() {
                let a = i.addr.0;
                let in_stream = (STREAM_BASE..HEAP_BASE).contains(&a);
                let in_heap = (HEAP_BASE..SLOT_BASE).contains(&a);
                let in_slots = a >= SLOT_BASE;
                assert!(
                    in_stream || in_heap || in_slots,
                    "address {a:#x} out of regions"
                );
            } else {
                assert_eq!(i.addr.0, 0);
            }
        }
    }

    #[test]
    fn same_pc_repeats_for_loopy_code() {
        let v = take("mgrid", 1, 50_000);
        let mut by_pc: HashMap<u64, usize> = HashMap::new();
        for i in &v {
            *by_pc.entry(i.pc.0).or_default() += 1;
        }
        let max = by_pc.values().max().copied().unwrap_or(0);
        assert!(
            max > 100,
            "loops must revisit static PCs (max repeat {max})"
        );
    }

    #[test]
    fn slot_loads_often_match_recent_slot_stores() {
        // The raw material for the store-load pair predictor: a good
        // fraction of loads read a word stored shortly before.
        let v = take("vortex", 6, 60_000);
        let mut last_store_by_word: HashMap<u64, usize> = HashMap::new();
        let mut matches = 0usize;
        let mut loads = 0usize;
        for (idx, i) in v.iter().enumerate() {
            if i.kind.is_store() {
                last_store_by_word.insert(i.addr.word(), idx);
            } else if i.kind.is_load() {
                loads += 1;
                if let Some(&s) = last_store_by_word.get(&i.addr.word()) {
                    if idx - s < 256 {
                        matches += 1;
                    }
                }
            }
        }
        let frac = matches as f64 / loads as f64;
        assert!(
            (0.05..0.75).contains(&frac),
            "store-load match fraction {frac:.3} out of plausible range"
        );
    }

    #[test]
    fn streaming_benchmark_addresses_advance_by_stride() {
        let p = BenchProfile::named("swim").unwrap();
        let v = take("swim", 3, 30_000);
        // Group stream-region loads by region and check consecutive
        // addresses differ by the stride.
        let mut last: HashMap<u64, u64> = HashMap::new();
        let mut strided = 0usize;
        let mut total = 0usize;
        for i in &v {
            if i.kind.is_load() && (STREAM_BASE..HEAP_BASE).contains(&i.addr.0) {
                let region = (i.addr.0 - STREAM_BASE) / STREAM_REGION_SPAN;
                if let Some(prev) = last.insert(region, i.addr.0) {
                    total += 1;
                    // Stores and other loads share the region cursor, so a
                    // load-to-load delta of a few strides is still a
                    // sequential walk; wrap-around counts as well.
                    let delta = i.addr.0.wrapping_sub(prev);
                    if (delta > 0 && delta <= 6 * p.stride) || i.addr.0 < prev {
                        strided += 1;
                    }
                }
            }
        }
        assert!(total > 100, "swim must emit many stream loads");
        // Multiple static cursors share a region, so not every pair is
        // exactly strided — but the pattern must dominate... each static
        // instruction owns its cursor? Cursors are per *region*, shared.
        // Consecutive same-region accesses thus advance by one stride.
        assert!(
            strided as f64 / total as f64 > 0.9,
            "strided fraction {:.3}",
            strided as f64 / total as f64
        );
    }

    #[test]
    fn branch_outcomes_follow_loop_structure() {
        let v = take("mgrid", 5, 50_000);
        let branches: Vec<&Instruction> = v.iter().filter(|i| i.kind.is_branch()).collect();
        let taken = branches.iter().filter(|b| b.taken).count();
        let frac = taken as f64 / branches.len() as f64;
        assert!(
            frac > 0.8,
            "loopy FP code is mostly taken branches ({frac:.3})"
        );
    }

    #[test]
    fn data_regions_cover_all_emitted_addresses() {
        let mut g = BenchProfile::named("twolf").unwrap().stream(2);
        let regions = g.data_regions();
        assert!(regions.len() >= 3, "heap + streams + slots");
        for _ in 0..30_000 {
            let i = g.next_instr().unwrap();
            if i.kind.is_mem() {
                assert!(
                    regions
                        .iter()
                        .any(|&(b, len)| (b..b + len.max(64)).contains(&i.addr.0)),
                    "address {:#x} outside declared regions",
                    i.addr.0
                );
            }
        }
    }

    #[test]
    fn code_region_covers_all_pcs() {
        let mut g = BenchProfile::named("parser").unwrap().stream(2);
        let (base, len) = g.code_region();
        for _ in 0..30_000 {
            let i = g.next_instr().unwrap();
            assert!(
                (base..base + len).contains(&i.pc.0),
                "pc {:#x} outside code region",
                i.pc.0
            );
        }
    }

    #[test]
    fn emitted_counts_every_instruction() {
        let mut g = BenchProfile::named("perl").unwrap().stream(8);
        for _ in 0..1000 {
            g.next_instr();
        }
        assert_eq!(g.emitted(), 1000);
    }
}
