#![warn(missing_docs)]

//! # lsq-trace — synthetic SPEC2K-like workloads
//!
//! The paper evaluates on SPEC2K reference runs, which are proprietary.
//! This crate substitutes a *synthetic workload substrate*: each of the 18
//! benchmarks in the paper's Table 2 is described by a [`BenchProfile`]
//! (instruction mix, working-set and access-pattern structure, store-load
//! dependence behaviour, branch predictability, dependence-chain shape),
//! which is realised as a deterministic **static program** — basic blocks
//! of static instructions with stable PCs, loops, and per-instruction
//! access patterns — and then *executed* by a [`TraceGenerator`] into the
//! dynamic instruction stream the pipeline consumes.
//!
//! Static PC stability is the property that makes the store-set /
//! store-load pair predictors (and the branch predictor) behave the way
//! they do on real programs; loops over strided regions are what make the
//! cache hierarchy and queue-occupancy contrasts (small-footprint INT vs
//! streaming FP) emerge. See DESIGN.md §2 for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use lsq_trace::BenchProfile;
//! use lsq_isa::InstructionStream;
//!
//! let mut stream = BenchProfile::named("mgrid").unwrap().stream(1);
//! let first = stream.next_instr().unwrap();
//! assert!(first.pc.0 >= 0x40_0000);
//! ```

pub mod generator;
pub mod profile;
pub mod program;

pub use generator::TraceGenerator;
pub use profile::BenchProfile;
pub use program::{AccessPattern, BlockEnd, StaticBlock, StaticInst, StaticProgram};
