//! Poison-tolerant locking.
//!
//! The workspace's mutexes guard plain data (caches, counters, metric
//! families) whose invariants hold between every two statements, so a
//! panic on another thread never leaves them half-updated in a way that
//! matters. [`lock`] therefore recovers the guard from a poisoned
//! mutex instead of propagating the panic — matching the semantics
//! `std` adopted for its non-poisoning mutex types — and keeps library
//! code free of `expect("poisoned")` noise (the `no-unwrap-in-lib`
//! lint rule).

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Method-call form of [`lock`], so call sites read like `Mutex::lock`.
pub trait MutexExt<T: ?Sized> {
    /// Locks, recovering the guard from a poisoned mutex.
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T: ?Sized> MutexExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        lock(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
    }
}
