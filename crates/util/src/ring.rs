//! A fixed-capacity FIFO ring queue with stable *sequence numbers*.
//!
//! Hardware queues in the simulator (ROB, load queue, store queue, fetch
//! buffer) are circular buffers whose entries are identified by the
//! monotonically increasing sequence number of the instruction that
//! allocated them. [`RingQueue`] provides exactly that: push at the tail,
//! pop at the head, O(1) indexed access by sequence number, and truncation
//! from an arbitrary sequence number upward (the squash operation).

/// A fixed-capacity FIFO with monotonically increasing sequence numbers.
///
/// The first element ever pushed gets sequence number 0, the next 1, and so
/// on; sequence numbers are never reused even after pops (they model an
/// instruction's dynamic age). Squashing truncates the youngest entries.
///
/// # Examples
///
/// ```
/// use lsq_util::RingQueue;
///
/// let mut q: RingQueue<&str> = RingQueue::new(2);
/// assert_eq!(q.push("a"), Some(0));
/// assert_eq!(q.push("b"), Some(1));
/// assert_eq!(q.push("c"), None); // full
/// assert_eq!(q.pop(), Some((0, "a")));
/// assert_eq!(q.push("c"), Some(2));
/// assert_eq!(q.get(2), Some(&"c"));
/// ```
#[derive(Debug, Clone)]
pub struct RingQueue<T> {
    slots: Vec<Option<T>>,
    /// Sequence number of the head (oldest) element.
    head: u64,
    /// Sequence number the next push will receive.
    tail: u64,
}

impl<T> RingQueue<T> {
    /// Creates an empty queue that can hold `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingQueue capacity must be non-zero");
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            tail: 0,
        }
    }

    /// Number of elements currently held.
    #[inline]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the queue holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Whether the queue is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.slots.len()
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Sequence number of the oldest element, if any.
    #[inline]
    pub fn head_seq(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.head)
    }

    /// Sequence number the next push will receive.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.tail
    }

    #[inline]
    fn slot_of(&self, seq: u64) -> usize {
        (seq % self.slots.len() as u64) as usize
    }

    /// Pushes an element at the tail, returning its sequence number, or
    /// `None` if the queue is full (the element is dropped in that case —
    /// callers check [`Self::is_full`] first in the simulator).
    pub fn push(&mut self, value: T) -> Option<u64> {
        if self.is_full() {
            return None;
        }
        let seq = self.tail;
        let slot = self.slot_of(seq);
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(value);
        self.tail += 1;
        Some(seq)
    }

    /// Pops the oldest element together with its sequence number.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.is_empty() {
            return None;
        }
        let seq = self.head;
        let slot = self.slot_of(seq);
        // lsq-lint: allow(no-unwrap-in-lib, reason = "the head slot is occupied whenever len > 0, checked above")
        let value = self.slots[slot].take().expect("head slot occupied");
        self.head += 1;
        Some((seq, value))
    }

    /// Returns a reference to the element with sequence number `seq` if it
    /// is still in the queue.
    pub fn get(&self, seq: u64) -> Option<&T> {
        if seq < self.head || seq >= self.tail {
            return None;
        }
        self.slots[self.slot_of(seq)].as_ref()
    }

    /// Returns a mutable reference to the element with sequence number
    /// `seq` if it is still in the queue.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        if seq < self.head || seq >= self.tail {
            return None;
        }
        let slot = self.slot_of(seq);
        self.slots[slot].as_mut()
    }

    /// Returns a reference to the oldest element.
    pub fn front(&self) -> Option<&T> {
        self.get(self.head)
    }

    /// Removes every element with sequence number `>= from_seq` (the squash
    /// operation) and returns how many were removed.
    pub fn truncate_from(&mut self, from_seq: u64) -> usize {
        let from = from_seq.max(self.head);
        if from >= self.tail {
            return 0;
        }
        let removed = (self.tail - from) as usize;
        for seq in from..self.tail {
            let slot = self.slot_of(seq);
            self.slots[slot] = None;
        }
        self.tail = from;
        removed
    }

    /// Iterates over `(sequence, &element)` pairs from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        (self.head..self.tail).map(move |seq| {
            (
                seq,
                self.slots[self.slot_of(seq)]
                    .as_ref()
                    // lsq-lint: allow(no-unwrap-in-lib, reason = "iteration stays within the live range, whose slots are all occupied")
                    .expect("occupied slot in live range"),
            )
        })
    }

    /// Iterates over `(sequence, &mut element)` pairs oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        let head = self.head;
        let cap = self.slots.len() as u64;
        let len = self.len();
        // Split via raw pointer: sequence→slot mapping never aliases within
        // head..tail because len <= capacity.
        let base = self.slots.as_mut_ptr();
        (0..len).map(move |i| {
            let seq = head + i as u64;
            let slot = (seq % cap) as usize;
            // SAFETY: each slot index in head..tail is distinct (len <=
            // capacity) so we hand out at most one &mut per slot, and the
            // iterator borrows self mutably for its whole lifetime.
            // lsq-lint: allow(no-unwrap-in-lib, reason = "live-range slots are occupied (same invariant the unsafe block documents)")
            let r = unsafe { (*base.add(slot)).as_mut().expect("occupied slot") };
            (seq, r)
        })
    }

    /// Removes all elements and resets sequence numbering.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.head = 0;
        self.tail = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = RingQueue::<u32>::new(0);
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut q = RingQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.push(i), Some(i as u64));
        }
        assert!(q.is_full());
        assert_eq!(q.push(9), None);
        for i in 0..4 {
            assert_eq!(q.pop(), Some((i as u64, i)));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sequence_numbers_never_reused() {
        let mut q = RingQueue::new(2);
        q.push('a');
        q.push('b');
        q.pop();
        assert_eq!(q.push('c'), Some(2));
        q.pop();
        q.pop();
        assert_eq!(q.push('d'), Some(3));
    }

    #[test]
    fn get_by_sequence() {
        let mut q = RingQueue::new(3);
        q.push(10);
        q.push(20);
        q.pop();
        q.push(30);
        q.push(40);
        assert_eq!(q.get(0), None); // popped
        assert_eq!(q.get(1), Some(&20));
        assert_eq!(q.get(3), Some(&40));
        assert_eq!(q.get(4), None); // not yet pushed
        *q.get_mut(1).unwrap() = 21;
        assert_eq!(q.get(1), Some(&21));
    }

    #[test]
    fn truncate_from_squashes_young_entries() {
        let mut q = RingQueue::new(8);
        for i in 0..6 {
            q.push(i);
        }
        assert_eq!(q.truncate_from(3), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.get(3), None);
        assert_eq!(q.get(2), Some(&2));
        // Pushing after a squash reuses the freed sequence numbers, which
        // models refetching the squashed instructions.
        assert_eq!(q.push(33), Some(3));
    }

    #[test]
    fn truncate_edge_cases() {
        let mut q = RingQueue::new(4);
        q.push(1);
        q.push(2);
        assert_eq!(q.truncate_from(10), 0); // beyond tail
        q.pop();
        assert_eq!(q.truncate_from(0), 1); // clamped to head
        assert!(q.is_empty());
    }

    #[test]
    fn iter_yields_oldest_to_youngest() {
        let mut q = RingQueue::new(3);
        q.push('x');
        q.push('y');
        q.pop();
        q.push('z');
        q.push('w'); // wraps
        let v: Vec<_> = q.iter().collect();
        assert_eq!(v, vec![(1, &'y'), (2, &'z'), (3, &'w')]);
    }

    #[test]
    fn iter_mut_allows_in_place_updates() {
        let mut q = RingQueue::new(4);
        for i in 0..4 {
            q.push(i);
        }
        for (_, v) in q.iter_mut() {
            *v *= 10;
        }
        let v: Vec<_> = q.iter().map(|(_, v)| *v).collect();
        assert_eq!(v, vec![0, 10, 20, 30]);
    }

    #[test]
    fn clear_resets_numbering() {
        let mut q = RingQueue::new(2);
        q.push(1);
        q.push(2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.push(3), Some(0));
    }

    #[test]
    fn front_and_head_seq() {
        let mut q = RingQueue::new(2);
        assert_eq!(q.head_seq(), None);
        assert_eq!(q.front(), None);
        q.push(5);
        assert_eq!(q.head_seq(), Some(0));
        assert_eq!(q.front(), Some(&5));
    }

    #[test]
    fn heavy_wraparound_consistency() {
        let mut q = RingQueue::new(5);
        let mut expect_head = 0u64;
        let mut next = 0u64;
        for round in 0..1000u64 {
            while !q.is_full() {
                assert_eq!(q.push(next), Some(next));
                next += 1;
            }
            let pops = 1 + (round % 5) as usize;
            for _ in 0..pops.min(q.len()) {
                let (s, v) = q.pop().unwrap();
                assert_eq!(s, v);
                assert_eq!(s, expect_head);
                expect_head += 1;
            }
        }
    }
}
