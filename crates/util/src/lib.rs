#![warn(missing_docs)]

//! Utility substrate for the LSQ reproduction: deterministic pseudo-random
//! number generation and fixed-capacity queue/ring primitives.
//!
//! Everything in the workspace that needs randomness goes through
//! [`rng::Xoshiro256`] (seeded explicitly), so that every trace, every
//! simulation, and therefore every reproduced table and figure is
//! bit-for-bit reproducible across platforms and runs. This is why the
//! workspace does not depend on the `rand` crate.
//!
//! [`knobs`] is the central registry of `LSQ_*` environment variables:
//! every knob the workspace reads is declared there and read through
//! its accessors (enforced by the `lsq-lint` `knob-registry` rule).
//!
//! # Examples
//!
//! ```
//! use lsq_util::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

pub mod hash;
pub mod knobs;
pub mod ring;
pub mod rng;
pub mod sync;

pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use ring::RingQueue;
pub use rng::Xoshiro256;
