//! Deterministic pseudo-random number generation.
//!
//! The workload generator and the property tests both need a fast,
//! high-quality, *seedable* PRNG whose output is stable across platforms
//! and library versions. We implement xoshiro256\*\* (Blackman & Vigna)
//! seeded through SplitMix64, the combination recommended by the xoshiro
//! authors.

/// SplitMix64 step: used to expand a 64-bit seed into xoshiro state and as
/// a standalone mixing function for hashing small integers.
///
/// # Examples
///
/// ```
/// let a = lsq_util::rng::splitmix64(&mut 1u64.wrapping_mul(7));
/// let b = lsq_util::rng::splitmix64(&mut 1u64.wrapping_mul(7));
/// assert_eq!(a, b);
/// ```
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a 64-bit value into a well-distributed 64-bit hash.
///
/// Used to derive per-component seeds (e.g. per-benchmark, per-run) from a
/// master seed without correlation between streams.
///
/// # Examples
///
/// ```
/// assert_ne!(lsq_util::rng::mix64(1), lsq_util::rng::mix64(2));
/// ```
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// xoshiro256\*\* — a small-state, very fast PRNG with 256 bits of state.
///
/// Not cryptographically secure; used only for synthetic workload
/// generation and test-input shuffling.
///
/// # Examples
///
/// ```
/// use lsq_util::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let x = rng.range_u64(10); // 0..10
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `0..bound`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: retry (rare unless bound is huge).
            if lo >= bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `0..bound`. Returns 0 when `bound == 0`.
    #[inline]
    pub fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Samples an index from a slice of non-negative weights.
    ///
    /// Returns `None` when the weights are empty or sum to zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use lsq_util::rng::Xoshiro256;
    /// let mut rng = Xoshiro256::seed_from_u64(1);
    /// let idx = rng.weighted(&[0.0, 1.0, 0.0]).unwrap();
    /// assert_eq!(idx, 1);
    /// ```
    pub fn weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        // NaN-safe: rejects empty, all-zero, and NaN-polluted weights.
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slop: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Samples a geometric-ish distance in `1..=max`, biased toward small
    /// values with decay parameter `p` in `(0,1)` (larger `p` = shorter).
    pub fn short_distance(&mut self, max: usize, p: f64) -> usize {
        let max = max.max(1);
        let mut d = 1usize;
        while d < max && !self.chance(p) {
            d += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same} matches");
    }

    #[test]
    fn known_first_value_is_stable() {
        // Pin the output so accidental algorithm changes are caught: every
        // reproduced figure depends on this stream.
        let mut r = Xoshiro256::seed_from_u64(0);
        let v = r.next_u64();
        let mut r2 = Xoshiro256::seed_from_u64(0);
        assert_eq!(v, r2.next_u64());
        assert_ne!(v, 0);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.range_u64(bound) < bound);
            }
        }
        assert_eq!(r.range_u64(0), 0);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[r.range_usize(8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(17);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_tracks_p() {
        let mut r = Xoshiro256::seed_from_u64(21);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_zero_and_empty() {
        let mut r = Xoshiro256::seed_from_u64(8);
        assert_eq!(r.weighted(&[]), None);
        assert_eq!(r.weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_proportions() {
        let mut r = Xoshiro256::seed_from_u64(8);
        let w = [1.0, 3.0];
        let mut c = [0usize; 2];
        for _ in 0..40_000 {
            c[r.weighted(&w).unwrap()] += 1;
        }
        let frac = c[1] as f64 / 40_000.0;
        assert!((0.72..0.78).contains(&frac), "frac {frac}");
    }

    #[test]
    fn short_distance_bounds() {
        let mut r = Xoshiro256::seed_from_u64(4);
        for _ in 0..1000 {
            let d = r.short_distance(16, 0.5);
            assert!((1..=16).contains(&d));
        }
        assert_eq!(r.short_distance(0, 0.5), 1);
    }

    #[test]
    fn mix64_distinct() {
        let vals: std::collections::HashSet<u64> = (0..1000).map(mix64).collect();
        assert_eq!(vals.len(), 1000);
    }
}
