//! The central `LSQ_*` environment-knob registry.
//!
//! Every environment variable the workspace reads is declared here —
//! name, value kind, default, and a one-line doc — and read through
//! [`get`] / [`get_os`] / [`flag`]. The `lsq-lint` rule `knob-registry`
//! enforces this mechanically: a literal `std::env::var("LSQ_…")` call
//! anywhere outside this module is a lint error, as is drift between
//! this table and the knob table in `EXPERIMENTS.md` (in either
//! direction).
//!
//! Registering a knob means adding one [`Knob`] row to [`REGISTRY`] and
//! one row to the `EXPERIMENTS.md` knob table; call sites then use
//! `lsq_util::knobs::get("LSQ_MY_KNOB")`.

use std::ffi::OsString;

/// One registered environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knob {
    /// Environment-variable name (`LSQ_…`).
    pub name: &'static str,
    /// Value kind, for humans: `"int"`, `"flag"`, `"path"`, `"string"`.
    pub kind: &'static str,
    /// Default used when the variable is unset, for humans.
    pub default: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// Every environment knob the workspace reads, in alphabetical order.
pub const REGISTRY: &[Knob] = &[
    Knob {
        name: "LSQ_ACCOUNTING",
        kind: "flag",
        default: "off",
        doc: "Attach the cycle accountant to every fresh job (CPI stacks).",
    },
    Knob {
        name: "LSQ_ACCOUNTING_CSV",
        kind: "path",
        default: "unset",
        doc: "Windowed CPI-stack CSV destination, `<path>[:window]` (default window 10000).",
    },
    Knob {
        name: "LSQ_EXPERIMENTS_JSON",
        kind: "path",
        default: "unset",
        doc: "Dump one JSON record per submitted engine job to this path.",
    },
    Knob {
        name: "LSQ_EXPERIMENTS_OUT",
        kind: "path",
        default: "unset",
        doc: "`--bin all` also writes its rendered artifact output to this file.",
    },
    Knob {
        name: "LSQ_INSTRS",
        kind: "int",
        default: "250000",
        doc: "Measured instructions per (benchmark, design point) job.",
    },
    Knob {
        name: "LSQ_JOBS",
        kind: "int",
        default: "available parallelism",
        doc: "Worker threads for the work-stealing experiment engine.",
    },
    Knob {
        name: "LSQ_METRICS_ADDR",
        kind: "string",
        default: "unset",
        doc: "Serve live /metrics and /jobs on this `host:port` during engine runs.",
    },
    Knob {
        name: "LSQ_PIPEVIEW",
        kind: "path",
        default: "unset",
        doc: "Per-instruction pipeline-viewer log, `<path>[:konata|:o3]` (default format konata).",
    },
    Knob {
        name: "LSQ_PIPEVIEW_CAP",
        kind: "int",
        default: "65536",
        doc: "Finished-record ring capacity for the pipeline viewer; oldest are evicted first.",
    },
    Knob {
        name: "LSQ_PROFILE",
        kind: "flag",
        default: "off",
        doc: "Attach the per-phase wall-time self-profiler to every fresh job.",
    },
    Knob {
        name: "LSQ_PROGRESS",
        kind: "flag",
        default: "auto (stderr is a tty)",
        doc: "Force the batch progress meter on (`1`) or off (`0`).",
    },
    Knob {
        name: "LSQ_SAMPLE_CYCLES",
        kind: "int",
        default: "unset (1000 in timeline mode)",
        doc: "Windowed time-series sampler period in cycles for traced runs.",
    },
    Knob {
        name: "LSQ_TRACE",
        kind: "path",
        default: "unset",
        doc: "Trace sink, `<path>[:events|:chrome|:timeline]` (default format events).",
    },
    Knob {
        name: "LSQ_TRACE_CAP",
        kind: "int",
        default: "262144",
        doc: "Event-ring capacity (events) for traced runs; oldest are evicted first.",
    },
];

/// Looks up a registered knob by name.
pub fn find(name: &str) -> Option<&'static Knob> {
    REGISTRY.iter().find(|k| k.name == name)
}

/// Whether `name` is a registered knob.
pub fn is_registered(name: &str) -> bool {
    find(name).is_some()
}

fn assert_registered(name: &str) {
    debug_assert!(
        is_registered(name),
        "environment knob {name} is not in lsq_util::knobs::REGISTRY; \
         register it there and document it in EXPERIMENTS.md"
    );
}

/// Reads a registered knob as UTF-8, `None` when unset or invalid UTF-8.
///
/// The single sanctioned path to `std::env::var` for `LSQ_*` names;
/// debug builds assert the name is registered.
pub fn get(name: &str) -> Option<String> {
    assert_registered(name);
    std::env::var(name).ok()
}

/// Reads a registered knob as an `OsString`, `None` when unset.
pub fn get_os(name: &str) -> Option<OsString> {
    assert_registered(name);
    std::env::var_os(name)
}

/// Reads a boolean knob: set, non-empty, and not `0` (after trimming).
pub fn flag(name: &str) -> bool {
    matches!(get(name).as_deref().map(str::trim), Some(v) if !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_prefixed() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].name < pair[1].name, "registry sorted by name");
        }
        for k in REGISTRY {
            assert!(
                k.name.starts_with("LSQ_"),
                "{} must be LSQ_-prefixed",
                k.name
            );
            assert!(!k.doc.is_empty() && !k.kind.is_empty() && !k.default.is_empty());
        }
    }

    #[test]
    fn lookup_and_flag_semantics() {
        assert!(is_registered("LSQ_JOBS"));
        assert!(!is_registered("LSQ_NOT_A_KNOB"));
        // `flag` reads through the process environment; exercise the
        // parse via a registered knob that tests own exclusively.
        std::env::set_var("LSQ_PROFILE", "0");
        assert!(!flag("LSQ_PROFILE"));
        std::env::set_var("LSQ_PROFILE", " 1 ");
        assert!(flag("LSQ_PROFILE"));
        std::env::set_var("LSQ_PROFILE", "");
        assert!(!flag("LSQ_PROFILE"));
        std::env::remove_var("LSQ_PROFILE");
        assert!(!flag("LSQ_PROFILE"));
    }
}
