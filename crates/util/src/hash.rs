//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The simulator keys hash maps by sequence numbers and program counters
//! — small integers under the caller's control, never attacker input —
//! so the standard library's SipHash (designed for HashDoS resistance)
//! is pure overhead on these paths. [`FastHasher`] folds each written
//! word through a splitmix64-style avalanche, which is a handful of
//! multiplies and shifts and passes the same seed-independence bar the
//! rest of the workspace holds (no per-process randomness, so map
//! iteration order is stable across runs — though callers must still
//! never let iteration order affect architectural state).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed through [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// splitmix64's finalization: full-avalanche mix of one 64-bit word.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Word-at-a-time splitmix64 hasher. Integer keys take the single-word
/// fast path; byte slices are folded eight bytes at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lsq-lint: allow(no-unwrap-in-lib, reason = "chunks_exact(8) yields exactly 8-byte slices")
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Tag the tail with its length so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8;
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = mix(self.0 ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(feed: impl Fn(&mut FastHasher)) -> u64 {
        let mut h = FastHasher::default();
        feed(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(42)));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance proof, just a smoke test that the
        // mix is not degenerate on small sequential keys.
        let hashes: FastHashSet<u64> = (0..10_000u64)
            .map(|i| hash_of(|h| h.write_u64(i)))
            .collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn tail_bytes_are_length_tagged() {
        assert_ne!(hash_of(|h| h.write(b"ab")), hash_of(|h| h.write(b"ab\0")));
    }

    #[test]
    fn map_works_with_u64_keys() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&7), Some(&14));
        assert_eq!(m.len(), 100);
    }
}
