//! The [`Tracer`] trait, its zero-cost no-op default, and the bounded
//! ring-buffer sink.
//!
//! The simulator structs take a `T: Tracer = NopTracer` type parameter;
//! every emission site is guarded by `if self.tracer.enabled()`, and
//! [`NopTracer::enabled`] is a constant `false`, so untraced builds
//! monomorphize to exactly the pre-tracing code (the bench acceptance
//! criterion). A [`SharedTracer`] is a cloneable handle to one
//! [`TraceBuffer`]; the simulator, its LSQ, and its memory hierarchy
//! each hold a clone and append to the same ring.

use std::cell::RefCell;
use std::rc::Rc;

use crate::attrib::PcAttribution;
use crate::event::{Event, TimedEvent};
use crate::json::Json;

/// Default ring capacity (events), chosen so a traced run of a few
/// hundred thousand instructions keeps its tail without unbounded
/// memory growth.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// Receives events from the simulator. All methods default to no-ops;
/// emission sites must guard payload construction behind
/// [`Tracer::enabled`] so a disabled tracer costs nothing.
pub trait Tracer {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Called once per simulated cycle, before any events of that cycle.
    fn set_cycle(&mut self, _cycle: u64) {}

    /// Record one event at the current cycle.
    fn emit(&mut self, _event: Event) {}
}

/// The do-nothing tracer; the default for every simulator struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopTracer;

// Spelled out (rather than relying on trait defaults) so lsq-lint's
// zero-cost-nop rule can check the contract locally: every method
// trivial and #[inline(always)], so untraced builds monomorphize to
// exactly the pre-tracing code.
impl Tracer for NopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn set_cycle(&mut self, _cycle: u64) {}

    #[inline(always)]
    fn emit(&mut self, _event: Event) {}
}

/// A bounded ring of [`TimedEvent`]s plus always-on per-PC attribution.
///
/// When the ring is full the oldest event is evicted and `dropped` is
/// incremented — recent history is what debugging needs, and the
/// attribution table (which is cheap and bounded by static-PC count)
/// still covers the whole run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    cycle: u64,
    capacity: usize,
    events: std::collections::VecDeque<TimedEvent>,
    dropped: u64,
    total: u64,
    attrib: PcAttribution,
}

impl TraceBuffer {
    /// An empty buffer with [`DEFAULT_RING_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An empty buffer bounded to `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            cycle: 0,
            capacity: capacity.max(1),
            events: std::collections::VecDeque::new(),
            dropped: 0,
            total: 0,
            attrib: PcAttribution::default(),
        }
    }

    /// Set the cycle stamped onto subsequently pushed events.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Append one event at the current cycle, evicting the oldest if
    /// the ring is full. Attribution is recorded unconditionally so it
    /// covers events the ring has already evicted.
    pub fn push(&mut self, event: Event) {
        self.attrib.record(&event);
        self.total += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimedEvent {
            cycle: self.cycle,
            event,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events pushed over the buffer's lifetime (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-static-PC attribution table (covers the whole run, not
    /// just the retained window).
    pub fn attribution(&self) -> &PcAttribution {
        &self.attrib
    }

    /// Serialize the retained events as JSON Lines: one
    /// `{"cycle":…,"event":…,…}` object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Serialize the retained events as a Chrome `trace_event` document
    /// (`{"traceEvents":[…]}`) that opens in Perfetto or
    /// `chrome://tracing`. Lane metadata rows name the tracks.
    pub fn to_chrome_trace(&self) -> String {
        let lanes: [(u32, &str); 6] = [
            (0, "pipeline"),
            (1, "store queue"),
            (2, "load queue"),
            (3, "load buffer"),
            (4, "segments"),
            (5, "memory"),
        ];
        let mut items: Vec<Json> = lanes
            .iter()
            .map(|&(tid, name)| {
                Json::obj(vec![
                    ("name", Json::from("thread_name")),
                    ("ph", Json::from("M")),
                    ("pid", Json::from(0u64)),
                    ("tid", Json::from(tid)),
                    ("args", Json::obj(vec![("name", Json::from(name))])),
                ])
            })
            .collect();
        items.extend(self.events.iter().map(TimedEvent::to_chrome_json));
        Json::obj(vec![
            ("traceEvents", Json::Arr(items)),
            ("displayTimeUnit", Json::from("ns")),
        ])
        .to_string()
    }
}

/// A cloneable handle to a shared [`TraceBuffer`]. The simulator and
/// its sub-components each hold a clone; all events land in one ring in
/// emission order. `Rc`-based: a traced simulator stays on the thread
/// that built it (the experiment engine constructs simulators locally
/// per worker, so this never crosses threads).
#[derive(Debug, Clone, Default)]
pub struct SharedTracer(Rc<RefCell<TraceBuffer>>);

impl SharedTracer {
    /// A tracer over a fresh buffer with [`DEFAULT_RING_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracer over a fresh buffer bounded to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedTracer(Rc::new(RefCell::new(TraceBuffer::with_capacity(capacity))))
    }

    /// Run `f` with a shared borrow of the buffer (serialize, inspect).
    pub fn with_buffer<R>(&self, f: impl FnOnce(&TraceBuffer) -> R) -> R {
        f(&self.0.borrow())
    }

    /// A deep copy of the buffer's current contents.
    pub fn snapshot(&self) -> TraceBuffer {
        self.0.borrow().clone()
    }
}

impl Tracer for SharedTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn set_cycle(&mut self, cycle: u64) {
        self.0.borrow_mut().set_cycle(cycle);
    }

    fn emit(&mut self, event: Event) {
        self.0.borrow_mut().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsq_isa::{Addr, Pc};

    fn ev(seq: u64) -> Event {
        Event::Issue {
            op: crate::event::MemOp::Load,
            seq,
            pc: Pc(0x1000 + seq * 4),
            addr: Addr(0x80),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut buf = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            buf.set_cycle(i);
            buf.push(ev(i));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.total(), 5);
        let first = buf.events().next().unwrap();
        assert_eq!(first.cycle, 2);
    }

    #[test]
    fn clones_share_one_ring() {
        let mut a = SharedTracer::with_capacity(16);
        let mut b = a.clone();
        a.set_cycle(1);
        a.emit(ev(0));
        b.emit(ev(1));
        assert_eq!(a.snapshot().len(), 2);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let mut buf = TraceBuffer::with_capacity(8);
        buf.set_cycle(7);
        buf.push(ev(1));
        buf.push(Event::Squash {
            victim: 1,
            pc: Pc(0x1004),
            cause: crate::event::SquashCause::MemOrder,
            penalty: 8,
        });
        let text = buf.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).expect("each JSONL line parses");
            assert_eq!(v.get("cycle").and_then(Json::as_u64), Some(7));
            assert!(v.get("event").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn chrome_trace_parses_and_names_lanes() {
        let mut buf = TraceBuffer::with_capacity(8);
        buf.set_cycle(3);
        buf.push(Event::SqSearch {
            load: 2,
            segments: 4,
            hit: true,
        });
        let doc = Json::parse(&buf.to_chrome_trace()).expect("chrome trace is valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 6 lane-metadata rows + 1 event.
        assert_eq!(events.len(), 7);
        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
        let last = events.last().unwrap();
        assert_eq!(last.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(last.get("dur").and_then(Json::as_u64), Some(4));
        assert_eq!(last.get("ts").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn nop_tracer_is_disabled() {
        let t = NopTracer;
        assert!(!t.enabled());
    }
}
