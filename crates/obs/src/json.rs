//! A minimal JSON value type with a serializer and a recursive-descent
//! parser.
//!
//! The workspace builds fully offline with no serde available, so trace
//! sinks ([`crate::TraceBuffer`]), the experiment engine's
//! `LSQ_EXPERIMENTS_JSON` dump, and the registry all serialize through
//! this type — and the round-trip tests parse their own output back
//! with [`Json::parse`] instead of string-matching on formatting.

use std::fmt;

/// A JSON value. Integers are kept distinct from floats so counter
/// values survive round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: Vec<(K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value's elements if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document. Returns an error message with a byte
    /// offset on malformed input, including trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counter values in this workspace never approach i64::MAX;
        // saturate rather than wrap if one somehow does.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{}' at byte {}", word, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The slice between escapes is valid UTF-8 because the
            // input is a &str and we only stop on ASCII bytes.
            let run = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| format!("invalid utf-8 in string at byte {}", start))?;
            out.push_str(run);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(format!(
                                        "invalid \\u escape ending at byte {}",
                                        self.pos
                                    ))
                                }
                            }
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| "non-ascii \\u escape".to_string())?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {}", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {}", start))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {}", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::from("sq \"search\"\npath\\")),
            ("count", Json::from(42u64)),
            ("ipc", Json::from(1.625)),
            ("neg", Json::Int(-7)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::from(1u64), Json::from(2u64), Json::from(3u64)]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, v);
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(back.get("ipc").and_then(Json::as_f64), Some(1.625));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("sq \"search\"\npath\\")
        );
        assert_eq!(
            back.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 ] , \"s\" : \"\\u0041\\u00e9\\ud83d\\ude00\" } ")
            .unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(0.0).to_string(), "0");
    }

    #[test]
    fn integers_stay_integers() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(9007199254740993));
    }
}
