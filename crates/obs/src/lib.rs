#![warn(missing_docs)]

//! # lsq-obs — observability for the LSQ reproduction
//!
//! The simulator's evaluation counters ([`lsq_core::LsqStats`]-style
//! end-of-run aggregates) cannot show *when* or *why* a counter moved.
//! This crate adds the missing audit trail without taxing untraced runs:
//!
//! * **Typed event tracing** — a [`Tracer`] trait whose no-op default
//!   ([`NopTracer`]) monomorphizes to nothing, so `Simulator::new` /
//!   `Lsq::new` compile to exactly the pre-tracing code. A
//!   [`SharedTracer`] collects [`Event`]s into a bounded ring buffer
//!   ([`TraceBuffer`]) and serializes them to JSONL or Chrome
//!   `trace_event` JSON (open in Perfetto or `chrome://tracing`).
//! * **Windowed sampling** — a [`Sampler`] turns per-cycle observations
//!   into fixed-width window rows (IPC, queue occupancy, search demand,
//!   in-flight loads) dumped as CSV, so warm-up vs. measured behaviour
//!   is visible at a glance. Per-window committed/cycle deltas sum back
//!   exactly to the run's aggregate IPC.
//! * **Per-PC attribution** — [`PcAttribution`] charges violations,
//!   squashes, and useless searches to static PCs, making Table 3's
//!   misprediction rate debuggable.
//! * **A metrics registry** — [`Registry`] renders counter sections as
//!   aligned text or JSON; `bin/diag` is built on it.
//! * **Env-driven wiring** — [`TraceConfig::from_env`] parses
//!   `LSQ_TRACE=<path>[:events|:timeline|:chrome]` and
//!   `LSQ_SAMPLE_CYCLES=<n>` so any experiment run can be traced
//!   without code changes.
//!
//! The crate depends only on `lsq-isa` (for [`lsq_isa::Pc`] and
//! [`lsq_isa::Addr`]) and has no external dependencies; [`json`] is a
//! small built-in JSON builder/parser used for serialization and
//! round-trip tests.

pub mod attrib;
pub mod config;
pub mod cpisample;
pub mod event;
pub mod json;
pub mod pipeview;
pub mod registry;
pub mod sample;
pub mod tracer;

pub use attrib::{PcAttribution, PcCounters};
pub use config::{TraceConfig, TraceMode};
pub use cpisample::{CpiStackSampler, CpiWindow};
pub use event::{Event, MemOp, MissLevel, QueueSide, SquashCause, TimedEvent};
pub use json::Json;
pub use pipeview::{
    parse_konata, parse_o3, parse_pipeview, to_konata, to_o3, ParsedInstr, PipeRecord,
    PipeviewConfig, PipeviewMode, DEFAULT_PIPEVIEW_CAPACITY,
};
pub use registry::{Metric, MetricValue, Registry, Section};
pub use sample::{SampleInput, SampleRow, Sampler};
pub use tracer::{NopTracer, SharedTracer, TraceBuffer, Tracer, DEFAULT_RING_CAPACITY};
