//! The windowed CPI-stack sampler.
//!
//! The IPC sampler ([`crate::sample::Sampler`]) answers *how fast* each
//! window ran; this one answers *where the commit slots went*. Called
//! once per simulated cycle with the cumulative per-component slot
//! counters of a cycle accountant, it folds them into fixed-width window
//! rows of per-component deltas. Deltas are taken against the previous
//! window's cumulative values starting from zero, so the rows partition
//! the run exactly: summing any component over every row reproduces its
//! final cumulative value, and summing a row across components gives
//! `cycles × commit_width` for that window.
//!
//! The sampler is label-driven rather than tied to a component enum so
//! this crate stays independent of the pipeline crate that defines the
//! taxonomy: the accountant passes its component names once at
//! construction and a matching slice of cumulative counters each cycle.

/// One completed window of per-component commit-slot deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiWindow {
    /// First cycle observed in this window.
    pub start_cycle: u64,
    /// Last cycle observed in this window.
    pub end_cycle: u64,
    /// Cycles observed in this window.
    pub cycles: u64,
    /// Commit slots charged to each component during this window, in
    /// the label order given to [`CpiStackSampler::new`].
    pub slots: Vec<u64>,
}

/// Folds per-cycle cumulative component counters into fixed-width
/// [`CpiWindow`]s.
#[derive(Debug, Clone)]
pub struct CpiStackSampler {
    window: u64,
    labels: Vec<&'static str>,
    rows: Vec<CpiWindow>,
    samples_in_window: u64,
    win_start: u64,
    win_end: u64,
    /// Cumulative values at the end of the last flushed window.
    base: Vec<u64>,
    /// Latest cumulative values seen.
    last: Vec<u64>,
}

impl CpiStackSampler {
    /// A sampler with the given window width in cycles and component
    /// labels (one per counter slot, in a fixed order).
    ///
    /// # Panics
    /// If `window` is zero or `labels` is empty.
    pub fn new(window: u64, labels: &[&'static str]) -> Self {
        assert!(window > 0, "sampler window must be at least one cycle");
        assert!(!labels.is_empty(), "sampler needs at least one component");
        Self {
            window,
            labels: labels.to_vec(),
            rows: Vec::new(),
            samples_in_window: 0,
            win_start: 0,
            win_end: 0,
            base: vec![0; labels.len()],
            last: vec![0; labels.len()],
        }
    }

    /// The configured window width.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The component labels, in slot order.
    pub fn labels(&self) -> &[&'static str] {
        &self.labels
    }

    /// Records one cycle's cumulative per-component slot counters. Call
    /// exactly once per simulated cycle with one value per label.
    ///
    /// # Panics
    /// If `cumulative` does not have one value per label.
    pub fn observe(&mut self, cycle: u64, cumulative: &[u64]) {
        assert_eq!(
            cumulative.len(),
            self.labels.len(),
            "one cumulative counter per component label"
        );
        if self.samples_in_window == 0 {
            self.win_start = cycle;
        }
        self.win_end = cycle;
        self.samples_in_window += 1;
        self.last.copy_from_slice(cumulative);
        if self.samples_in_window == self.window {
            self.flush_window();
        }
    }

    fn flush_window(&mut self) {
        debug_assert!(self.samples_in_window > 0);
        let slots: Vec<u64> = self
            .last
            .iter()
            .zip(&self.base)
            .map(|(l, b)| l - b)
            .collect();
        self.rows.push(CpiWindow {
            start_cycle: self.win_start,
            end_cycle: self.win_end,
            cycles: self.samples_in_window,
            slots,
        });
        self.base.copy_from_slice(&self.last);
        self.samples_in_window = 0;
    }

    /// Emits the partial last window, if any cycles are pending. Call at
    /// end of run so the rows cover every observed cycle.
    pub fn flush(&mut self) {
        if self.samples_in_window > 0 {
            self.flush_window();
        }
    }

    /// The completed windows, oldest first.
    pub fn rows(&self) -> &[CpiWindow] {
        &self.rows
    }

    /// The rows as CSV: `start_cycle,end_cycle,cycles,<label>,...` with
    /// one column per component. Flush first to include the partial last
    /// window.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_cycle,end_cycle,cycles");
        for label in &self.labels {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{},{},{}", r.start_cycle, r.end_cycle, r.cycles));
            for s in &r.slots {
                out.push_str(&format!(",{s}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: &[&str] = &["base", "frontend", "dep_chain"];

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        let _ = CpiStackSampler::new(0, LABELS);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_labels_panic() {
        let _ = CpiStackSampler::new(4, &[]);
    }

    #[test]
    #[should_panic(expected = "one cumulative counter per component label")]
    fn mismatched_counter_width_panics() {
        let mut s = CpiStackSampler::new(4, LABELS);
        s.observe(1, &[1, 2]);
    }

    #[test]
    fn windows_carry_per_component_deltas() {
        let mut s = CpiStackSampler::new(2, LABELS);
        // Each cycle charges 8 slots split across the three components.
        s.observe(1, &[5, 3, 0]);
        s.observe(2, &[8, 6, 2]);
        s.observe(3, &[16, 6, 2]);
        s.flush();
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[0].slots, vec![8, 6, 2]);
        assert_eq!((s.rows()[0].start_cycle, s.rows()[0].end_cycle), (1, 2));
        assert_eq!(s.rows()[1].slots, vec![8, 0, 0]);
        assert_eq!(s.rows()[1].cycles, 1);
        // Flushing again is a no-op.
        s.flush();
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn deltas_partition_the_run_exactly() {
        // The tentpole invariant, windowed: summing each component over
        // all rows reproduces its final cumulative value, so every
        // commit slot appears in exactly one window.
        let mut s = CpiStackSampler::new(7, LABELS);
        let mut cum = [0u64; 3];
        for cycle in 1..=23u64 {
            cum[(cycle % 3) as usize] += 8;
            s.observe(cycle, &cum);
        }
        s.flush();
        let mut summed = [0u64; 3];
        let mut cycles = 0u64;
        for r in s.rows() {
            cycles += r.cycles;
            for (acc, s) in summed.iter_mut().zip(&r.slots) {
                *acc += s;
            }
        }
        assert_eq!(summed, cum);
        assert_eq!(cycles, 23);
        // Each window's slots sum to cycles × width (8 per cycle here).
        for r in s.rows() {
            assert_eq!(r.slots.iter().sum::<u64>(), r.cycles * 8);
        }
    }

    #[test]
    fn csv_has_component_columns() {
        let mut s = CpiStackSampler::new(2, LABELS);
        s.observe(1, &[4, 4, 0]);
        s.observe(2, &[8, 8, 0]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "start_cycle,end_cycle,cycles,base,frontend,dep_chain"
        );
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "1,2,2,8,8,0");
    }
}
