//! The typed event vocabulary emitted by the simulator.
//!
//! One variant per microarchitectural event the paper's techniques act
//! through: queue dispatch/issue, the three search kinds (store-queue
//! forwarding, load-queue ordering, load-buffer), forwarding hits,
//! violations and the squashes they cause, segment-pipeline advances,
//! and cache misses. Events are small `Copy` values; the emitting sites
//! guard on [`crate::Tracer::enabled`] so a disabled tracer costs
//! nothing.

use crate::json::Json;
use lsq_isa::{Addr, Pc};

/// Which memory operation an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A load.
    Load,
    /// A store.
    Store,
}

impl MemOp {
    fn as_str(self) -> &'static str {
        match self {
            MemOp::Load => "load",
            MemOp::Store => "store",
        }
    }
}

/// Which queue a segment-pipeline advance happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueSide {
    /// The load queue.
    Lq,
    /// The store queue.
    Sq,
}

impl QueueSide {
    fn as_str(self) -> &'static str {
        match self {
            QueueSide::Lq => "lq",
            QueueSide::Sq => "sq",
        }
    }
}

/// Why the pipeline squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashCause {
    /// Store-load order violation detected at store execute
    /// (conventional / perfect schemes).
    MemOrder,
    /// Store-load order violation detected at store commit (the
    /// pair/aggressive schemes' delayed detection, §3.2).
    CommitMemOrder,
    /// Load-load ordering violation (§2.2 scheme 1).
    LoadLoad,
    /// External coherence invalidation hit an outstanding load
    /// (§2.2 scheme 2, R10000-style).
    Invalidation,
}

impl SquashCause {
    /// Stable lowercase name used in serialized traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SquashCause::MemOrder => "mem_order",
            SquashCause::CommitMemOrder => "commit_mem_order",
            SquashCause::LoadLoad => "load_load",
            SquashCause::Invalidation => "invalidation",
        }
    }
}

/// How far down the hierarchy a cache miss went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissLevel {
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both levels; served by main memory.
    Memory,
}

impl MissLevel {
    fn as_str(self) -> &'static str {
        match self {
            MissLevel::L2 => "l2",
            MissLevel::Memory => "memory",
        }
    }
}

/// One microarchitectural event. The cycle is attached by the trace
/// buffer (see [`TimedEvent`]); events themselves carry only payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A load or store entered its queue (program order).
    Dispatch {
        /// Load or store.
        op: MemOp,
        /// ROB sequence number.
        seq: u64,
        /// Static PC.
        pc: Pc,
        /// Effective address.
        addr: Addr,
    },
    /// A load issued to memory or a store finished address generation.
    Issue {
        /// Load or store.
        op: MemOp,
        /// ROB sequence number.
        seq: u64,
        /// Static PC.
        pc: Pc,
        /// Effective address.
        addr: Addr,
    },
    /// A load searched the store queue for a forwarding source.
    SqSearch {
        /// The searching load.
        load: u64,
        /// Segments traversed (1 when unsegmented).
        segments: u32,
        /// Whether a forwarding match was found.
        hit: bool,
    },
    /// A load or store searched the load queue (ordering/violation).
    LqSearch {
        /// Who searched.
        by: MemOp,
        /// The searcher's sequence number.
        seq: u64,
        /// Segments traversed (1 when unsegmented).
        segments: u32,
    },
    /// A load searched the load buffer (does not use LQ ports).
    LbSearch {
        /// The searching load.
        load: u64,
    },
    /// Store-to-load forwarding: the load's value came from the queue.
    Forward {
        /// The consuming load.
        load: u64,
        /// The producing store.
        store: u64,
        /// The forwarded word's address.
        addr: Addr,
    },
    /// A predictor-directed search found no matching store (the
    /// unnecessary-search component of Table 3's misprediction rate).
    UselessSearch {
        /// The searching load.
        load: u64,
        /// The load's static PC (for attribution).
        pc: Pc,
    },
    /// A store-load order violation was detected.
    Violation {
        /// The premature load to be squashed.
        victim: u64,
        /// The load's static PC.
        load_pc: Pc,
        /// The violating store's static PC.
        store_pc: Pc,
        /// Detected at store commit (pair scheme) rather than execute.
        at_commit: bool,
    },
    /// A multi-segment search advanced from one segment to the next
    /// (the segment pipeline of §3.1).
    SegAdvance {
        /// Which queue's segment pipeline.
        queue: QueueSide,
        /// Segment the search left.
        from_segment: u32,
        /// Segment the search entered.
        to_segment: u32,
    },
    /// The pipeline squashed from `victim` (inclusive).
    Squash {
        /// Oldest squashed instruction.
        victim: u64,
        /// The victim's static PC (zero if unknown).
        pc: Pc,
        /// Why.
        cause: SquashCause,
        /// Cycles before fetch resumes.
        penalty: u64,
    },
    /// A cache access missed the L1.
    CacheMiss {
        /// The accessed address.
        addr: Addr,
        /// How far the miss went.
        level: MissLevel,
        /// True for instruction fetches, false for data accesses.
        fetch: bool,
    },
}

impl Event {
    /// Stable snake_case event name used in serialized traces.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Dispatch { .. } => "dispatch",
            Event::Issue { .. } => "issue",
            Event::SqSearch { .. } => "sq_search",
            Event::LqSearch { .. } => "lq_search",
            Event::LbSearch { .. } => "lb_search",
            Event::Forward { .. } => "forward",
            Event::UselessSearch { .. } => "useless_search",
            Event::Violation { .. } => "violation",
            Event::SegAdvance { .. } => "seg_advance",
            Event::Squash { .. } => "squash",
            Event::CacheMiss { .. } => "cache_miss",
        }
    }

    /// Display lane for Chrome traces: events of one lane render as one
    /// named track in Perfetto (see [`crate::tracer::TraceBuffer::to_chrome_trace`]).
    pub fn lane(&self) -> u32 {
        match self {
            Event::Dispatch { .. } | Event::Issue { .. } | Event::Squash { .. } => 0,
            Event::SqSearch { .. } | Event::Forward { .. } | Event::UselessSearch { .. } => 1,
            Event::LqSearch { .. } | Event::Violation { .. } => 2,
            Event::LbSearch { .. } => 3,
            Event::SegAdvance { .. } => 4,
            Event::CacheMiss { .. } => 5,
        }
    }

    /// The event payload as JSON object fields (no name/cycle).
    pub fn args_json(&self) -> Json {
        match *self {
            Event::Dispatch { op, seq, pc, addr } | Event::Issue { op, seq, pc, addr } => {
                Json::obj(vec![
                    ("op", Json::from(op.as_str())),
                    ("seq", Json::from(seq)),
                    ("pc", Json::from(pc.0)),
                    ("addr", Json::from(addr.0)),
                ])
            }
            Event::SqSearch {
                load,
                segments,
                hit,
            } => Json::obj(vec![
                ("load", Json::from(load)),
                ("segments", Json::from(segments)),
                ("hit", Json::from(hit)),
            ]),
            Event::LqSearch { by, seq, segments } => Json::obj(vec![
                ("by", Json::from(by.as_str())),
                ("seq", Json::from(seq)),
                ("segments", Json::from(segments)),
            ]),
            Event::LbSearch { load } => Json::obj(vec![("load", Json::from(load))]),
            Event::Forward { load, store, addr } => Json::obj(vec![
                ("load", Json::from(load)),
                ("store", Json::from(store)),
                ("addr", Json::from(addr.0)),
            ]),
            Event::UselessSearch { load, pc } => {
                Json::obj(vec![("load", Json::from(load)), ("pc", Json::from(pc.0))])
            }
            Event::Violation {
                victim,
                load_pc,
                store_pc,
                at_commit,
            } => Json::obj(vec![
                ("victim", Json::from(victim)),
                ("load_pc", Json::from(load_pc.0)),
                ("store_pc", Json::from(store_pc.0)),
                ("at_commit", Json::from(at_commit)),
            ]),
            Event::SegAdvance {
                queue,
                from_segment,
                to_segment,
            } => Json::obj(vec![
                ("queue", Json::from(queue.as_str())),
                ("from_segment", Json::from(from_segment)),
                ("to_segment", Json::from(to_segment)),
            ]),
            Event::Squash {
                victim,
                pc,
                cause,
                penalty,
            } => Json::obj(vec![
                ("victim", Json::from(victim)),
                ("pc", Json::from(pc.0)),
                ("cause", Json::from(cause.as_str())),
                ("penalty", Json::from(penalty)),
            ]),
            Event::CacheMiss { addr, level, fetch } => Json::obj(vec![
                ("addr", Json::from(addr.0)),
                ("level", Json::from(level.as_str())),
                ("fetch", Json::from(fetch)),
            ]),
        }
    }

    /// Duration in "trace time" units for Chrome `"X"` (complete)
    /// events; `None` renders as an instant (`"i"`) event.
    pub fn duration(&self) -> Option<u32> {
        match *self {
            Event::SqSearch { segments, .. } => Some(segments.max(1)),
            Event::LqSearch { segments, .. } => Some(segments.max(1)),
            _ => None,
        }
    }
}

/// An event stamped with the cycle it happened in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Simulated cycle.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl TimedEvent {
    /// One JSONL object: `{"cycle":…,"event":"…", …payload}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cycle".to_string(), Json::from(self.cycle)),
            ("event".to_string(), Json::from(self.event.name())),
        ];
        if let Json::Obj(args) = self.event.args_json() {
            fields.extend(args);
        }
        Json::Obj(fields)
    }

    /// One Chrome `trace_event` object. Searches render as complete
    /// (`"X"`) events whose duration is the number of segments
    /// traversed; everything else is an instant (`"i"`) event. `ts` is
    /// the simulated cycle (Perfetto treats it as microseconds).
    pub fn to_chrome_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.event.name())),
            ("ts".to_string(), Json::from(self.cycle)),
            ("pid".to_string(), Json::from(0u64)),
            ("tid".to_string(), Json::from(self.event.lane())),
            ("args".to_string(), self.event.args_json()),
        ];
        match self.event.duration() {
            Some(dur) => {
                fields.insert(1, ("ph".to_string(), Json::from("X")));
                fields.insert(2, ("dur".to_string(), Json::from(dur)));
            }
            None => {
                fields.insert(1, ("ph".to_string(), Json::from("i")));
                fields.insert(2, ("s".to_string(), Json::from("t")));
            }
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_lanes_are_stable() {
        let e = Event::Forward {
            load: 3,
            store: 1,
            addr: Addr(0x40),
        };
        assert_eq!(e.name(), "forward");
        assert_eq!(e.lane(), 1);
        assert_eq!(SquashCause::CommitMemOrder.as_str(), "commit_mem_order");
    }

    #[test]
    fn searches_have_durations_instants_do_not() {
        let search = Event::SqSearch {
            load: 1,
            segments: 3,
            hit: false,
        };
        assert_eq!(search.duration(), Some(3));
        let inst = Event::LbSearch { load: 1 };
        assert_eq!(inst.duration(), None);
    }

    #[test]
    fn timed_event_serializes_payload_fields() {
        let t = TimedEvent {
            cycle: 42,
            event: Event::Violation {
                victim: 7,
                load_pc: Pc(0x3000),
                store_pc: Pc(0x2000),
                at_commit: true,
            },
        };
        let j = t.to_json();
        assert_eq!(j.get("cycle").and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("event").and_then(Json::as_str), Some("violation"));
        assert_eq!(j.get("load_pc").and_then(Json::as_u64), Some(0x3000));
        assert_eq!(j.get("at_commit").and_then(Json::as_bool), Some(true));
        let c = t.to_chrome_json();
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(c.get("ts").and_then(Json::as_u64), Some(42));
    }
}
