//! A small metrics registry: named sections of named values, rendered
//! as aligned text or JSON.
//!
//! `bin/diag` and the experiment engine's JSON dump are built on this
//! instead of hand-rolled `println!`/`format!` blocks, so the two
//! outputs cannot drift apart and new counters are added in one place.

use crate::json::Json;

/// A metric's value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An event count.
    Count(u64),
    /// A rate, mean, or other float.
    Float(f64),
    /// A percentage (stored as 0–100).
    Percent(f64),
}

impl MetricValue {
    fn render(&self) -> String {
        match *self {
            MetricValue::Count(n) => n.to_string(),
            MetricValue::Float(x) => format!("{x:.4}"),
            MetricValue::Percent(x) => format!("{x:.2}%"),
        }
    }

    fn to_json(self) -> Json {
        match self {
            MetricValue::Count(n) => Json::from(n),
            MetricValue::Float(x) | MetricValue::Percent(x) => Json::from(x),
        }
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (snake_case; doubles as the JSON key).
    pub name: String,
    /// The value.
    pub value: MetricValue,
}

/// A named group of metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    /// Section heading.
    pub name: String,
    /// The metrics, in insertion order.
    pub metrics: Vec<Metric>,
}

impl Section {
    /// Append a count metric; returns `self` for chaining.
    pub fn count(mut self, name: &str, value: u64) -> Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Count(value),
        });
        self
    }

    /// Append a float metric; returns `self` for chaining.
    pub fn float(mut self, name: &str, value: f64) -> Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Float(value),
        });
        self
    }

    /// Append a percentage metric (value in 0–100); returns `self`.
    pub fn percent(mut self, name: &str, value: f64) -> Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            value: MetricValue::Percent(value),
        });
        self
    }
}

/// An ordered collection of sections under one title.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Report title.
    pub title: String,
    /// The sections, in insertion order.
    pub sections: Vec<Section>,
}

impl Registry {
    /// An empty registry with the given title.
    pub fn new(title: &str) -> Self {
        Registry {
            title: title.to_string(),
            sections: Vec::new(),
        }
    }

    /// Append a section built with the [`Section`] chaining methods.
    pub fn section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// Start a section for chained building:
    /// `reg.section(Registry::named("run").count("cycles", c))`.
    pub fn named(name: &str) -> Section {
        Section {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Render as aligned text: title, then each section with its
    /// metrics right-aligned in a value column.
    pub fn render(&self) -> String {
        let name_width = self
            .sections
            .iter()
            .flat_map(|s| s.metrics.iter())
            .map(|m| m.name.len())
            .max()
            .unwrap_or(0);
        let mut out = format!("=== {} ===\n", self.title);
        for section in &self.sections {
            out.push_str(&format!("\n[{}]\n", section.name));
            for m in &section.metrics {
                out.push_str(&format!(
                    "  {:<width$}  {:>14}\n",
                    m.name,
                    m.value.render(),
                    width = name_width
                ));
            }
        }
        out
    }

    /// Render as a JSON object: `{"title":…, "<section>": {"<metric>": …}}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("title".to_string(), Json::from(self.title.as_str()))];
        for section in &self.sections {
            let metrics = section
                .metrics
                .iter()
                .map(|m| (m.name.clone(), m.value.to_json()))
                .collect();
            fields.push((section.name.clone(), Json::Obj(metrics)));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        Registry::new("gzip / store_sets")
            .section(
                Registry::named("run")
                    .count("cycles", 1000)
                    .float("ipc", 1.5),
            )
            .section(Registry::named("predictor").percent("mispredict_rate", 2.25))
    }

    #[test]
    fn renders_title_sections_and_alignment() {
        let text = sample().render();
        assert!(text.starts_with("=== gzip / store_sets ==="));
        assert!(text.contains("[run]"));
        assert!(text.contains("[predictor]"));
        assert!(text.contains("cycles"));
        assert!(text.contains("1.5000"));
        assert!(text.contains("2.25%"));
    }

    #[test]
    fn json_round_trips_with_section_structure() {
        let j = sample().to_json();
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(
            back.get("title").and_then(Json::as_str),
            Some("gzip / store_sets")
        );
        let run = back.get("run").unwrap();
        assert_eq!(run.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(run.get("ipc").and_then(Json::as_f64), Some(1.5));
    }
}
