//! Per-static-PC attribution of violations, squashes, and useless
//! searches.
//!
//! Table 3's misprediction rate is an aggregate over the whole run;
//! this table answers the follow-up question — *which* loads keep
//! violating and *which* predictor entries keep forcing searches that
//! find nothing. Attribution is recorded for every event pushed into a
//! [`crate::TraceBuffer`], independent of the ring's retention window.

use std::collections::HashMap;

use crate::event::Event;

/// Counters charged to one static PC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Order violations where this PC was the premature load.
    pub violations: u64,
    /// Of those, violations detected at store commit (pair scheme).
    pub commit_violations: u64,
    /// Predictor-directed searches from this load PC that matched no
    /// store.
    pub useless_searches: u64,
    /// Squashes whose victim instruction had this PC.
    pub squashes: u64,
    /// Total recovery penalty cycles charged to this PC's squashes.
    pub squash_penalty: u64,
    /// Violations where this PC was the conflicting *store*.
    pub store_violations: u64,
}

impl PcCounters {
    /// Combined badness used for ranking in [`PcAttribution::top`].
    pub fn weight(&self) -> u64 {
        self.violations + self.useless_searches + self.squashes + self.store_violations
    }
}

/// The attribution table: static PC → [`PcCounters`].
#[derive(Debug, Clone, Default)]
pub struct PcAttribution {
    by_pc: HashMap<u64, PcCounters>,
}

impl PcAttribution {
    /// Charge one event to its PC(s). Events without attribution
    /// relevance are ignored.
    pub fn record(&mut self, event: &Event) {
        match *event {
            Event::Violation {
                load_pc,
                store_pc,
                at_commit,
                ..
            } => {
                let load = self.by_pc.entry(load_pc.0).or_default();
                load.violations += 1;
                if at_commit {
                    load.commit_violations += 1;
                }
                self.by_pc.entry(store_pc.0).or_default().store_violations += 1;
            }
            Event::UselessSearch { pc, .. } => {
                self.by_pc.entry(pc.0).or_default().useless_searches += 1;
            }
            Event::Squash { pc, penalty, .. } => {
                let c = self.by_pc.entry(pc.0).or_default();
                c.squashes += 1;
                c.squash_penalty += penalty;
            }
            _ => {}
        }
    }

    /// Counters for one PC, if any event was charged to it.
    pub fn get(&self, pc: u64) -> Option<&PcCounters> {
        self.by_pc.get(&pc)
    }

    /// Number of distinct PCs with charges.
    pub fn len(&self) -> usize {
        self.by_pc.len()
    }

    /// Whether no events have been attributed.
    pub fn is_empty(&self) -> bool {
        self.by_pc.is_empty()
    }

    /// The `n` worst PCs by [`PcCounters::weight`], ties broken by PC
    /// ascending so the ordering is deterministic.
    pub fn top(&self, n: usize) -> Vec<(u64, PcCounters)> {
        let mut rows: Vec<(u64, PcCounters)> = self.by_pc.iter().map(|(&pc, &c)| (pc, c)).collect();
        rows.sort_by(|a, b| b.1.weight().cmp(&a.1.weight()).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// An aligned text table of the `n` worst PCs, or a placeholder
    /// line when nothing was attributed.
    pub fn report(&self, n: usize) -> String {
        if self.is_empty() {
            return "  (no violations, squashes, or useless searches attributed)\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<12} {:>10} {:>10} {:>10} {:>9} {:>11} {:>10}\n",
            "pc", "violations", "at-commit", "useless", "squashes", "penalty-cyc", "as-store"
        ));
        for (pc, c) in self.top(n) {
            out.push_str(&format!(
                "  {:<#12x} {:>10} {:>10} {:>10} {:>9} {:>11} {:>10}\n",
                pc,
                c.violations,
                c.commit_violations,
                c.useless_searches,
                c.squashes,
                c.squash_penalty,
                c.store_violations
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SquashCause;
    use lsq_isa::{Addr, Pc};

    #[test]
    fn charges_violations_to_both_pcs() {
        let mut a = PcAttribution::default();
        a.record(&Event::Violation {
            victim: 9,
            load_pc: Pc(0x3000),
            store_pc: Pc(0x2000),
            at_commit: true,
        });
        a.record(&Event::Violation {
            victim: 11,
            load_pc: Pc(0x3000),
            store_pc: Pc(0x2000),
            at_commit: false,
        });
        let load = a.get(0x3000).unwrap();
        assert_eq!(load.violations, 2);
        assert_eq!(load.commit_violations, 1);
        assert_eq!(load.store_violations, 0);
        let store = a.get(0x2000).unwrap();
        assert_eq!(store.store_violations, 2);
        assert_eq!(store.violations, 0);
    }

    #[test]
    fn ranks_by_weight_then_pc() {
        let mut a = PcAttribution::default();
        for _ in 0..3 {
            a.record(&Event::UselessSearch {
                load: 1,
                pc: Pc(0x100),
            });
        }
        a.record(&Event::UselessSearch {
            load: 2,
            pc: Pc(0x200),
        });
        a.record(&Event::Squash {
            victim: 5,
            pc: Pc(0x300),
            cause: SquashCause::LoadLoad,
            penalty: 8,
        });
        let top = a.top(2);
        assert_eq!(top[0].0, 0x100);
        // 0x200 and 0x300 tie at weight 1; lower PC wins.
        assert_eq!(top[1].0, 0x200);
        assert_eq!(a.get(0x300).unwrap().squash_penalty, 8);
    }

    #[test]
    fn ignores_unattributed_events() {
        let mut a = PcAttribution::default();
        a.record(&Event::Forward {
            load: 1,
            store: 0,
            addr: Addr(0x40),
        });
        assert!(a.is_empty());
        assert!(a.report(5).contains("no violations"));
    }
}
