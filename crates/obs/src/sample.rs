//! The windowed time-series sampler.
//!
//! Called once per simulated cycle with cumulative counters and
//! instantaneous occupancies, the sampler folds them into fixed-width
//! window rows: committed/cycle deltas (so per-window IPC), mean queue
//! occupancies, search demand, and in-flight loads. Because deltas are
//! taken against the previous window's cumulative values starting from
//! zero, the rows partition the run exactly — Σ committed over rows
//! equals the final cumulative committed count, and Σ cycles equals the
//! number of observed cycles. That is the acceptance-criterion
//! invariant: per-window IPC weighted by window length sums back to the
//! run's aggregate IPC.

use crate::json::Json;

/// One cycle's worth of observations, passed to [`Sampler::observe`].
/// Counter fields are cumulative; occupancy fields are instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleInput {
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Current load-queue occupancy.
    pub lq_occupancy: usize,
    /// Current store-queue occupancy.
    pub sq_occupancy: usize,
    /// Cumulative store-queue searches.
    pub sq_searches: u64,
    /// Cumulative load-queue searches (by stores and loads).
    pub lq_searches: u64,
    /// Loads currently in flight (issued, not yet complete).
    pub inflight_loads: usize,
}

/// One completed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// First cycle observed in this window.
    pub start_cycle: u64,
    /// Last cycle observed in this window.
    pub end_cycle: u64,
    /// Cycles observed in this window.
    pub cycles: u64,
    /// Instructions committed during this window.
    pub committed: u64,
    /// Mean load-queue occupancy over the window.
    pub lq_occupancy: f64,
    /// Mean store-queue occupancy over the window.
    pub sq_occupancy: f64,
    /// Mean in-flight loads over the window.
    pub inflight_loads: f64,
    /// Store-queue searches during this window.
    pub sq_searches: u64,
    /// Load-queue searches during this window.
    pub lq_searches: u64,
}

impl SampleRow {
    /// This window's IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// Folds per-cycle observations into fixed-width [`SampleRow`]s.
#[derive(Debug, Clone)]
pub struct Sampler {
    window: u64,
    rows: Vec<SampleRow>,
    // Within-window accumulation.
    samples_in_window: u64,
    win_start: u64,
    win_end: u64,
    lq_sum: f64,
    sq_sum: f64,
    inflight_sum: f64,
    // Cumulative counter values at the end of the last flushed window.
    base_committed: u64,
    base_sq_searches: u64,
    base_lq_searches: u64,
    // Latest cumulative counter values seen.
    last: SampleInput,
}

impl Sampler {
    /// A sampler with the given window width in cycles.
    ///
    /// # Panics
    /// If `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "sampler window must be at least one cycle");
        Sampler {
            window,
            rows: Vec::new(),
            samples_in_window: 0,
            win_start: 0,
            win_end: 0,
            lq_sum: 0.0,
            sq_sum: 0.0,
            inflight_sum: 0.0,
            base_committed: 0,
            base_sq_searches: 0,
            base_lq_searches: 0,
            last: SampleInput::default(),
        }
    }

    /// The configured window width.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record one cycle's observations. Call exactly once per simulated
    /// cycle (cycle values may start anywhere and need not be dense —
    /// windows are "per N observations", and row boundaries report the
    /// observed cycle range).
    pub fn observe(&mut self, cycle: u64, input: SampleInput) {
        if self.samples_in_window == 0 {
            self.win_start = cycle;
        }
        self.win_end = cycle;
        self.samples_in_window += 1;
        self.lq_sum += input.lq_occupancy as f64;
        self.sq_sum += input.sq_occupancy as f64;
        self.inflight_sum += input.inflight_loads as f64;
        self.last = input;
        if self.samples_in_window == self.window {
            self.flush_window();
        }
    }

    fn flush_window(&mut self) {
        let n = self.samples_in_window;
        debug_assert!(n > 0);
        self.rows.push(SampleRow {
            start_cycle: self.win_start,
            end_cycle: self.win_end,
            cycles: n,
            committed: self.last.committed - self.base_committed,
            lq_occupancy: self.lq_sum / n as f64,
            sq_occupancy: self.sq_sum / n as f64,
            inflight_loads: self.inflight_sum / n as f64,
            sq_searches: self.last.sq_searches - self.base_sq_searches,
            lq_searches: self.last.lq_searches - self.base_lq_searches,
        });
        self.base_committed = self.last.committed;
        self.base_sq_searches = self.last.sq_searches;
        self.base_lq_searches = self.last.lq_searches;
        self.samples_in_window = 0;
        self.lq_sum = 0.0;
        self.sq_sum = 0.0;
        self.inflight_sum = 0.0;
    }

    /// Emit the partial last window, if any cycles are pending. Call at
    /// end of run so the rows cover every observed cycle.
    pub fn flush(&mut self) {
        if self.samples_in_window > 0 {
            self.flush_window();
        }
    }

    /// The completed windows, oldest first.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// The rows as CSV with a header line. Flush first to include the
    /// partial last window.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "start_cycle,end_cycle,cycles,committed,ipc,lq_occupancy,sq_occupancy,inflight_loads,sq_searches,lq_searches\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.3},{:.3},{:.3},{},{}\n",
                r.start_cycle,
                r.end_cycle,
                r.cycles,
                r.committed,
                r.ipc(),
                r.lq_occupancy,
                r.sq_occupancy,
                r.inflight_loads,
                r.sq_searches,
                r.lq_searches
            ));
        }
        out
    }

    /// The rows as a JSON array of objects (for embedding in reports).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("start_cycle", Json::from(r.start_cycle)),
                        ("end_cycle", Json::from(r.end_cycle)),
                        ("cycles", Json::from(r.cycles)),
                        ("committed", Json::from(r.committed)),
                        ("ipc", Json::from(r.ipc())),
                        ("lq_occupancy", Json::from(r.lq_occupancy)),
                        ("sq_occupancy", Json::from(r.sq_occupancy)),
                        ("inflight_loads", Json::from(r.inflight_loads)),
                        ("sq_searches", Json::from(r.sq_searches)),
                        ("lq_searches", Json::from(r.lq_searches)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(committed: u64) -> SampleInput {
        SampleInput {
            committed,
            lq_occupancy: 4,
            sq_occupancy: 2,
            sq_searches: committed / 2,
            lq_searches: committed / 4,
            inflight_loads: 1,
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn sample_at_cycle_zero_starts_first_window() {
        let mut s = Sampler::new(4);
        for cycle in 0..4 {
            s.observe(cycle, input(cycle * 2));
        }
        assert_eq!(s.rows().len(), 1);
        let r = s.rows()[0];
        assert_eq!(r.start_cycle, 0);
        assert_eq!(r.end_cycle, 3);
        assert_eq!(r.cycles, 4);
        assert_eq!(r.committed, 6);
    }

    #[test]
    fn partial_last_window_flushes() {
        let mut s = Sampler::new(4);
        for cycle in 0..10 {
            s.observe(cycle, input(cycle));
        }
        assert_eq!(s.rows().len(), 2);
        s.flush();
        assert_eq!(s.rows().len(), 3);
        let last = s.rows()[2];
        assert_eq!(last.start_cycle, 8);
        assert_eq!(last.end_cycle, 9);
        assert_eq!(last.cycles, 2);
        // Flushing again is a no-op.
        s.flush();
        assert_eq!(s.rows().len(), 3);
    }

    #[test]
    fn window_of_one_emits_every_cycle() {
        let mut s = Sampler::new(1);
        s.observe(0, input(1));
        s.observe(1, input(3));
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.rows()[0].committed, 1);
        assert_eq!(s.rows()[1].committed, 2);
    }

    #[test]
    fn deltas_partition_the_run_exactly() {
        // The acceptance-criterion invariant: Σ committed and Σ cycles
        // across rows reproduce the aggregates, so length-weighted
        // per-window IPC equals aggregate IPC.
        let mut s = Sampler::new(7);
        let total_cycles = 23u64;
        let mut committed = 0u64;
        for cycle in 0..total_cycles {
            committed += (cycle % 3 == 0) as u64 * 2;
            s.observe(cycle, input(committed));
        }
        s.flush();
        let sum_cycles: u64 = s.rows().iter().map(|r| r.cycles).sum();
        let sum_committed: u64 = s.rows().iter().map(|r| r.committed).sum();
        assert_eq!(sum_cycles, total_cycles);
        assert_eq!(sum_committed, committed);
        let weighted: f64 = s.rows().iter().map(|r| r.ipc() * r.cycles as f64).sum();
        let aggregate = committed as f64 / total_cycles as f64;
        assert!((weighted / total_cycles as f64 - aggregate).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let mut s = Sampler::new(2);
        for cycle in 0..5 {
            s.observe(cycle, input(cycle));
        }
        s.flush();
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[0].starts_with("start_cycle,end_cycle,cycles,committed,ipc"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 10);
        }
    }
}
