//! Environment-driven trace configuration.
//!
//! Any run — `bin/diag`, `bin/artifact`, or a full experiment batch —
//! can be traced without code changes:
//!
//! * `LSQ_TRACE=<path>[:events|:chrome|:timeline]` selects the sink
//!   file and format (`events` = JSONL, `chrome` = Chrome
//!   `trace_event` JSON for Perfetto, `timeline` = windowed CSV only).
//! * `LSQ_SAMPLE_CYCLES=<n>` sets the sampler window; `events` and
//!   `chrome` runs with a window also write a `<path>.timeline.csv`
//!   sidecar.
//! * `LSQ_TRACE_CAP=<n>` bounds the event ring (default
//!   [`crate::DEFAULT_RING_CAPACITY`]).

use std::path::{Path, PathBuf};

use crate::sample::Sampler;
use crate::tracer::{TraceBuffer, DEFAULT_RING_CAPACITY};

/// Output format for a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// JSON Lines, one event object per line.
    Events,
    /// Chrome `trace_event` JSON (opens in Perfetto / `chrome://tracing`).
    Chrome,
    /// Windowed CSV time series only (no per-event output).
    Timeline,
}

/// A parsed trace configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Primary output path.
    pub path: PathBuf,
    /// Output format.
    pub mode: TraceMode,
    /// Sampler window in cycles, if sampling was requested.
    pub sample_cycles: Option<u64>,
    /// Event-ring capacity.
    pub capacity: usize,
}

impl TraceConfig {
    /// Parse an `LSQ_TRACE`-style value plus an optional
    /// `LSQ_SAMPLE_CYCLES`-style value. The mode suffix is optional and
    /// defaults to `events`; an unrecognized suffix is treated as part
    /// of the path (so `C:\traces\out.json` keeps working).
    pub fn parse(trace: &str, sample_cycles: Option<&str>) -> TraceConfig {
        let (path, mode) = match trace.rsplit_once(':') {
            Some((p, "events")) => (p, TraceMode::Events),
            Some((p, "chrome")) => (p, TraceMode::Chrome),
            Some((p, "timeline")) => (p, TraceMode::Timeline),
            _ => (trace, TraceMode::Events),
        };
        let sample_cycles = sample_cycles.and_then(|s| s.trim().parse::<u64>().ok());
        TraceConfig {
            path: PathBuf::from(path),
            mode,
            sample_cycles: sample_cycles.filter(|&n| n > 0),
            capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Read `LSQ_TRACE` / `LSQ_SAMPLE_CYCLES` / `LSQ_TRACE_CAP`;
    /// `None` when `LSQ_TRACE` is unset or empty.
    pub fn from_env() -> Option<TraceConfig> {
        let trace = lsq_util::knobs::get("LSQ_TRACE")?;
        if trace.trim().is_empty() {
            return None;
        }
        let sample = lsq_util::knobs::get("LSQ_SAMPLE_CYCLES");
        let mut cfg = TraceConfig::parse(&trace, sample.as_deref());
        if let Some(cap) =
            lsq_util::knobs::get("LSQ_TRACE_CAP").and_then(|s| s.trim().parse::<usize>().ok())
        {
            cfg.capacity = cap.max(1);
        }
        Some(cfg)
    }

    /// The sampler window to use, honouring the mode: `timeline` runs
    /// sample even when `LSQ_SAMPLE_CYCLES` is unset (defaulting to
    /// 1000 cycles), since a timeline with no windows would be empty.
    pub fn effective_sample_cycles(&self) -> Option<u64> {
        match (self.mode, self.sample_cycles) {
            (_, Some(n)) => Some(n),
            (TraceMode::Timeline, None) => Some(1000),
            _ => None,
        }
    }

    /// A copy with the output path uniquified for engine job `n`:
    /// job 0 writes the configured path verbatim; job `n` appends
    /// `.n` before nothing (i.e. `out.json` → `out.json.3`) so
    /// parallel jobs never clobber each other.
    pub fn for_job(&self, n: u64) -> TraceConfig {
        if n == 0 {
            return self.clone();
        }
        let mut cfg = self.clone();
        let mut os = cfg.path.into_os_string();
        os.push(format!(".{n}"));
        cfg.path = PathBuf::from(os);
        cfg
    }

    /// Path of the CSV timeline sidecar written alongside `events` /
    /// `chrome` output when sampling is on.
    pub fn timeline_path(&self) -> PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(".timeline.csv");
        PathBuf::from(os)
    }

    /// Write the configured outputs. Returns the paths written. The
    /// sampler, if provided, should already be flushed by the caller
    /// (the simulator's `take_sampler` does this).
    pub fn write(
        &self,
        buf: &TraceBuffer,
        sampler: Option<&Sampler>,
    ) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        match self.mode {
            TraceMode::Events => {
                write_file(&self.path, &buf.to_jsonl())?;
                written.push(self.path.clone());
            }
            TraceMode::Chrome => {
                write_file(&self.path, &buf.to_chrome_trace())?;
                written.push(self.path.clone());
            }
            TraceMode::Timeline => {
                if let Some(s) = sampler {
                    write_file(&self.path, &s.to_csv())?;
                    written.push(self.path.clone());
                }
            }
        }
        if self.mode != TraceMode::Timeline {
            if let Some(s) = sampler {
                let path = self.timeline_path();
                write_file(&path, &s.to_csv())?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mode_suffixes() {
        let c = TraceConfig::parse("/tmp/t.json:chrome", None);
        assert_eq!(c.path, PathBuf::from("/tmp/t.json"));
        assert_eq!(c.mode, TraceMode::Chrome);
        let c = TraceConfig::parse("/tmp/t.jsonl:events", Some("500"));
        assert_eq!(c.mode, TraceMode::Events);
        assert_eq!(c.sample_cycles, Some(500));
        let c = TraceConfig::parse("/tmp/t.csv:timeline", None);
        assert_eq!(c.mode, TraceMode::Timeline);
    }

    #[test]
    fn bare_path_defaults_to_events() {
        let c = TraceConfig::parse("/tmp/out.jsonl", None);
        assert_eq!(c.mode, TraceMode::Events);
        assert_eq!(c.path, PathBuf::from("/tmp/out.jsonl"));
        // Unrecognized suffix stays part of the path.
        let c = TraceConfig::parse("trace:v2", None);
        assert_eq!(c.path, PathBuf::from("trace:v2"));
    }

    #[test]
    fn zero_sample_cycles_disables_sampling() {
        let c = TraceConfig::parse("/tmp/t.json", Some("0"));
        assert_eq!(c.sample_cycles, None);
        assert_eq!(c.effective_sample_cycles(), None);
    }

    #[test]
    fn timeline_mode_defaults_a_window() {
        let c = TraceConfig::parse("/tmp/t.csv:timeline", None);
        assert_eq!(c.effective_sample_cycles(), Some(1000));
        let c = TraceConfig::parse("/tmp/t.csv:timeline", Some("250"));
        assert_eq!(c.effective_sample_cycles(), Some(250));
    }

    #[test]
    fn job_paths_are_unique_and_job_zero_is_verbatim() {
        let c = TraceConfig::parse("/tmp/t.json:chrome", None);
        assert_eq!(c.for_job(0).path, PathBuf::from("/tmp/t.json"));
        assert_eq!(c.for_job(3).path, PathBuf::from("/tmp/t.json.3"));
        assert_eq!(c.timeline_path(), PathBuf::from("/tmp/t.json.timeline.csv"));
    }
}
