//! Per-instruction pipeline-lifecycle records and viewer sinks.
//!
//! The tracer (PR 2) answers *what happened when*; the profiler (PR 5)
//! answers *where wall time went*; the CPI stacks (PR 6) answer *which
//! component ate the commit slots*. None of them can show one
//! instruction's life. This module defines the [`PipeRecord`] the
//! simulator's lifecycle recorder fills in (one per dynamic
//! instruction: fetch/dispatch/issue/writeback/commit cycles, squash
//! with cause, dependency edges, SQ-search extra latency, miss level)
//! and renders a batch of records in the two de-facto standard
//! pipeline-viewer formats:
//!
//! * **Konata** (`Kanata\t0004` log) — loads in
//!   <https://github.com/shioyadan/Konata>.
//! * **O3PipeView** — gem5's `O3PipeView:` line format, consumed by
//!   `util/o3-pipeview.py` and compatible viewers.
//!
//! Both writers have matching parsers ([`parse_konata`], [`parse_o3`])
//! so tests can round-trip a real run's output and assert every
//! committed instruction appears exactly once with squashed ones
//! flagged. [`PipeviewConfig`] wires the sink to the
//! `LSQ_PIPEVIEW=<path>[:konata|:o3]` knob.

use std::path::{Path, PathBuf};

use crate::event::SquashCause;
use lsq_isa::{Addr, InstrKind, Pc};

/// Default capacity of the finished-record ring (`LSQ_PIPEVIEW_CAP`).
pub const DEFAULT_PIPEVIEW_CAPACITY: usize = 65536;

/// One dynamic instruction's recorded lifetime. Cycle stamps are
/// `None` until the instruction reaches that stage; a record ends
/// either in `commit` or in `squash` (never both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeRecord {
    /// ROB sequence number (reused after squash: a squashed record and
    /// a later committed one may share a `seq`).
    pub seq: u64,
    /// Static PC.
    pub pc: Pc,
    /// Effective address (memory ops; 0 otherwise).
    pub addr: Addr,
    /// Instruction kind.
    pub kind: InstrKind,
    /// Producer sequence numbers for the two source operands, as
    /// resolved by rename at dispatch.
    pub deps: [Option<u64>; 2],
    /// Cycle the instruction entered the frontend.
    pub fetch: u64,
    /// Cycle it entered the ROB/queues.
    pub dispatch: Option<u64>,
    /// Cycle it issued to execute / memory.
    pub issue: Option<u64>,
    /// Cycle its result was available (completion).
    pub writeback: Option<u64>,
    /// Extra cycles the segmented SQ search added to a load's latency.
    pub sq_extra: u32,
    /// Deepest hierarchy level a load's access reached
    /// (0 = L1/forward, 1 = L2, 2 = memory).
    pub mem_level: u8,
    /// Cycle it retired, if it did.
    pub commit: Option<u64>,
    /// Squash cycle and cause, if it was squashed instead.
    pub squash: Option<(u64, SquashCause)>,
}

impl PipeRecord {
    /// A vacant slot (`seq == u64::MAX`), used by recorders to
    /// preallocate storage.
    pub fn vacant() -> Self {
        PipeRecord {
            seq: u64::MAX,
            pc: Pc(0),
            addr: Addr(0),
            kind: InstrKind::IntAlu,
            deps: [None, None],
            fetch: 0,
            dispatch: None,
            issue: None,
            writeback: None,
            sq_extra: 0,
            mem_level: 0,
            commit: None,
            squash: None,
        }
    }

    /// Whether this slot holds a real record.
    pub fn is_occupied(&self) -> bool {
        self.seq != u64::MAX
    }

    /// The cycle the record ended: commit or squash.
    pub fn end_cycle(&self) -> Option<u64> {
        self.commit.or(self.squash.map(|(c, _)| c))
    }
}

/// Output format for a pipeline-viewer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeviewMode {
    /// Konata `Kanata\t0004` log.
    Konata,
    /// gem5 `O3PipeView:` lines.
    O3,
}

/// A parsed pipeline-viewer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeviewConfig {
    /// Output path.
    pub path: PathBuf,
    /// Output format.
    pub mode: PipeviewMode,
    /// Finished-record ring capacity; oldest records are evicted first.
    pub capacity: usize,
}

impl PipeviewConfig {
    /// Parse an `LSQ_PIPEVIEW`-style value. The format suffix is
    /// optional and defaults to `konata`; an unrecognized suffix is
    /// treated as part of the path.
    pub fn parse(spec: &str) -> PipeviewConfig {
        let (path, mode) = match spec.rsplit_once(':') {
            Some((p, "konata")) => (p, PipeviewMode::Konata),
            Some((p, "o3")) => (p, PipeviewMode::O3),
            _ => (spec, PipeviewMode::Konata),
        };
        PipeviewConfig {
            path: PathBuf::from(path),
            mode,
            capacity: DEFAULT_PIPEVIEW_CAPACITY,
        }
    }

    /// Read `LSQ_PIPEVIEW` / `LSQ_PIPEVIEW_CAP`; `None` when
    /// `LSQ_PIPEVIEW` is unset or empty.
    pub fn from_env() -> Option<PipeviewConfig> {
        let spec = lsq_util::knobs::get("LSQ_PIPEVIEW")?;
        if spec.trim().is_empty() {
            return None;
        }
        let mut cfg = PipeviewConfig::parse(&spec);
        if let Some(cap) =
            lsq_util::knobs::get("LSQ_PIPEVIEW_CAP").and_then(|s| s.trim().parse::<usize>().ok())
        {
            cfg.capacity = cap.max(1);
        }
        Some(cfg)
    }

    /// A copy with the output path uniquified for engine job `n`
    /// (job 0 verbatim, job `n` appends `.n`), mirroring
    /// [`crate::TraceConfig::for_job`].
    pub fn for_job(&self, n: u64) -> PipeviewConfig {
        if n == 0 {
            return self.clone();
        }
        let mut cfg = self.clone();
        let mut os = cfg.path.into_os_string();
        os.push(format!(".{n}"));
        cfg.path = PathBuf::from(os);
        cfg
    }

    /// Render `records` in the configured format and write the file.
    pub fn write(&self, records: &[PipeRecord]) -> std::io::Result<PathBuf> {
        let text = match self.mode {
            PipeviewMode::Konata => to_konata(records),
            PipeviewMode::O3 => to_o3(records),
        };
        write_file(&self.path, &text)?;
        Ok(self.path.clone())
    }
}

fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Stage names used in Konata output, in pipeline order: frontend,
/// dispatch-to-issue wait, execute/memory, completed-to-retire wait.
const KONATA_STAGES: [&str; 4] = ["F", "Ds", "Ex", "Cm"];

/// Renders records as a Konata (`Kanata\t0004`) log. File instruction
/// ids are emission indices (unique even when `seq` is reused after a
/// squash); the `seq` rides in the `I` command's instruction-id field
/// and the label.
pub fn to_konata(records: &[PipeRecord]) -> String {
    // (cycle, text) command list; a stable sort by cycle preserves each
    // record's internal chronology and lets Konata's single forward
    // cycle cursor replay everything.
    let mut cmds: Vec<(u64, String)> = Vec::new();
    let mut retire_id = 0u64;
    for (id, r) in records.iter().enumerate() {
        if !r.is_occupied() {
            continue;
        }
        let end = r.end_cycle();
        cmds.push((r.fetch, format!("I\t{id}\t{}\t0", r.seq)));
        cmds.push((
            r.fetch,
            format!("L\t{id}\t0\t{}: {} pc={:#x}", r.seq, r.kind, r.pc.0),
        ));
        if r.kind.is_mem() {
            cmds.push((
                r.fetch,
                format!(
                    "L\t{id}\t1\taddr={:#x} level={} sq_extra={}",
                    r.addr.0, r.mem_level, r.sq_extra
                ),
            ));
        }
        // Stage boundaries in order; stages starting after the record
        // ended (e.g. a writeback stamped past a squash) are dropped.
        let starts = [
            Some(r.fetch),
            r.dispatch,
            r.issue,
            r.writeback.filter(|&w| end.is_none_or(|e| w <= e)),
        ];
        let mut open: Option<&str> = None;
        for (stage, start) in KONATA_STAGES.iter().zip(starts) {
            let Some(start) = start else { continue };
            if let Some(prev) = open {
                cmds.push((start, format!("E\t{id}\t0\t{prev}")));
            }
            cmds.push((start, format!("S\t{id}\t0\t{stage}")));
            open = Some(stage);
        }
        let end = end.unwrap_or_else(|| {
            // Still in flight when recording stopped: close at the last
            // known stamp so the log stays well-formed.
            starts.iter().flatten().copied().max().unwrap_or(r.fetch)
        });
        if let Some(prev) = open {
            cmds.push((end, format!("E\t{id}\t0\t{prev}")));
        }
        let flush = u64::from(r.squash.is_some() || r.commit.is_none());
        cmds.push((end, format!("R\t{id}\t{retire_id}\t{flush}")));
        retire_id += 1;
    }
    cmds.sort_by_key(|(cycle, _)| *cycle);

    let mut out = String::from("Kanata\t0004\n");
    let mut cursor = cmds.first().map(|(c, _)| *c).unwrap_or(0);
    out.push_str(&format!("C=\t{cursor}\n"));
    for (cycle, cmd) in &cmds {
        if *cycle > cursor {
            out.push_str(&format!("C\t{}\n", cycle - cursor));
            cursor = *cycle;
        }
        out.push_str(cmd);
        out.push('\n');
    }
    out
}

/// Renders records as gem5 `O3PipeView:` lines (one tick per cycle).
/// Squashed instructions get the conventional retire tick 0.
pub fn to_o3(records: &[PipeRecord]) -> String {
    let mut out = String::new();
    for r in records.iter().filter(|r| r.is_occupied()) {
        out.push_str(&format!(
            "O3PipeView:fetch:{}:{:#x}:0:{}:{}\n",
            r.fetch, r.pc.0, r.seq, r.kind
        ));
        out.push_str(&format!("O3PipeView:decode:{}\n", r.fetch));
        let dispatch = r.dispatch.unwrap_or(0);
        out.push_str(&format!("O3PipeView:rename:{dispatch}\n"));
        out.push_str(&format!("O3PipeView:dispatch:{dispatch}\n"));
        out.push_str(&format!("O3PipeView:issue:{}\n", r.issue.unwrap_or(0)));
        out.push_str(&format!(
            "O3PipeView:complete:{}\n",
            r.writeback.unwrap_or(0)
        ));
        let retire = r.commit.unwrap_or(0);
        out.push_str(&format!("O3PipeView:retire:{retire}:store:{retire}\n"));
    }
    out
}

/// One instruction reconstructed from a viewer log by [`parse_konata`]
/// or [`parse_o3`]. Only the fields both formats can express.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedInstr {
    /// File-unique instruction id (emission index).
    pub id: u64,
    /// ROB sequence number.
    pub seq: u64,
    /// Fetch cycle.
    pub fetch: u64,
    /// Retire cycle for committed instructions.
    pub retire: Option<u64>,
    /// Whether the log flags the instruction as squashed/flushed.
    pub squashed: bool,
    /// Left-pane label text (Konata only; empty for O3).
    pub label: String,
}

/// Parses a Konata log produced by [`to_konata`] (or any conforming
/// `Kanata\t0004` file using `I`/`L`/`S`/`E`/`R`/`C`/`C=` commands).
pub fn parse_konata(text: &str) -> Result<Vec<ParsedInstr>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.starts_with("Kanata\t") => {}
        _ => return Err("missing Kanata header".to_string()),
    }
    let mut cycle = 0u64;
    let mut instrs: Vec<ParsedInstr> = Vec::new();
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let field = |f: Option<&str>, what: &str, no: usize| -> Result<u64, String> {
        f.and_then(|s| s.trim().parse::<u64>().ok())
            .ok_or_else(|| format!("line {}: bad {what}", no + 1))
    };
    for (no, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let cmd = parts.next().unwrap_or("");
        match cmd {
            "C=" => cycle = field(parts.next(), "cycle", no)?,
            "C" => cycle += field(parts.next(), "cycle delta", no)?,
            "I" => {
                let id = field(parts.next(), "id", no)?;
                let seq = field(parts.next(), "instruction id", no)?;
                index.insert(id, instrs.len());
                instrs.push(ParsedInstr {
                    id,
                    seq,
                    fetch: cycle,
                    retire: None,
                    squashed: false,
                    label: String::new(),
                });
            }
            "L" => {
                let id = field(parts.next(), "id", no)?;
                let kind = field(parts.next(), "label type", no)?;
                let i = *index
                    .get(&id)
                    .ok_or_else(|| format!("line {}: L before I for id {id}", no + 1))?;
                if kind == 0 {
                    instrs[i].label = parts.collect::<Vec<_>>().join("\t");
                }
            }
            "S" | "E" => {
                let id = field(parts.next(), "id", no)?;
                if !index.contains_key(&id) {
                    return Err(format!("line {}: {cmd} before I for id {id}", no + 1));
                }
            }
            "R" => {
                let id = field(parts.next(), "id", no)?;
                let _retire_id = field(parts.next(), "retire id", no)?;
                let flush = field(parts.next(), "retire type", no)?;
                let i = *index
                    .get(&id)
                    .ok_or_else(|| format!("line {}: R before I for id {id}", no + 1))?;
                if flush == 0 {
                    instrs[i].retire = Some(cycle);
                } else {
                    instrs[i].squashed = true;
                }
            }
            _ => return Err(format!("line {}: unknown command {cmd:?}", no + 1)),
        }
    }
    Ok(instrs)
}

/// Parses gem5 `O3PipeView:` lines produced by [`to_o3`]. Ids are
/// assigned in file order; a retire tick of 0 marks a squash.
pub fn parse_o3(text: &str) -> Result<Vec<ParsedInstr>, String> {
    let mut instrs: Vec<ParsedInstr> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("O3PipeView:")
            .ok_or_else(|| format!("line {}: not an O3PipeView record", no + 1))?;
        let mut parts = rest.split(':');
        let stage = parts.next().unwrap_or("");
        let tick = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| format!("line {}: bad tick", no + 1))?;
        match stage {
            "fetch" => {
                let _pc = parts.next();
                let _upc = parts.next();
                let seq = parts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| format!("line {}: bad seq", no + 1))?;
                instrs.push(ParsedInstr {
                    id: instrs.len() as u64,
                    seq,
                    fetch: tick,
                    retire: None,
                    squashed: false,
                    label: String::new(),
                });
            }
            "retire" => {
                let last = instrs
                    .last_mut()
                    .ok_or_else(|| format!("line {}: retire before fetch", no + 1))?;
                if tick == 0 {
                    last.squashed = true;
                } else {
                    last.retire = Some(tick);
                }
            }
            "decode" | "rename" | "dispatch" | "issue" | "complete" => {}
            other => return Err(format!("line {}: unknown stage {other:?}", no + 1)),
        }
    }
    Ok(instrs)
}

/// Parses either supported format, sniffing the header line.
pub fn parse_pipeview(text: &str) -> Result<Vec<ParsedInstr>, String> {
    if text.starts_with("Kanata\t") {
        parse_konata(text)
    } else {
        parse_o3(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(seq: u64, fetch: u64) -> PipeRecord {
        PipeRecord {
            seq,
            pc: Pc(0x400 + seq * 4),
            addr: Addr(0),
            kind: InstrKind::IntAlu,
            deps: [None, None],
            fetch,
            dispatch: Some(fetch + 1),
            issue: Some(fetch + 3),
            writeback: Some(fetch + 4),
            sq_extra: 0,
            mem_level: 0,
            commit: Some(fetch + 6),
            squash: None,
        }
    }

    fn squashed(seq: u64, fetch: u64, at: u64) -> PipeRecord {
        PipeRecord {
            squash: Some((at, SquashCause::MemOrder)),
            commit: None,
            ..committed(seq, fetch)
        }
    }

    #[test]
    fn parses_mode_suffixes_and_bare_paths() {
        let c = PipeviewConfig::parse("/tmp/p.log:o3");
        assert_eq!(c.path, PathBuf::from("/tmp/p.log"));
        assert_eq!(c.mode, PipeviewMode::O3);
        let c = PipeviewConfig::parse("/tmp/p.log:konata");
        assert_eq!(c.mode, PipeviewMode::Konata);
        let c = PipeviewConfig::parse("/tmp/p.log");
        assert_eq!(c.mode, PipeviewMode::Konata);
        assert_eq!(c.capacity, DEFAULT_PIPEVIEW_CAPACITY);
        // Unrecognized suffix stays part of the path.
        let c = PipeviewConfig::parse("view:v2");
        assert_eq!(c.path, PathBuf::from("view:v2"));
    }

    #[test]
    fn job_paths_are_unique_and_job_zero_is_verbatim() {
        let c = PipeviewConfig::parse("/tmp/p.log:o3");
        assert_eq!(c.for_job(0).path, PathBuf::from("/tmp/p.log"));
        assert_eq!(c.for_job(2).path, PathBuf::from("/tmp/p.log.2"));
    }

    #[test]
    fn konata_round_trip_preserves_coverage_and_flags() {
        let records = vec![
            committed(0, 10),
            committed(1, 10),
            squashed(2, 11, 15),
            committed(2, 17),
        ];
        let text = to_konata(&records);
        assert!(text.starts_with("Kanata\t0004\n"));
        let parsed = parse_konata(&text).expect("well-formed log");
        assert_eq!(parsed.len(), 4);
        let retired: Vec<u64> = parsed
            .iter()
            .filter(|p| p.retire.is_some())
            .map(|p| p.seq)
            .collect();
        assert_eq!(retired, vec![0, 1, 2]);
        let flushed: Vec<&ParsedInstr> = parsed.iter().filter(|p| p.squashed).collect();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].seq, 2);
        assert!(flushed[0].retire.is_none());
        // Fetch cycles survive the cycle-cursor encoding.
        assert_eq!(parsed[0].fetch, 10);
        assert_eq!(parsed[3].fetch, 17);
        assert_eq!(parsed[0].retire, Some(16));
        assert!(parsed[0].label.contains("pc=0x400"));
    }

    #[test]
    fn konata_cycles_are_monotone() {
        let text = to_konata(&[committed(5, 100), committed(6, 90)]);
        // The writer sorts commands, so the single cycle cursor never
        // has to move backwards; parse succeeding proves it.
        let parsed = parse_konata(&text).expect("well-formed log");
        assert_eq!(parsed.len(), 2);
        let by_seq = |s: u64| parsed.iter().find(|p| p.seq == s).expect("present");
        assert_eq!(by_seq(5).fetch, 100);
        assert_eq!(by_seq(6).fetch, 90);
    }

    #[test]
    fn o3_round_trip_preserves_coverage_and_flags() {
        let records = vec![committed(0, 10), squashed(1, 11, 15), committed(1, 17)];
        let text = to_o3(&records);
        let parsed = parse_o3(&text).expect("well-formed log");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].retire, Some(16));
        assert!(parsed[1].squashed);
        assert_eq!(parsed[2].seq, 1);
        assert_eq!(parsed[2].retire, Some(23));
    }

    #[test]
    fn sniffer_dispatches_on_header() {
        let records = vec![committed(0, 1)];
        assert_eq!(
            parse_pipeview(&to_konata(&records)).expect("konata"),
            parse_konata(&to_konata(&records)).expect("konata")
        );
        assert_eq!(
            parse_pipeview(&to_o3(&records)).expect("o3"),
            parse_o3(&to_o3(&records)).expect("o3")
        );
    }

    #[test]
    fn vacant_slots_are_skipped() {
        let records = vec![PipeRecord::vacant(), committed(3, 5)];
        let parsed = parse_konata(&to_konata(&records)).expect("well-formed log");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].seq, 3);
        assert_eq!(to_o3(&[PipeRecord::vacant()]), "");
    }

    #[test]
    fn writers_handle_inflight_tail_records() {
        // A record that never finished (end of run): stays parseable,
        // counted as neither retired nor squashed... the R command is
        // still emitted as a flush so viewers close the lane.
        let mut r = committed(9, 50);
        r.commit = None;
        let parsed = parse_konata(&to_konata(&[r])).expect("well-formed log");
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].retire.is_none());
        assert!(parsed[0].squashed);
    }
}
