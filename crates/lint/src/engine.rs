//! Workspace loading, file classification, and rule orchestration.

use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer::{self, Lexed, TokKind};
use crate::waiver::{self, Directives};
use crate::{rules, Error};

/// What kind of compilation target a file belongs to. Rules scope
/// themselves by role: `no-unwrap-in-lib` only polices [`Role::Lib`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code (`*/src/**`, excluding `src/bin/` and `main.rs`).
    Lib,
    /// Binary code (`*/src/bin/**`, `main.rs`, `build.rs`).
    Bin,
    /// Integration tests (`*/tests/**`).
    Test,
    /// Examples (`*/examples/**`).
    Example,
    /// Benchmarks (`*/benches/**`).
    Bench,
}

/// A half-open token-index range `[start, end)` with the item name it
/// covers, used for hot regions and `#[cfg(test)]` regions.
#[derive(Debug, Clone)]
pub struct Region {
    /// First token index inside the region (the opening brace).
    pub start: usize,
    /// Token index one past the closing brace.
    pub end: usize,
    /// Item name (`fn` or `mod` identifier), for messages.
    pub name: String,
}

/// One lexed, classified source file.
pub struct FileCtx {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Target role (see [`Role`]).
    pub role: Role,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Parsed `lsq-lint:` directives.
    pub directives: Directives,
    /// Token ranges of `#[cfg(test)]` items.
    pub test_regions: Vec<Region>,
    /// Token ranges of `lsq-lint: hot` items.
    pub hot_regions: Vec<Region>,
}

impl FileCtx {
    /// Builds a context from source text (no filesystem access).
    pub fn from_source(rel: &str, role: Role, src: &str) -> FileCtx {
        let lexed = lexer::lex(src);
        let directives = waiver::parse(rel, &lexed.comments, rules::ALL_RULES);
        let test_regions = find_cfg_test_regions(&lexed);
        let mut ctx = FileCtx {
            rel: rel.to_string(),
            role,
            lexed,
            directives,
            test_regions,
            hot_regions: Vec::new(),
        };
        ctx.hot_regions = find_hot_regions(&ctx);
        ctx
    }

    /// Whether token index `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.start <= i && i < r.end)
    }
}

/// Matches braces starting at `open` (which must index a `{`); returns
/// the index one past the matching `}`, or the token count if
/// unbalanced (lexer guarantees strings/comments are opaque, so braces
/// here are structural).
pub fn match_braces(lexed: &Lexed, open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in lexed.toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    lexed.toks.len()
}

/// Finds `#[cfg(test)]`-guarded items: the attribute token pattern,
/// then the braces of the next item.
fn find_cfg_test_regions(lexed: &Lexed) -> Vec<Region> {
    let t = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..t.len() {
        let is_cfg_test = i + 6 < t.len()
            && t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')')
            && t[i + 6].is_punct(']');
        if !is_cfg_test {
            continue;
        }
        // The guarded item's body: first `{` after the attribute. Items
        // without one (`use …;` etc.) guard nothing we police.
        let Some(open) = (i + 7..t.len()).find(|&j| t[j].is_punct('{')) else {
            continue;
        };
        let name = (i + 7..open)
            .rev()
            .find(|&j| t[j].kind == TokKind::Ident)
            .map(|j| t[j].text.clone())
            .unwrap_or_default();
        out.push(Region {
            start: open,
            end: match_braces(lexed, open),
            name,
        });
    }
    out
}

/// Attaches each `lsq-lint: hot` marker to the next `fn` or `mod` item
/// and records its body as a hot region.
fn find_hot_regions(ctx: &FileCtx) -> Vec<Region> {
    let t = &ctx.lexed.toks;
    let mut out = Vec::new();
    for &line in &ctx.directives.hot_lines {
        let item = t
            .iter()
            .position(|tok| tok.line >= line && (tok.is_ident("fn") || tok.is_ident("mod")));
        let Some(item) = item else { continue };
        let name = t
            .get(item + 1)
            .filter(|tok| tok.kind == TokKind::Ident)
            .map(|tok| tok.text.clone())
            .unwrap_or_default();
        let Some(open) = (item..t.len()).find(|&j| t[j].is_punct('{')) else {
            continue;
        };
        out.push(Region {
            start: open,
            end: match_braces(&ctx.lexed, open),
            name,
        });
    }
    out
}

/// A loaded workspace: every lexed `.rs` file plus the two rule inputs
/// that live outside Rust source (the knob registry and the
/// `EXPERIMENTS.md` knob table).
pub struct Workspace {
    /// All source files, in walk order.
    pub files: Vec<FileCtx>,
    /// Registered knob names parsed from the registry module.
    pub registry_knobs: Vec<String>,
    /// Knob names documented in the `EXPERIMENTS.md` knob table, with
    /// their 1-based line numbers.
    pub documented_knobs: Vec<(String, u32)>,
    /// Whether both drift inputs were present (fixture workspaces built
    /// from bare source skip the drift check).
    pub has_drift_inputs: bool,
}

/// Directories never walked.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude"];

impl Workspace {
    /// Loads every `.rs` file under `root` (skipping `target/`,
    /// `vendor/`, and VCS internals) plus the drift-check inputs.
    pub fn load(root: &Path) -> Result<Workspace, Error> {
        let mut paths = Vec::new();
        walk(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let src = std::fs::read_to_string(root.join(&rel))
                .map_err(|e| Error::new(format!("read {rel}: {e}")))?;
            files.push(FileCtx::from_source(&rel, classify(&rel), &src));
        }
        let registry = files.iter().find(|f| f.rel == rules::KNOB_REGISTRY_FILE);
        let has_registry = registry.is_some();
        let registry_knobs = registry.map(rules::registry_knob_names).unwrap_or_default();
        let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        let documented_knobs = experiments
            .as_deref()
            .map(rules::documented_knob_names)
            .unwrap_or_default();
        let has_drift_inputs = has_registry && experiments.is_some();
        Ok(Workspace {
            files,
            registry_knobs,
            documented_knobs,
            has_drift_inputs,
        })
    }

    /// A single-file workspace over in-memory source, for tests and the
    /// self-check. Drift inputs are absent, so `knob-registry` checks
    /// only the bypass/unregistered-literal patterns.
    pub fn from_source(rel: &str, role: Role, src: &str) -> Workspace {
        Workspace {
            files: vec![FileCtx::from_source(rel, role, src)],
            registry_knobs: Vec::new(),
            documented_knobs: Vec::new(),
            has_drift_inputs: false,
        }
    }

    /// Runs every rule, applies waivers, and returns the surviving
    /// diagnostics sorted by path and line.
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut raw = Vec::new();
        for f in &self.files {
            rules::run_file_rules(f, self, &mut raw);
        }
        rules::run_workspace_rules(self, &mut raw);
        let mut out: Vec<Diagnostic> = raw.into_iter().filter(|d| !self.is_waived(d)).collect();
        // Malformed directives are never waivable.
        for f in &self.files {
            out.extend(f.directives.errors.iter().cloned());
        }
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }

    fn is_waived(&self, d: &Diagnostic) -> bool {
        self.files.iter().any(|f| {
            f.rel == d.path
                && f.directives
                    .waivers
                    .iter()
                    .any(|w| w.covers(d.rule, d.line))
        })
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), Error> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Error::new(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::new(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_string(rel));
            }
        }
    }
    Ok(())
}

fn rel_string(rel: &Path) -> String {
    let mut s = String::new();
    for part in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&part.as_os_str().to_string_lossy());
    }
    s
}

/// Classifies a workspace-relative path into a [`Role`].
pub fn classify(rel: &str) -> Role {
    let has = |needle: &str| rel.contains(needle) || rel.starts_with(&needle[1..]);
    if has("/tests/") {
        Role::Test
    } else if has("/examples/") {
        Role::Example
    } else if has("/benches/") {
        Role::Bench
    } else if rel.contains("/src/bin/") || rel.ends_with("/main.rs") || rel.ends_with("build.rs") {
        Role::Bin
    } else {
        Role::Lib
    }
}
