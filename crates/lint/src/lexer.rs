//! A small comment/string/lifetime-aware Rust lexer.
//!
//! The rules need token streams, not character soup: `Vec::new` inside
//! a string literal is data, inside a doc example is prose, and inside
//! a hot function is a violation. The lexer therefore separates real
//! code tokens from comments and keeps string/char contents opaque, so
//! no rule ever greps raw source text.
//!
//! Handled Rust surface: line (`//`) and nested block (`/* /* */ */`)
//! comments with doc-comment classification, plain/byte/C strings with
//! escapes, raw strings with arbitrary hash fences (`r##"…"##`), raw
//! identifiers (`r#type`), char literals vs. lifetimes (`'a'` vs `'a`),
//! numbers with type suffixes, identifiers, and single-character
//! punctuation. That is enough to tokenize this workspace exactly; the
//! lexer never errors, it degrades to punctuation tokens on anything
//! unexpected.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `r#type` → `type`).
    Ident,
    /// Numeric literal, including suffixes (`0x1f`, `1_000u64`, `1.5`).
    Num,
    /// String literal of any flavour; `text` is the unquoted content.
    Str,
    /// Char or byte-char literal; `text` is the raw inner content.
    Char,
    /// Lifetime (`'a`, `'static`); `text` excludes the quote.
    Lifetime,
    /// One punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == ch as u8
    }
}

/// One comment, with doc-comments flagged so directive parsing can
/// ignore them (a doc example showing waiver syntax is not a waiver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (differs for block comments).
    pub end_line: u32,
    /// Comment content without the `//` / `/* */` markers.
    pub text: String,
    /// `///`, `//!`, `/**`, or `/*!`.
    pub doc: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails; see module docs for coverage.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, 0, false),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/' | '!'))
            // `////…` separator lines are plain comments, not docs.
            && !(self.peek(0) == Some('/') && self.peek(1) == Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*' | '!'))
            // `/**/` is empty, `/***…` is a separator, neither is doc.
            && self.peek(1) != Some('/')
            && !(self.peek(0) == Some('*') && self.peek(1) == Some('*'));
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            doc,
        });
    }

    /// Plain/byte/C string starting at the opening quote; `raw`
    /// disables escape processing and `hashes` is the raw fence width.
    fn string(&mut self, line: u32, hashes: usize, raw: bool) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' && !raw {
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push('\\');
                    text.push(esc);
                }
            } else if c == '"' {
                // A raw string only closes on `"` followed by its fence.
                let closes = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                if closes {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
                self.bump();
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape, then to the quote.
                let mut text = String::new();
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push('\\');
                    text.push(esc);
                }
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // 'x' — one-character char literal.
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, c.to_string(), line);
                } else {
                    // 'ident — a lifetime.
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, c.to_string(), line);
            }
            None => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes and raw identifiers.
        match (text.as_str(), self.peek(0)) {
            ("b" | "c", Some('"')) => self.string(line, 0, false),
            ("r" | "br" | "cr", Some('"')) => self.string(line, 0, true),
            ("r" | "br" | "cr", Some('#')) => {
                // Count the fence; `r#ident` (one hash, then ident char)
                // is a raw identifier instead.
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.string(line, hashes, true);
                } else if text == "r" && hashes == 1 {
                    self.bump(); // the '#'
                    self.ident_or_prefixed(line); // lex the ident itself
                } else {
                    self.push(TokKind::Ident, text, line);
                }
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }
}
