//! `lsq-lint:` comment directives: waivers and hot-path markers.
//!
//! Two directives exist, both in plain (non-doc) comments:
//!
//! * `lsq-lint: hot` — marks the next `fn` or `mod` item as a hot
//!   path; the `hot-path-alloc` rule denies allocation inside it.
//! * `lsq-lint: allow(<rule>, reason = "<why>")` — waives `<rule>` on
//!   the directive's line and the line directly below it. The reason is
//!   mandatory and non-empty: a waiver without one is itself a
//!   violation (`waiver-syntax`), as is a waiver naming an unknown
//!   rule. This keeps every exception self-justifying in place.
//!
//! Doc comments are deliberately ignored so documentation can quote the
//! syntax without creating live directives.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::Comment;

/// A parsed, well-formed waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line the directive ends on; it covers this line and the next.
    pub line: u32,
}

impl Waiver {
    /// Whether this waiver covers a diagnostic of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// All directives extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Directives {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Lines carrying a `hot` marker.
    pub hot_lines: Vec<u32>,
    /// Malformed directives, reported as `waiver-syntax` errors.
    pub errors: Vec<Diagnostic>,
}

/// Parses every `lsq-lint:` directive in `comments`. `path` and
/// `known_rules` feed the error diagnostics.
pub fn parse(path: &str, comments: &[Comment], known_rules: &[&'static str]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(body) = c.text.trim().strip_prefix("lsq-lint:") else {
            continue;
        };
        let body = body.trim();
        if body == "hot" {
            out.hot_lines.push(c.end_line);
        } else if let Some(args) = body
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        {
            parse_allow(path, args, c.end_line, known_rules, &mut out);
        } else {
            out.errors.push(syntax_error(
                path,
                c.end_line,
                format!(
                    "unrecognized lsq-lint directive `{body}`; expected `hot` or \
                     `allow(<rule>, reason = \"…\")`"
                ),
            ));
        }
    }
    out
}

fn parse_allow(
    path: &str,
    args: &str,
    line: u32,
    known_rules: &[&'static str],
    out: &mut Directives,
) {
    let (rule, rest) = match args.split_once(',') {
        Some((rule, rest)) => (rule.trim(), Some(rest.trim())),
        None => (args.trim(), None),
    };
    if !known_rules.contains(&rule) {
        out.errors.push(syntax_error(
            path,
            line,
            format!("waiver names unknown rule `{rule}`"),
        ));
        return;
    }
    let reason = rest
        .and_then(|r| r.strip_prefix("reason"))
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim);
    match reason {
        Some(reason) if !reason.is_empty() => out.waivers.push(Waiver {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line,
        }),
        _ => out.errors.push(syntax_error(
            path,
            line,
            format!(
                "waiver for `{rule}` has no reason; write \
                 `lsq-lint: allow({rule}, reason = \"…\")` with a non-empty reason"
            ),
        )),
    }
}

fn syntax_error(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule: crate::rules::WAIVER_SYNTAX,
        path: path.to_string(),
        line,
        severity: Severity::Error,
        message,
    }
}
