//! The rule catalog.
//!
//! | id | invariant |
//! |----|-----------|
//! | `hot-path-alloc` | no allocation constructs inside `lsq-lint: hot` items |
//! | `knob-registry` | `LSQ_*` env reads go through `lsq_util::knobs`; registry ↔ `EXPERIMENTS.md` knob table stay in sync |
//! | `zero-cost-nop` | `impl … for Nop*` methods are `#[inline(always)]` with trivial bodies |
//! | `metric-naming` | telemetry metric names are `lsq_`-prefixed snake_case, label keys snake_case |
//! | `no-unwrap-in-lib` | no `unwrap()` / `expect()` / `panic!` in library code outside tests |
//! | `relaxed-ordering-audit` | every `Ordering::Relaxed` in the engine and telemetry carries a waiver-style justification |
//! | `waiver-syntax` | every waiver names a known rule and carries a non-empty reason |
//!
//! Each rule reports [`Severity::Error`] diagnostics; waivers
//! (`lsq-lint: allow(<rule>, reason = "…")`) suppress any rule except
//! `waiver-syntax` itself.

use crate::diag::{Diagnostic, Severity};
use crate::engine::{match_braces, FileCtx, Role, Workspace};
use crate::lexer::{Tok, TokKind};

/// Rule id: allocation constructs in hot paths.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule id: env-knob reads outside the registry, or registry/doc drift.
pub const KNOB_REGISTRY: &str = "knob-registry";
/// Rule id: non-trivial or non-inlined `Nop*` impl methods.
pub const ZERO_COST_NOP: &str = "zero-cost-nop";
/// Rule id: malformed metric or label names.
pub const METRIC_NAMING: &str = "metric-naming";
/// Rule id: `unwrap()` / `expect()` / `panic!` in library code.
pub const NO_UNWRAP_IN_LIB: &str = "no-unwrap-in-lib";
/// Rule id: unjustified `Ordering::Relaxed`.
pub const RELAXED_ORDERING_AUDIT: &str = "relaxed-ordering-audit";
/// Rule id: malformed `lsq-lint:` directives.
pub const WAIVER_SYNTAX: &str = "waiver-syntax";

/// Every rule id, for waiver validation and documentation.
pub const ALL_RULES: &[&str] = &[
    HOT_PATH_ALLOC,
    KNOB_REGISTRY,
    ZERO_COST_NOP,
    METRIC_NAMING,
    NO_UNWRAP_IN_LIB,
    RELAXED_ORDERING_AUDIT,
    WAIVER_SYNTAX,
];

/// The one module allowed to read `LSQ_*` environment variables.
pub const KNOB_REGISTRY_FILE: &str = "crates/util/src/knobs.rs";

/// Files/trees subject to `relaxed-ordering-audit`.
const RELAXED_AUDIT_SCOPE: &[&str] = &["crates/experiments/src/engine.rs", "crates/telemetry/"];

fn error(rule: &'static str, f: &FileCtx, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: f.rel.clone(),
        line,
        severity: Severity::Error,
        message,
    }
}

/// Runs every per-file rule over `f`.
pub fn run_file_rules(f: &FileCtx, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    hot_path_alloc(f, out);
    knob_registry_file(f, ws, out);
    zero_cost_nop(f, out);
    metric_naming(f, out);
    no_unwrap_in_lib(f, out);
    relaxed_ordering_audit(f, out);
}

/// Runs rules that need the whole workspace (knob drift).
pub fn run_workspace_rules(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    knob_registry_drift(ws, out);
}

// ---------------------------------------------------------------------
// R1: hot-path-alloc
// ---------------------------------------------------------------------

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "String", "Box", "Rc", "Arc",
];
/// Allocating associated functions on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
/// Allocating (or container-cloning) method calls.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone"];

fn hot_path_alloc(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = &f.lexed.toks;
    for region in &f.hot_regions {
        for i in region.start..region.end.min(t.len()) {
            let construct = alloc_construct(t, i);
            if let Some(construct) = construct {
                out.push(error(
                    HOT_PATH_ALLOC,
                    f,
                    t[i].line,
                    format!(
                        "`{construct}` allocates inside hot path `{}`; reuse a scratch \
                         buffer or hoist the allocation out of the marked region",
                        region.name
                    ),
                ));
            }
        }
    }
}

/// If an allocation construct begins at token `i`, names it.
fn alloc_construct(t: &[Tok], i: usize) -> Option<String> {
    let at = |j: usize| t.get(j);
    let tok = at(i)?;
    // `vec![…]`, `format!(…)`.
    if (tok.is_ident("vec") || tok.is_ident("format")) && at(i + 1)?.is_punct('!') {
        return Some(format!("{}!", tok.text));
    }
    // `Vec::new`, `Box::new`, `String::from`, `…::with_capacity`.
    if tok.kind == TokKind::Ident
        && ALLOC_TYPES.contains(&tok.text.as_str())
        && at(i + 1)?.is_punct(':')
        && at(i + 2)?.is_punct(':')
        && at(i + 3)
            .is_some_and(|m| m.kind == TokKind::Ident && ALLOC_CTORS.contains(&m.text.as_str()))
    {
        return Some(format!("{}::{}", tok.text, t[i + 3].text));
    }
    // `.collect(`, `.clone(`, `.to_vec(`, … (also `.collect::<…>`).
    if tok.is_punct('.')
        && at(i + 1)
            .is_some_and(|m| m.kind == TokKind::Ident && ALLOC_METHODS.contains(&m.text.as_str()))
        && at(i + 2).is_some_and(|p| p.is_punct('(') || p.is_punct(':'))
    {
        return Some(format!(".{}()", t[i + 1].text));
    }
    None
}

// ---------------------------------------------------------------------
// R2: knob-registry
// ---------------------------------------------------------------------

/// Whether `name` has the shape of an `LSQ_*` environment knob.
fn is_knob_shaped(name: &str) -> bool {
    name.strip_prefix("LSQ_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Knob names registered in the knob-registry module: its `LSQ_*`
/// string literals outside `#[cfg(test)]` (tests may name fake knobs).
pub fn registry_knob_names(f: &FileCtx) -> Vec<String> {
    let mut names: Vec<String> = f
        .lexed
        .toks
        .iter()
        .enumerate()
        .filter(|(i, t)| t.kind == TokKind::Str && is_knob_shaped(&t.text) && !f.in_test_region(*i))
        .map(|(_, t)| t.text.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Knob names documented in the `EXPERIMENTS.md` knob table: markdown
/// table rows whose first cell is a backticked `LSQ_*` name.
pub fn documented_knob_names(md: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in md.lines().enumerate() {
        let Some(row) = line.trim().strip_prefix('|') else {
            continue;
        };
        let Some(cell) = row.split('|').next() else {
            continue;
        };
        let Some(name) = cell
            .trim()
            .strip_prefix('`')
            .and_then(|c| c.strip_suffix('`'))
        else {
            continue;
        };
        if is_knob_shaped(name) {
            out.push((name.to_string(), i as u32 + 1));
        }
    }
    out
}

fn knob_registry_file(f: &FileCtx, ws: &Workspace, out: &mut Vec<Diagnostic>) {
    if f.rel == KNOB_REGISTRY_FILE {
        return;
    }
    let t = &f.lexed.toks;
    for i in 0..t.len() {
        // `var("LSQ_…")` / `var_os("LSQ_…")` — an env read that
        // bypasses the registry accessors.
        if (t[i].is_ident("var") || t[i].is_ident("var_os"))
            && t.get(i + 1).is_some_and(|p| p.is_punct('('))
            && t.get(i + 2)
                .is_some_and(|s| s.kind == TokKind::Str && is_knob_shaped(&s.text))
        {
            out.push(error(
                KNOB_REGISTRY,
                f,
                t[i].line,
                format!(
                    "env read of `{}` bypasses the knob registry; use \
                     `lsq_util::knobs::{{get, get_os, flag}}` instead",
                    t[i + 2].text
                ),
            ));
        }
        // Any knob-shaped literal in lib/bin code must be registered,
        // so typos and undeclared knobs cannot hide.
        if matches!(f.role, Role::Lib | Role::Bin)
            && ws.has_drift_inputs
            && t[i].kind == TokKind::Str
            && is_knob_shaped(&t[i].text)
            && !ws.registry_knobs.contains(&t[i].text)
        {
            out.push(error(
                KNOB_REGISTRY,
                f,
                t[i].line,
                format!(
                    "`{}` is not in lsq_util::knobs::REGISTRY; register it there \
                     and add it to the EXPERIMENTS.md knob table",
                    t[i].text
                ),
            ));
        }
    }
}

fn knob_registry_drift(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    if !ws.has_drift_inputs {
        return;
    }
    for knob in &ws.registry_knobs {
        if !ws.documented_knobs.iter().any(|(n, _)| n == knob) {
            out.push(Diagnostic {
                rule: KNOB_REGISTRY,
                path: KNOB_REGISTRY_FILE.to_string(),
                line: 0,
                severity: Severity::Error,
                message: format!(
                    "knob `{knob}` is registered but missing from the \
                     EXPERIMENTS.md knob table"
                ),
            });
        }
    }
    for (knob, line) in &ws.documented_knobs {
        if !ws.registry_knobs.contains(knob) {
            out.push(Diagnostic {
                rule: KNOB_REGISTRY,
                path: "EXPERIMENTS.md".to_string(),
                line: *line,
                severity: Severity::Error,
                message: format!(
                    "knob `{knob}` is documented but not registered in \
                     lsq_util::knobs::REGISTRY"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R3: zero-cost-nop
// ---------------------------------------------------------------------

fn zero_cost_nop(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = &f.lexed.toks;
    let mut i = 0;
    while i < t.len() {
        if !t[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let Some(open) = (i..t.len()).find(|&j| t[j].is_punct('{')) else {
            break;
        };
        let header = &t[i..open];
        let for_pos = header.iter().position(|tok| tok.is_ident("for"));
        let is_nop_impl = for_pos.is_some_and(|p| {
            header[p..]
                .iter()
                .any(|tok| tok.kind == TokKind::Ident && tok.text.starts_with("Nop"))
        });
        let end = match_braces(&f.lexed, open);
        if is_nop_impl {
            check_nop_impl(f, open, end, out);
        }
        i = open + 1; // descend: nested impls don't exist, but stay safe
    }
}

fn check_nop_impl(f: &FileCtx, open: usize, end: usize, out: &mut Vec<Diagnostic>) {
    let t = &f.lexed.toks;
    let mut methods = 0;
    let mut inline_always = false;
    let mut j = open + 1;
    while j < end.saturating_sub(1) {
        if t[j].is_punct('#') && t.get(j + 1).is_some_and(|b| b.is_punct('[')) {
            // Scan the attribute for `inline ( always )`.
            let attr_end = (j + 1..end).find(|&k| t[k].is_punct(']')).unwrap_or(end);
            inline_always |= (j + 2..attr_end).any(|k| {
                t[k].is_ident("inline")
                    && t.get(k + 1).is_some_and(|p| p.is_punct('('))
                    && t.get(k + 2).is_some_and(|a| a.is_ident("always"))
            });
            j = attr_end + 1;
            continue;
        }
        if t[j].is_ident("fn") {
            methods += 1;
            let name = t.get(j + 1).map(|n| n.text.clone()).unwrap_or_default();
            let Some(body_open) = (j..end).find(|&k| t[k].is_punct('{')) else {
                break;
            };
            let body_end = match_braces(&f.lexed, body_open);
            if !inline_always {
                out.push(error(
                    ZERO_COST_NOP,
                    f,
                    t[j].line,
                    format!(
                        "Nop impl method `{name}` is missing #[inline(always)]; \
                         zero-cost no-ops must always inline away"
                    ),
                ));
            }
            if !trivial_body(&t[body_open + 1..body_end.saturating_sub(1)]) {
                out.push(error(
                    ZERO_COST_NOP,
                    f,
                    t[j].line,
                    format!(
                        "Nop impl method `{name}` has a non-trivial body; no-op \
                         impls may only return a constant or nothing"
                    ),
                ));
            }
            inline_always = false;
            j = body_end;
            continue;
        }
        j += 1;
    }
    if methods == 0 {
        out.push(error(
            ZERO_COST_NOP,
            f,
            t[open].line,
            "Nop impl has no methods, so its zero-cost contract rests on trait \
             defaults; spell out each method with #[inline(always)] and a \
             trivial body so the invariant is locally checkable"
                .to_string(),
        ));
    }
}

/// A trivial no-op body: empty, or a single constant token.
fn trivial_body(body: &[Tok]) -> bool {
    match body {
        [] => true,
        [t] => {
            t.kind == TokKind::Num
                || t.is_ident("false")
                || t.is_ident("true")
                || t.is_ident("None")
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// R4: metric-naming
// ---------------------------------------------------------------------

/// Registry methods whose first argument is a metric name.
const METRIC_FNS: &[&str] = &[
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "float_gauge",
    "float_gauge_with",
    "histogram",
    "histogram_with",
];

fn is_snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.starts_with(|c: char| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !s.contains("__")
        && !s.ends_with('_')
}

fn metric_naming(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let t = &f.lexed.toks;
    for i in 0..t.len() {
        let is_reg_call = t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|m| m.kind == TokKind::Ident && METRIC_FNS.contains(&m.text.as_str()))
            && t.get(i + 2).is_some_and(|p| p.is_punct('('))
            && t.get(i + 3).is_some_and(|s| s.kind == TokKind::Str);
        if !is_reg_call {
            continue;
        }
        let name = &t[i + 3].text;
        let snake = name.strip_prefix("lsq_").is_some_and(is_snake_case);
        if !snake {
            out.push(error(
                METRIC_NAMING,
                f,
                t[i + 3].line,
                format!(
                    "metric name `{name}` must be lsq_-prefixed snake_case \
                     (`lsq_<subsystem>_<what>[_total]`)"
                ),
            ));
        }
        if t[i + 1].text.ends_with("_with") {
            check_label_keys(f, i + 2, out);
        }
    }
}

/// Inside the call starting at `open` (a `(`), every `( "key" ,` tuple
/// opener is a label key; keys must be snake_case.
fn check_label_keys(f: &FileCtx, open: usize, out: &mut Vec<Diagnostic>) {
    let t = &f.lexed.toks;
    let mut depth = 0usize;
    for j in open..t.len() {
        if t[j].is_punct('(') {
            depth += 1;
            if depth >= 2
                && t.get(j + 1).is_some_and(|s| s.kind == TokKind::Str)
                && t.get(j + 2).is_some_and(|c| c.is_punct(','))
                && !is_snake_case(&t[j + 1].text)
            {
                out.push(error(
                    METRIC_NAMING,
                    f,
                    t[j + 1].line,
                    format!("label key `{}` must be snake_case", t[j + 1].text),
                ));
            }
        } else if t[j].is_punct(')') {
            if depth <= 1 {
                break;
            }
            depth -= 1;
        }
    }
}

// ---------------------------------------------------------------------
// R5: no-unwrap-in-lib
// ---------------------------------------------------------------------

fn no_unwrap_in_lib(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if f.role != Role::Lib {
        return;
    }
    let t = &f.lexed.toks;
    for i in 0..t.len() {
        if f.in_test_region(i) {
            continue;
        }
        // `.unwrap()` / `.expect(…)`.
        if t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            && t.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            out.push(error(
                NO_UNWRAP_IN_LIB,
                f,
                t[i + 1].line,
                format!(
                    "`.{}()` in library code; return an error, use a safe \
                     fallback (debug_assert! + default), or waive with a reason",
                    t[i + 1].text
                ),
            ));
        }
        // `panic!(…)`.
        if t[i].is_ident("panic") && t.get(i + 1).is_some_and(|p| p.is_punct('!')) {
            out.push(error(
                NO_UNWRAP_IN_LIB,
                f,
                t[i].line,
                "`panic!` in library code; return an error or waive with a reason".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R6: relaxed-ordering-audit
// ---------------------------------------------------------------------

fn relaxed_ordering_audit(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let in_scope = RELAXED_AUDIT_SCOPE
        .iter()
        .any(|s| f.rel == *s || f.rel.starts_with(s));
    if !in_scope {
        return;
    }
    let t = &f.lexed.toks;
    for i in 0..t.len() {
        if f.in_test_region(i) {
            continue;
        }
        if t[i].is_ident("Ordering")
            && t.get(i + 1).is_some_and(|p| p.is_punct(':'))
            && t.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && t.get(i + 3).is_some_and(|m| m.is_ident("Relaxed"))
        {
            out.push(error(
                RELAXED_ORDERING_AUDIT,
                f,
                t[i].line,
                "`Ordering::Relaxed` requires a justification: add \
                 `// lsq-lint: allow(relaxed-ordering-audit, reason = \"…\")` \
                 explaining why no synchronization edge is needed"
                    .to_string(),
            ));
        }
    }
}
