//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// How severe a finding is. Every current rule is [`Severity::Error`];
/// the level exists so future advisory rules can ride the same engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported but does not fail the run.
    Warning,
    /// Violation: fails the run (exit 1, test failure).
    Error,
}

impl Severity {
    /// Stable lowercase name used in output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`hot-path-alloc`, `knob-registry`, …).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line; 0 when the finding concerns a whole file.
    pub line: u32,
    /// Severity; errors make the lint run fail.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.name(),
            self.rule,
            self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let mut buf = String::new();
                fmt::write(&mut buf, format_args!("{:04x}", c as u32)).ok();
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
}

/// Renders diagnostics as a JSON array (machine-readable `--json` mode).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        json_escape(d.rule, &mut out);
        out.push_str("\",\"path\":\"");
        json_escape(&d.path, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"severity\":\"");
        out.push_str(d.severity.name());
        out.push_str("\",\"message\":\"");
        json_escape(&d.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str("\n]\n");
    out
}
