//! The `lint` binary: walk the workspace, print diagnostics, exit 0/1.
//!
//! ```text
//! lint [--root <dir>] [--json] [--self-check]
//! ```
//!
//! * `--root <dir>` — workspace root to lint; defaults to the nearest
//!   ancestor of the current directory containing a `[workspace]`
//!   `Cargo.toml`.
//! * `--json` — emit diagnostics as a JSON array on stdout.
//! * `--self-check` — instead of linting, prove every rule fires on a
//!   seeded violation and stays quiet on its compliant twin.
//!
//! Exit codes: 0 clean, 1 violations (or failed self-check), 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut self_check = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--self-check" => self_check = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: lint [--root <dir>] [--json] [--self-check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if self_check {
        let failures = lsq_lint::self_check();
        if failures.is_empty() {
            println!(
                "lint self-check: all {} rules fire and stay quiet as expected",
                lsq_lint::rules::ALL_RULES.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("lint self-check FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let diags = match lsq_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", lsq_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("lint: clean ({} rules)", lsq_lint::rules::ALL_RULES.len());
        } else {
            println!("lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The nearest ancestor directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
