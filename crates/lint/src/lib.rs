#![warn(missing_docs)]

//! `lsq-lint`: the workspace architectural linter.
//!
//! The simulator's performance trajectory rests on invariants the
//! compiler cannot see: hot search loops must stay allocation-free, the
//! `Nop{Tracer,Profiler,Accountant}` generics must stay truly
//! zero-cost, every `LSQ_*` environment knob must be registered and
//! documented, metric names must stay greppable, and every relaxed
//! atomic must say why it is safe. This crate checks those rules
//! mechanically on every `cargo test` (via the root `lint_clean` test)
//! and in CI, so refactors can be aggressive without silently
//! regressing the properties the benchmarks depend on.
//!
//! # Running
//!
//! ```text
//! cargo run -p lsq-lint            # lint the workspace, exit 0/1
//! cargo run -p lsq-lint -- --json  # machine-readable diagnostics
//! cargo run -p lsq-lint -- --self-check  # prove every rule fires
//! ```
//!
//! # Waivers
//!
//! A violation is silenced on its own line or the line above it with
//!
//! ```text
//! // lsq-lint: allow(<rule>, reason = "<why this is safe>")
//! ```
//!
//! The reason is mandatory; a reasonless waiver is itself a violation.
//!
//! # Adding a rule
//!
//! Add an id constant and a check function in [`rules`], register the
//! id in [`rules::ALL_RULES`], call the check from
//! [`rules::run_file_rules`] (or `run_workspace_rules` for
//! whole-workspace invariants), add firing/clean/waived fixtures to
//! `tests/rules.rs` and a self-check fixture below, and document the
//! rule in `EXPERIMENTS.md`.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod waiver;

pub use diag::{to_json, Diagnostic, Severity};
pub use engine::{Role, Workspace};

/// An I/O or usage error from workspace loading.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: String) -> Error {
        Error { message }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Lints every source file under `root` and returns the surviving
/// diagnostics (waivers already applied), sorted by path and line.
pub fn lint_workspace(root: &std::path::Path) -> Result<Vec<Diagnostic>, Error> {
    Ok(Workspace::load(root)?.lint())
}

/// Lints a single in-memory source file (no drift checks). Used by the
/// fixture tests and [`self_check`].
pub fn lint_source(rel: &str, role: Role, src: &str) -> Vec<Diagnostic> {
    Workspace::from_source(rel, role, src).lint()
}

/// One self-check fixture: a rule, a source that must fire it, and a
/// source that must stay clean.
struct Fixture {
    rule: &'static str,
    rel: &'static str,
    role: Role,
    firing: &'static str,
    clean: &'static str,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        rule: rules::HOT_PATH_ALLOC,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "// lsq-lint: hot\nfn search(&mut self) { let v = self.xs.to_vec(); }\n",
        clean: "// lsq-lint: hot\nfn search(&mut self) { self.buf.clear(); self.buf.push(1); }\n",
    },
    Fixture {
        rule: rules::KNOB_REGISTRY,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "fn f() { let _ = std::env::var(\"LSQ_JOBS\"); }\n",
        clean: "fn f() { let _ = lsq_util::knobs::get(\"LSQ_JOBS\"); }\n",
    },
    Fixture {
        rule: rules::ZERO_COST_NOP,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "struct NopSink;\nimpl Sink for NopSink { fn emit(&mut self, e: E) { \
                 self.log(e) } }\n",
        clean: "struct NopSink;\nimpl Sink for NopSink {\n    #[inline(always)]\n    \
                fn emit(&mut self, _e: E) {}\n    #[inline(always)]\n    \
                fn enabled(&self) -> bool { false }\n}\n",
    },
    Fixture {
        rule: rules::METRIC_NAMING,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "fn f(m: &M) { m.counter(\"jobsDone\", \"help\"); }\n",
        clean: "fn f(m: &M) { m.counter(\"lsq_jobs_done_total\", \"help\"); }\n",
    },
    Fixture {
        rule: rules::NO_UNWRAP_IN_LIB,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        clean: "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    },
    Fixture {
        rule: rules::RELAXED_ORDERING_AUDIT,
        rel: "crates/telemetry/src/metrics.rs",
        role: Role::Lib,
        firing: "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        clean: "fn f(c: &AtomicU64) -> u64 {\n    // lsq-lint: allow(relaxed-ordering-audit, \
                reason = \"monotonic counter, no ordering needed\")\n    \
                c.load(Ordering::Relaxed)\n}\n",
    },
    Fixture {
        rule: rules::WAIVER_SYNTAX,
        rel: "crates/x/src/lib.rs",
        role: Role::Lib,
        firing: "// lsq-lint: allow(no-unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { \
                 x.unwrap_or(0) }\n",
        clean: "// lsq-lint: allow(no-unwrap-in-lib, reason = \"documented invariant\")\n\
                fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    },
];

/// Proves every rule both fires on a seeded violation and stays quiet
/// on the compliant twin. Returns a list of failures (empty = pass).
pub fn self_check() -> Vec<String> {
    let mut failures = Vec::new();
    for fx in FIXTURES {
        let firing = lint_source(fx.rel, fx.role, fx.firing);
        if !firing.iter().any(|d| d.rule == fx.rule) {
            failures.push(format!(
                "rule {} did not fire on its seeded violation (got: {:?})",
                fx.rule,
                firing.iter().map(|d| d.rule).collect::<Vec<_>>()
            ));
        }
        let clean = lint_source(fx.rel, fx.role, fx.clean);
        if clean.iter().any(|d| d.rule == fx.rule) {
            failures.push(format!("rule {} fired on its compliant fixture", fx.rule));
        }
    }
    failures
}
