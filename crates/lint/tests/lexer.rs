//! Lexer torture tests: the tricky corners of Rust surface syntax that
//! a regex-over-source approach gets wrong — raw strings, nested block
//! comments, comment markers inside string literals, chars vs.
//! lifetimes — must all tokenize correctly, because every rule trusts
//! the token stream.

use lsq_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .toks
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

fn strings(src: &str) -> Vec<String> {
    lex(src)
        .toks
        .into_iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_strings_with_hash_fences_are_opaque() {
    // The inner `"#` and `Vec::new` must not terminate the literal or
    // leak tokens.
    let src = r####"let s = r##"quote " and "# and Vec::new()"##; done();"####;
    assert_eq!(strings(src), vec![r##"quote " and "# and Vec::new()"##]);
    assert_eq!(idents(src), vec!["let", "s", "done"]);
}

#[test]
fn zero_hash_raw_strings_do_not_process_escapes() {
    // In `r"…"` a backslash is a literal backslash; `\"` would end the
    // string early if escapes were (wrongly) honored.
    let lexed = lex(r#"let s = r"a\"; let t = 1;"#);
    let strs: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r"a\");
    assert!(lexed.toks.iter().any(|t| t.is_ident("t")));
}

#[test]
fn byte_and_c_string_prefixes() {
    assert_eq!(
        strings(r#"let a = b"bytes"; let b = c"cstr";"#),
        vec!["bytes", "cstr"]
    );
    assert_eq!(
        strings(r###"let a = br#"raw "bytes""#;"###),
        vec![r#"raw "bytes""#]
    );
}

#[test]
fn escaped_quotes_stay_inside_the_string() {
    assert_eq!(strings(r#"f("a\"b", "c\\");"#), vec![r#"a\"b"#, r"c\\"]);
}

#[test]
fn line_comment_markers_inside_strings_are_data() {
    let lexed = lex(r#"let url = "http://example.com"; after();"#);
    assert!(lexed.comments.is_empty(), "no comment should be recorded");
    assert!(lexed.toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn block_comment_markers_inside_strings_are_data() {
    let lexed = lex(r#"let s = "/* not a comment */"; after();"#);
    assert!(lexed.comments.is_empty());
    assert!(lexed.toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner */ still outer */ fn live() {}";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("still outer"));
    assert_eq!(idents(src), vec!["fn", "live"]);
}

#[test]
fn block_comments_track_line_numbers() {
    let src = "/* one\ntwo\nthree */\nfn after() {}\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments[0].line, 1);
    assert_eq!(lexed.comments[0].end_line, 3);
    let fn_tok = lexed.toks.iter().find(|t| t.is_ident("fn")).unwrap();
    assert_eq!(fn_tok.line, 4);
}

#[test]
fn doc_comments_are_flagged() {
    let lexed = lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/*! bang doc */\n/* plain block */\n");
    let flags: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
    assert_eq!(flags, vec![true, true, false, true, true, false]);
}

#[test]
fn chars_versus_lifetimes() {
    let lexed = lex("fn f<'a>(x: &'static str) { let c = 'y'; let nl = '\\n'; let b = b'z'; }");
    let lifetimes: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lifetimes, vec!["a", "static"]);
    let chars: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(chars, vec!["y", "\\n", "z"]);
}

#[test]
fn raw_identifiers_unwrap_to_the_bare_name() {
    assert_eq!(idents("let r#type = r#fn;"), vec!["let", "type", "fn"]);
}

#[test]
fn numbers_with_suffixes_and_radices() {
    let lexed = lex("let a = 1_000u64; let b = 0x1f; let c = 1.5e3;");
    let nums: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(nums, vec!["1_000u64", "0x1f", "1.5e3"]);
}

#[test]
fn comment_text_preserves_directive_body() {
    let lexed = lex("// lsq-lint: hot\nfn search() {}\n");
    assert_eq!(lexed.comments[0].text.trim(), "lsq-lint: hot");
    assert_eq!(lexed.comments[0].line, 1);
}

#[test]
fn unterminated_string_does_not_panic() {
    // Degradation, not correctness: the lexer must never panic on
    // malformed input (it may tokenize it arbitrarily).
    let _ = lex("let s = \"unterminated");
    let _ = lex("let c = '");
    let _ = lex("/* unterminated block");
    let _ = lex("let s = r###\"unterminated raw");
}
