//! Per-rule fixture tests: each rule has a true-positive, a
//! true-negative, and a waiver case, plus tests for waiver mechanics
//! themselves (coverage window, mandatory reason, unwaivability of
//! `waiver-syntax`).

use lsq_lint::rules;
use lsq_lint::{lint_source, Role};

/// Rule ids fired on `src`, with duplicates, in diagnostic order.
fn fired(rel: &str, role: Role, src: &str) -> Vec<&'static str> {
    lint_source(rel, role, src).iter().map(|d| d.rule).collect()
}

fn fired_lib(src: &str) -> Vec<&'static str> {
    fired("crates/x/src/lib.rs", Role::Lib, src)
}

// ---------------------------------------------------------------------
// R1: hot-path-alloc
// ---------------------------------------------------------------------

#[test]
fn hot_fn_with_ctor_alloc_fires() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "// lsq-lint: hot\nfn search(&self) { let v: Vec<u32> = Vec::new(); }\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::HOT_PATH_ALLOC);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].message.contains("Vec::new"));
    assert!(diags[0].message.contains("search"), "{}", diags[0].message);
}

#[test]
fn hot_fn_flags_macro_method_and_clone_allocs() {
    for body in [
        "let v = vec![1, 2];",
        "let s = format!(\"x{y}\");",
        "let b = Box::new(1);",
        "let s = String::from(\"x\");",
        "let m = HashMap::with_capacity(8);",
        "let c = self.entries.clone();",
        "let v: Vec<_> = it.collect();",
        "let v = it.collect::<Vec<_>>();",
        "let v = xs.to_vec();",
    ] {
        let src = format!("// lsq-lint: hot\nfn search(&self) {{ {body} }}\n");
        assert_eq!(
            fired_lib(&src),
            vec![rules::HOT_PATH_ALLOC],
            "should fire on `{body}`"
        );
    }
}

#[test]
fn hot_mod_covers_every_function_inside() {
    let src = "// lsq-lint: hot\nmod inner {\n    fn a() { let v = vec![1]; }\n    fn b() { let s = x.to_owned(); }\n}\n";
    assert_eq!(
        fired_lib(src),
        vec![rules::HOT_PATH_ALLOC, rules::HOT_PATH_ALLOC]
    );
}

#[test]
fn alloc_outside_hot_region_is_clean() {
    let src = "// lsq-lint: hot\nfn search(&self) { self.buf.clear(); }\nfn cold() { let v = vec![1]; }\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn unmarked_file_allows_allocation() {
    assert!(fired_lib("fn f() { let v = Vec::new(); }\n").is_empty());
}

#[test]
fn vec_as_plain_identifier_is_not_an_alloc() {
    let src = "// lsq-lint: hot\nfn search(vec: &[u32]) -> u32 { vec[0] }\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn hot_alloc_waiver_with_reason_suppresses() {
    let src = "// lsq-lint: hot\nfn search(&self) {\n    // lsq-lint: allow(hot-path-alloc, reason = \"one-time lazy init, amortized\")\n    let v = Vec::new();\n}\n";
    assert!(fired_lib(src).is_empty());
}

// ---------------------------------------------------------------------
// R2: knob-registry
// ---------------------------------------------------------------------

#[test]
fn env_var_read_of_knob_fires() {
    for call in ["var", "var_os"] {
        let src = format!("fn f() {{ let _ = std::env::{call}(\"LSQ_JOBS\"); }}\n");
        let diags = lint_source("crates/x/src/lib.rs", Role::Lib, &src);
        assert_eq!(diags.len(), 1, "{call}");
        assert_eq!(diags[0].rule, rules::KNOB_REGISTRY);
        assert!(diags[0].message.contains("LSQ_JOBS"));
    }
}

#[test]
fn registry_module_itself_may_read_env() {
    let src = "pub fn get(name: &str) -> Option<String> { std::env::var(name).ok() }\nconst K: &str = \"LSQ_JOBS\";\n";
    assert!(fired(rules::KNOB_REGISTRY_FILE, Role::Lib, src).is_empty());
}

#[test]
fn non_knob_env_reads_are_out_of_scope() {
    // Not LSQ_-shaped: other prefixes and lowercase tails.
    let src = "fn f() { let _ = std::env::var(\"HOME\"); let _ = std::env::var(\"LSQ_lower\"); }\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn knobs_accessor_reads_are_clean() {
    assert!(fired_lib("fn f() -> bool { lsq_util::knobs::flag(\"LSQ_PROFILE\") }\n").is_empty());
}

#[test]
fn env_bypass_waiver_with_reason_suppresses() {
    let src = "fn f() {\n    // lsq-lint: allow(knob-registry, reason = \"bootstrap read before lsq-util is linked\")\n    let _ = std::env::var(\"LSQ_JOBS\");\n}\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn documented_knob_names_parses_backticked_table_cells() {
    let md = "# doc\n\n| knob | default |\n|---|---|\n| `LSQ_JOBS` | auto |\n| `LSQ_INSTRS` | 250000 |\n| plain cell | x |\n| `not_a_knob` | y |\n";
    let names = rules::documented_knob_names(md);
    assert_eq!(
        names,
        vec![("LSQ_JOBS".to_string(), 5), ("LSQ_INSTRS".to_string(), 6)]
    );
}

// ---------------------------------------------------------------------
// R3: zero-cost-nop
// ---------------------------------------------------------------------

#[test]
fn nop_method_missing_inline_always_fires() {
    let src = "impl Tracer for NopTracer { fn enabled(&self) -> bool { false } }\n";
    let diags = lint_source("crates/x/src/lib.rs", Role::Lib, src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::ZERO_COST_NOP);
    assert!(diags[0].message.contains("inline(always)"));
}

#[test]
fn nop_method_with_nontrivial_body_fires() {
    let src = "impl Tracer for NopTracer {\n    #[inline(always)]\n    fn emit(&mut self, e: Event) { self.count += 1 }\n}\n";
    let diags = lint_source("crates/x/src/lib.rs", Role::Lib, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("non-trivial body"));
}

#[test]
fn nop_impl_with_no_methods_fires() {
    let src = "impl Tracer for NopTracer {}\n";
    let diags = lint_source("crates/x/src/lib.rs", Role::Lib, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("no methods"));
}

#[test]
fn compliant_nop_impl_is_clean() {
    let src = "impl Tracer for NopTracer {\n    #[inline(always)]\n    fn enabled(&self) -> bool { false }\n    #[inline(always)]\n    fn set_cycle(&mut self, _cycle: u64) {}\n    #[inline(always)]\n    fn report(&self) -> Option<R> { None }\n}\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn non_nop_impls_are_out_of_scope() {
    let src = "impl Tracer for RealTracer { fn enabled(&self) -> bool { self.on } }\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn nop_violation_waiver_with_reason_suppresses() {
    let src = "impl Tracer for NopTracer {\n    #[inline(always)]\n    // lsq-lint: allow(zero-cost-nop, reason = \"constant fold proven in bench X\")\n    fn enabled(&self) -> bool { FLAG }\n}\n";
    assert!(fired_lib(src).is_empty());
}

// ---------------------------------------------------------------------
// R4: metric-naming
// ---------------------------------------------------------------------

#[test]
fn unprefixed_or_camel_case_metric_names_fire() {
    for name in [
        "jobs_done_total",
        "lsqJobsDone",
        "lsq_Jobs",
        "lsq_jobs__done",
        "lsq_",
    ] {
        let src = format!("fn f(m: &Metrics) {{ m.counter(\"{name}\", \"help\"); }}\n");
        let diags = lint_source("crates/telemetry/src/x.rs", Role::Lib, &src);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == rules::METRIC_NAMING)
                .count(),
            1,
            "should fire on `{name}`"
        );
    }
}

#[test]
fn well_formed_metric_registrations_are_clean() {
    let src = "fn f(m: &Metrics) {\n    m.counter(\"lsq_jobs_done_total\", \"help\");\n    m.gauge(\"lsq_jobs_queued\", \"help\");\n    m.histogram(\"lsq_job_wall_ms\", \"help\");\n}\n";
    assert!(fired("crates/telemetry/src/x.rs", Role::Lib, src).is_empty());
}

#[test]
fn non_snake_label_keys_on_with_variants_fire() {
    let src = "fn f(m: &Metrics) { m.counter_with(\"lsq_jobs_total\", \"h\", &[(\"jobKind\", kind)]); }\n";
    let diags = lint_source("crates/telemetry/src/x.rs", Role::Lib, src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("jobKind"));
}

#[test]
fn snake_label_keys_are_clean() {
    let src = "fn f(m: &Metrics) { m.counter_with(\"lsq_jobs_total\", \"h\", &[(\"job_kind\", kind)]); }\n";
    assert!(fired("crates/telemetry/src/x.rs", Role::Lib, src).is_empty());
}

#[test]
fn metric_naming_waiver_with_reason_suppresses() {
    let src = "fn f(m: &Metrics) {\n    // lsq-lint: allow(metric-naming, reason = \"legacy dashboard expects this exact name\")\n    m.counter(\"jobs_done\", \"help\");\n}\n";
    assert!(fired("crates/telemetry/src/x.rs", Role::Lib, src).is_empty());
}

// ---------------------------------------------------------------------
// R5: no-unwrap-in-lib
// ---------------------------------------------------------------------

#[test]
fn unwrap_expect_and_panic_fire_in_lib_code() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    if a == b { panic!(\"boom\") }\n    a\n}\n",
    );
    let r5: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == rules::NO_UNWRAP_IN_LIB)
        .map(|d| d.line)
        .collect();
    assert_eq!(r5, vec![2, 3, 4]);
}

#[test]
fn unwrap_in_bin_test_and_bench_roles_is_allowed() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    for (rel, role) in [
        ("crates/x/src/bin/tool.rs", Role::Bin),
        ("crates/x/tests/it.rs", Role::Test),
        ("crates/x/benches/b.rs", Role::Bench),
        ("examples/demo.rs", Role::Example),
    ] {
        assert!(fired(rel, role, src).is_empty(), "{rel}");
    }
}

#[test]
fn unwrap_inside_cfg_test_module_is_allowed() {
    let src = "fn prod(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::prod(None), 0); Some(1).unwrap(); }\n}\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn unwrap_or_variants_are_not_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn a_method_named_expect_on_self_still_fires_without_waiver() {
    // The rule is textual over tokens: a parser's own `self.expect(…)`
    // matches and must be renamed (as obs/json.rs was) or waived.
    let src = "fn f(&mut self) { self.expect(b'[') }\n";
    assert_eq!(fired_lib(src), vec![rules::NO_UNWRAP_IN_LIB]);
}

#[test]
fn unwrap_waiver_with_reason_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lsq-lint: allow(no-unwrap-in-lib, reason = \"x was checked Some by the caller\")\n    x.unwrap()\n}\n";
    assert!(fired_lib(src).is_empty());
}

// ---------------------------------------------------------------------
// R6: relaxed-ordering-audit
// ---------------------------------------------------------------------

#[test]
fn unjustified_relaxed_in_scope_fires() {
    let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
    for rel in [
        "crates/experiments/src/engine.rs",
        "crates/telemetry/src/metrics.rs",
    ] {
        assert_eq!(
            fired(rel, Role::Lib, src),
            vec![rules::RELAXED_ORDERING_AUDIT],
            "{rel}"
        );
    }
}

#[test]
fn relaxed_outside_audit_scope_is_clean() {
    let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
    assert!(fired("crates/core/src/lsq.rs", Role::Lib, src).is_empty());
}

#[test]
fn relaxed_in_test_module_is_clean() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n}\n";
    assert!(fired("crates/telemetry/src/metrics.rs", Role::Lib, src).is_empty());
}

#[test]
fn justified_relaxed_is_clean() {
    let src = "fn f(c: &AtomicU64) -> u64 {\n    // lsq-lint: allow(relaxed-ordering-audit, reason = \"monotonic counter; readers tolerate staleness\")\n    c.load(Ordering::Relaxed)\n}\n";
    assert!(fired("crates/telemetry/src/metrics.rs", Role::Lib, src).is_empty());
}

#[test]
fn stronger_orderings_need_no_justification() {
    let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n";
    assert!(fired("crates/telemetry/src/metrics.rs", Role::Lib, src).is_empty());
}

// ---------------------------------------------------------------------
// Waiver mechanics & waiver-syntax
// ---------------------------------------------------------------------

#[test]
fn waiver_covers_only_its_own_and_the_next_line() {
    // Two lines of separation: the waiver must NOT reach the unwrap.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lsq-lint: allow(no-unwrap-in-lib, reason = \"too far away\")\n    let y = x;\n    y.unwrap()\n}\n";
    assert_eq!(fired_lib(src), vec![rules::NO_UNWRAP_IN_LIB]);
}

#[test]
fn waiver_on_the_same_line_suppresses() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lsq-lint: allow(no-unwrap-in-lib, reason = \"checked by caller\")\n";
    assert!(fired_lib(src).is_empty());
}

#[test]
fn waiver_does_not_cover_other_rules() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lsq-lint: allow(hot-path-alloc, reason = \"wrong rule\")\n    x.unwrap()\n}\n";
    assert_eq!(fired_lib(src), vec![rules::NO_UNWRAP_IN_LIB]);
}

#[test]
fn reasonless_waiver_is_a_waiver_syntax_error() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "// lsq-lint: allow(no-unwrap-in-lib)\nfn f() {}\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::WAIVER_SYNTAX);
    assert!(diags[0].message.contains("no reason"));
}

#[test]
fn empty_reason_is_a_waiver_syntax_error() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "// lsq-lint: allow(no-unwrap-in-lib, reason = \"\")\nfn f() {}\n",
    );
    assert_eq!(
        fired_lib("// lsq-lint: allow(no-unwrap-in-lib, reason = \"\")\nfn f() {}\n"),
        vec![rules::WAIVER_SYNTAX]
    );
    assert!(diags[0].message.contains("no reason"));
}

#[test]
fn unknown_rule_in_waiver_is_a_waiver_syntax_error() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "// lsq-lint: allow(no-such-rule, reason = \"x\")\nfn f() {}\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::WAIVER_SYNTAX);
    assert!(diags[0].message.contains("no-such-rule"));
}

#[test]
fn unrecognized_directive_is_a_waiver_syntax_error() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "// lsq-lint: frobnicate\nfn f() {}\n",
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rules::WAIVER_SYNTAX);
}

#[test]
fn reasonless_waiver_does_not_suppress_and_cannot_be_waived() {
    // A malformed waiver both fails to suppress the underlying
    // violation and cannot itself be silenced by a well-formed waiver.
    let src = "// lsq-lint: allow(waiver-syntax, reason = \"silencing the meta-rule\")\n// lsq-lint: allow(no-unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let mut rules_hit = fired_lib(src);
    rules_hit.sort();
    assert_eq!(
        rules_hit,
        vec![rules::NO_UNWRAP_IN_LIB, rules::WAIVER_SYNTAX]
    );
}

#[test]
fn doc_comments_quoting_waiver_syntax_are_inert() {
    // Quoting the syntax in docs must neither waive nor error.
    let src = "/// Write `lsq-lint: allow(no-unwrap-in-lib)` to waive.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(fired_lib(src), vec![rules::NO_UNWRAP_IN_LIB]);
}

// ---------------------------------------------------------------------
// Diagnostics plumbing
// ---------------------------------------------------------------------

#[test]
fn diagnostics_render_path_line_severity_rule() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let text = diags[0].to_string();
    assert!(
        text.starts_with("crates/x/src/lib.rs:1: error [no-unwrap-in-lib]"),
        "{text}"
    );
}

#[test]
fn json_output_is_parseable_shape() {
    let diags = lint_source(
        "crates/x/src/lib.rs",
        Role::Lib,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n",
    );
    let json = lsq_lint::to_json(&diags);
    assert!(json.contains("\"rule\":\"no-unwrap-in-lib\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    // Backtick-quoted message content must arrive intact.
    assert!(json.contains("`.expect()` in library code"), "{json}");
}

#[test]
fn self_check_exercises_every_rule() {
    assert!(lsq_lint::self_check().is_empty());
}
