//! The metrics registry: counters, gauges, and histograms with
//! Prometheus text-format (0.0.4) rendering.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lsq_stats::Histogram;
use lsq_util::sync::MutexExt;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "monotonic counter; readers only render a snapshot, no ordering edge needed")
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "exposition snapshot; staleness is acceptable, no acquire edge needed")
        self.value.load(Ordering::Relaxed)
    }
}

/// An integer gauge (queue depth, busy workers): can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "gauge overwrite; last-writer-wins is the metric's semantics")
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "monotonic counter; readers only render a snapshot, no ordering edge needed")
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "gauge arithmetic; readers only render a snapshot, no ordering edge needed")
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "exposition snapshot; staleness is acceptable, no acquire edge needed")
        self.value.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge (aggregate sim-MIPS), stored as `f64` bits in
/// an atomic so readers never see a torn value.
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "single-word gauge overwrite; last-writer-wins is the metric's semantics")
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "exposition snapshot; staleness is acceptable, no acquire edge needed")
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over `u64` observations, bucketed by a fixed table of
/// inclusive upper bounds (Prometheus `le` semantics). Bucketing and
/// counting reuse [`lsq_stats::Histogram`]; observations above the last
/// bound land in the implicit `+Inf` bucket.
#[derive(Debug)]
pub struct HistogramMetric {
    bounds: Vec<u64>,
    inner: Mutex<Histogram>,
    sum: AtomicU64,
}

impl HistogramMetric {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            // One stats bucket per bound; overflow tracks +Inf.
            inner: Mutex::new(Histogram::new(bounds.len())),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        // First bucket whose upper bound covers the value, or
        // `bounds.len()` for +Inf — which is exactly the stats
        // histogram's overflow clamp.
        let idx = self.bounds.partition_point(|&b| b < value);
        // lsq-lint: allow(relaxed-ordering-audit, reason = "sum counter is independent of the bucket mutex; scrape tolerates skew")
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.lock_unpoisoned().record(idx);
    }

    /// Records `n` observations of `value` in one registry visit — for
    /// folding an already-bucketed histogram (e.g. a simulator
    /// stage-latency histogram) into the exposition without `n` lock
    /// round trips.
    pub fn record_n(&self, value: u64, n: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        // lsq-lint: allow(relaxed-ordering-audit, reason = "sum counter is independent of the bucket mutex; scrape tolerates skew")
        self.sum.fetch_add(value * n, Ordering::Relaxed);
        self.inner.lock_unpoisoned().record_n(idx, n);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.lock_unpoisoned().count()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "exposition snapshot; staleness is acceptable, no acquire edge needed")
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (Prometheus `le` buckets), excluding
    /// the implicit `+Inf` bucket (that is [`HistogramMetric::count`]).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let h = self.inner.lock_unpoisoned();
        let mut acc = 0;
        self.bounds
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                // The last stats bucket also absorbs the overflow
                // clamp; peel that off so `le=<last bound>` counts only
                // observations actually within the bound.
                let in_bucket = if i + 1 == self.bounds.len() {
                    h.bucket(i) - h.overflow()
                } else {
                    h.bucket(i)
                };
                acc += in_bucket;
                (b, acc)
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Float(Arc<FloatGauge>),
    Hist(Arc<HistogramMetric>),
}

impl Handle {
    fn kind(&self) -> Kind {
        match self {
            Handle::Counter(_) => Kind::Counter,
            Handle::Gauge(_) | Handle::Float(_) => Kind::Gauge,
            Handle::Hist(_) => Kind::Histogram,
        }
    }
}

/// One metric name: help text, kind, and every labelled series.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<(Vec<(String, String)>, Handle)>,
}

/// The registry. Registration is get-or-create keyed on
/// `(name, labels)`; recording goes through the returned `Arc` handles
/// and never touches the registry lock.
#[derive(Debug, Default)]
pub struct Metrics {
    families: Mutex<Vec<Family>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labelled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || Handle::Counter(Arc::default())) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabelled integer gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labelled integer gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Handle::Gauge(Arc::default())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabelled floating-point gauge.
    pub fn float_gauge(&self, name: &str, help: &str) -> Arc<FloatGauge> {
        match self.register(name, help, &[], || Handle::Float(Arc::default())) {
            Handle::Float(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or finds) an unlabelled histogram with the given
    /// inclusive upper bounds (strictly increasing; `+Inf` is implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<HistogramMetric> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or finds) a labelled histogram with the given
    /// inclusive upper bounds (strictly increasing; `+Inf` is implicit).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<HistogramMetric> {
        match self.register(name, help, labels, || {
            Handle::Hist(Arc::new(HistogramMetric::new(bounds)))
        }) {
            Handle::Hist(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock_unpoisoned();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                // lsq-lint: allow(no-unwrap-in-lib, reason = "the family was pushed on the previous line")
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, handle)) = family.series.iter().find(|(l, _)| *l == labels) {
            return handle.clone();
        }
        let handle = make();
        if let Some((_, existing)) = family.series.first() {
            assert_eq!(
                existing.kind(),
                handle.kind(),
                "metric {name} registered with conflicting kinds"
            );
        }
        family.series.push((labels, handle.clone()));
        handle
    }

    /// Renders the whole registry in Prometheus text format 0.0.4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock_unpoisoned();
        for family in families.iter() {
            let kind = match family.series.first() {
                Some((_, h)) => h.kind(),
                None => continue,
            };
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, kind.as_str()));
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        render_sample(&mut out, &family.name, labels, &[], &c.get().to_string());
                    }
                    Handle::Gauge(g) => {
                        render_sample(&mut out, &family.name, labels, &[], &g.get().to_string());
                    }
                    Handle::Float(g) => {
                        render_sample(&mut out, &family.name, labels, &[], &g.get().to_string());
                    }
                    Handle::Hist(h) => {
                        let count = h.count();
                        for (bound, cum) in h.cumulative() {
                            let le = ("le".to_string(), bound.to_string());
                            render_sample(
                                &mut out,
                                &format!("{}_bucket", family.name),
                                labels,
                                std::slice::from_ref(&le),
                                &cum.to_string(),
                            );
                        }
                        let inf = ("le".to_string(), "+Inf".to_string());
                        render_sample(
                            &mut out,
                            &format!("{}_bucket", family.name),
                            labels,
                            std::slice::from_ref(&inf),
                            &count.to_string(),
                        );
                        render_sample(
                            &mut out,
                            &format!("{}_sum", family.name),
                            labels,
                            &[],
                            &h.sum().to_string(),
                        );
                        render_sample(
                            &mut out,
                            &format!("{}_count", family.name),
                            labels,
                            &[],
                            &count.to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Writes one exposition line: `name{labels} value`.
fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(String, String)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().chain(extra).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escapes a label value per the exposition format: backslash, quote,
/// and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let m = Metrics::new();
        let c = m.counter("lsq_jobs_done", "jobs completed");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);

        let g = m.gauge("lsq_queue_depth", "jobs waiting");
        g.set(5);
        g.sub(2);
        g.add(1);
        assert_eq!(g.get(), 4);

        let f = m.float_gauge("lsq_sim_mips", "aggregate throughput");
        f.set(2.5);
        assert_eq!(f.get(), 2.5);
    }

    #[test]
    fn registration_is_get_or_create() {
        let m = Metrics::new();
        let a = m.counter("lsq_steals", "steals");
        let b = m.counter("lsq_steals", "steals");
        a.inc();
        assert_eq!(b.get(), 1);

        let w0 = m.gauge_with("lsq_worker_busy", "busy", &[("worker", "0")]);
        let w1 = m.gauge_with("lsq_worker_busy", "busy", &[("worker", "1")]);
        w0.set(1);
        assert_eq!(w1.get(), 0);
        let w0_again = m.gauge_with("lsq_worker_busy", "busy", &[("worker", "0")]);
        assert_eq!(w0_again.get(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn kind_conflict_panics() {
        let m = Metrics::new();
        let _ = m.counter_with("lsq_thing", "x", &[("a", "1")]);
        let _ = m.gauge_with("lsq_thing", "x", &[("a", "2")]);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        let h = m.histogram("lsq_job_wall_ms", "per-job wall", &[1, 10, 100]);
        for v in [0, 1, 5, 10, 50, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1066);
        assert_eq!(h.cumulative(), vec![(1, 2), (10, 4), (100, 5)]);
    }

    #[test]
    fn exposition_format_golden() {
        let m = Metrics::new();
        m.counter("lsq_jobs_done", "Jobs completed.").add(7);
        m.gauge_with(
            "lsq_worker_busy",
            "Worker is running a job.",
            &[("worker", "0")],
        )
        .set(1);
        m.gauge_with(
            "lsq_worker_busy",
            "Worker is running a job.",
            &[("worker", "1")],
        )
        .set(0);
        m.float_gauge("lsq_sim_mips", "Aggregate sim-MIPS.")
            .set(3.5);
        let h = m.histogram("lsq_job_wall_ms", "Per-job wall time (ms).", &[1, 10]);
        h.record(0);
        h.record(4);
        h.record(99);

        let expected = "\
# HELP lsq_jobs_done Jobs completed.
# TYPE lsq_jobs_done counter
lsq_jobs_done 7
# HELP lsq_worker_busy Worker is running a job.
# TYPE lsq_worker_busy gauge
lsq_worker_busy{worker=\"0\"} 1
lsq_worker_busy{worker=\"1\"} 0
# HELP lsq_sim_mips Aggregate sim-MIPS.
# TYPE lsq_sim_mips gauge
lsq_sim_mips 3.5
# HELP lsq_job_wall_ms Per-job wall time (ms).
# TYPE lsq_job_wall_ms histogram
lsq_job_wall_ms_bucket{le=\"1\"} 1
lsq_job_wall_ms_bucket{le=\"10\"} 2
lsq_job_wall_ms_bucket{le=\"+Inf\"} 3
lsq_job_wall_ms_sum 103
lsq_job_wall_ms_count 3
";
        assert_eq!(m.render(), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metrics::new();
        m.counter_with("lsq_odd", "odd labels", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = m.render();
        assert!(
            text.contains("lsq_odd{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let m = Arc::new(Metrics::new());
        let c = m.counter("lsq_concurrent", "contended counter");
        let h = m.histogram("lsq_concurrent_hist", "contended histogram", &[8, 64]);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0u64..1000 {
                        c.inc();
                        h.record((t * 1000 + i) % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        // Values cycle uniformly over 0..100 (80 observations each);
        // le=8 covers 9 of those values and le=64 covers 65.
        assert_eq!(h.cumulative(), vec![(8, 9 * 80), (64, 65 * 80)]);
    }
}
