//! Live telemetry: a lock-light metrics registry plus a tiny std-only
//! HTTP exposition server.
//!
//! The experiment engine publishes its state here while a matrix runs —
//! jobs queued/running/done, per-worker activity, cache hit rate,
//! aggregate sim-MIPS, steal counts — and [`MetricsServer`] serves it
//! in Prometheus text format (`/metrics`) plus a JSON job view
//! (`/jobs`). See "Live telemetry & profiling" in EXPERIMENTS.md.
//!
//! Design constraints, in order:
//!
//! * **No external dependencies.** The workspace is fully offline, so
//!   the registry, exposition format, and HTTP server are hand-rolled
//!   on `std` (the HTTP subset is one request line + headers, enough
//!   for `curl` and Prometheus scrapes).
//! * **Cheap on the hot path.** Counters and gauges are single atomics
//!   updated with `Relaxed` ordering; handles are `Arc`s resolved once
//!   at registration, so recording never takes the registry lock.
//!   Histograms take a per-metric mutex, which is fine at per-job (not
//!   per-cycle) granularity.
//! * **Reuse `crates/stats`.** Histogram bucketing is
//!   [`lsq_stats::Histogram`] behind a bounds table, so the same code
//!   path is exercised by the paper's occupancy tables and by live
//!   telemetry.

mod metrics;
mod server;

pub use metrics::{Counter, FloatGauge, Gauge, HistogramMetric, Metrics};
pub use server::MetricsServer;
