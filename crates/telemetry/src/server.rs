//! A tiny std-only HTTP/1.1 server exposing the registry.
//!
//! Serves exactly three GET routes, enough for `curl` and a Prometheus
//! scrape loop:
//!
//! * `/metrics` — the registry in text format 0.0.4
//! * `/jobs`    — a JSON snapshot supplied by the owner's callback
//! * `/`        — a plain-text index of the above
//!
//! The accept loop runs on one background thread with a non-blocking
//! listener so shutdown (on drop) is a flag flip plus a short poll
//! interval, not a blocked `accept` that never wakes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::Metrics;

/// Callback producing the `/jobs` JSON body.
pub type JobsFn = Box<dyn Fn() -> String + Send + Sync>;

/// Handle to a running exposition server. Dropping it stops the
/// background thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an
    /// ephemeral port) and starts serving the registry.
    pub fn start(addr: &str, metrics: Arc<Metrics>, jobs: JobsFn) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("lsq-metrics".to_string())
            .spawn(move || accept_loop(listener, metrics, jobs, stop))?;
        Ok(Self {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // lsq-lint: allow(relaxed-ordering-audit, reason = "stop flag; join() below is the synchronization point")
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, metrics: Arc<Metrics>, jobs: JobsFn, stop: Arc<AtomicBool>) {
    // lsq-lint: allow(relaxed-ordering-audit, reason = "stop flag polled each accept tick; no data is published through it")
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: requests are tiny and rare (human curl
                // or a scrape every few seconds), so one thread is
                // plenty and keeps ordering trivial.
                let _ = serve(stream, &metrics, &jobs);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn serve(mut stream: TcpStream, metrics: &Metrics, jobs: &JobsFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nonblocking(false)?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics.render(),
        ),
        "/jobs" => ("200 OK", "application/json", format!("{}\n", jobs())),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "lsq experiment engine\n\n/metrics  Prometheus text format\n/jobs     job table (JSON)\n"
                .to_string(),
        ),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads up to the end of the request headers and returns the path from
/// the request line (query strings are ignored).
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next().unwrap_or_default();
    // "GET /metrics HTTP/1.1" -> "/metrics"
    let path = line.split_whitespace().nth(1).unwrap_or("/");
    let path = path.split('?').next().unwrap_or("/");
    Ok(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    fn test_server() -> (MetricsServer, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&metrics),
            Box::new(|| "{\"jobs\":[]}".to_string()),
        )
        .expect("bind ephemeral port");
        (server, metrics)
    }

    #[test]
    fn serves_metrics_jobs_index_and_404() {
        let (server, metrics) = test_server();
        metrics.counter("lsq_jobs_done", "done").add(3);

        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("lsq_jobs_done 3"), "{body}");

        let (head, body) = get(server.addr(), "/jobs");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"jobs\":[]}\n");

        let (head, body) = get(server.addr(), "/");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn metrics_reflect_updates_between_scrapes() {
        let (server, metrics) = test_server();
        let c = metrics.counter("lsq_live", "live counter");
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("lsq_live 0"), "{body}");
        c.add(41);
        c.inc();
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("lsq_live 42"), "{body}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let (server, _metrics) = test_server();
        let addr = server.addr();
        drop(server);
        // The port may linger in TIME_WAIT, but a fresh connect must
        // not be served; either refused outright or closed unanswered.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                let _ = write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut out = String::new();
                let _ = stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .and_then(|()| stream.read_to_string(&mut out).map(|_| ()));
                assert!(!out.contains("200 OK"), "served after shutdown: {out}");
            }
        }
    }
}
