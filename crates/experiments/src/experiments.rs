//! One implementation per paper artifact (Tables 1–6, Figures 6–12).
//!
//! Every function returns an [`Artifact`] — a titled, column-aligned
//! table shaped like the paper's, plus notes recording what shape the
//! paper reports so EXPERIMENTS.md can put paper and measurement side by
//! side. The experiment binaries print artifacts; the integration tests
//! re-run them with tiny instruction budgets and assert the shapes.

use crate::runner::{int_fp_means, run_matrix, RunSpec};
use lsq_core::{LoadOrderPolicy, LsqConfig, PredictorKind, SegAlloc};
use lsq_obs::NopTracer;
use lsq_pipeline::{
    CriticalPath, NopAccountant, NopProfiler, PipeviewRecorder, SimConfig, SimResult, Simulator,
    CP_COMPONENTS,
};
use lsq_stats::Table;
use lsq_trace::BenchProfile;

/// A reproduced table or figure.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier matching the paper ("Table 2", "Figure 10", ...).
    pub id: &'static str,
    /// What the artifact shows.
    pub title: &'static str,
    /// The reproduced rows.
    pub table: Table,
    /// Shape expectations from the paper and measured aggregates.
    pub notes: Vec<String>,
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.id, self.title)?;
        writeln!(f, "{}", self.table)?;
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// The paper's Table 2 base IPCs, for side-by-side columns.
pub const PAPER_BASE_IPC: &[(&str, f64)] = &[
    ("bzip", 2.5),
    ("gcc", 2.1),
    ("gzip", 2.0),
    ("mcf", 0.3),
    ("parser", 1.9),
    ("perl", 3.0),
    ("twolf", 1.5),
    ("vortex", 2.2),
    ("vpr", 1.3),
    ("ammp", 1.2),
    ("applu", 2.6),
    ("art", 0.3),
    ("equake", 1.1),
    ("mesa", 3.3),
    ("mgrid", 2.2),
    ("sixtrack", 2.9),
    ("swim", 1.0),
    ("wupwise", 2.9),
];

fn paper_ipc(name: &str) -> f64 {
    PAPER_BASE_IPC
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

fn speedup_row_note(label: &str, rows: &[(&'static str, f64)]) -> String {
    let (int, fp) = int_fp_means(rows);
    format!(
        "{label}: Int.Avg {} / Fp.Avg {}",
        lsq_stats::pct(int - 1.0),
        lsq_stats::pct(fp - 1.0)
    )
}

// ----------------------------------------------------------------------
// Table 1 — system configuration
// ----------------------------------------------------------------------

/// Table 1: the base system configuration (a direct dump, proving the
/// simulator defaults match the paper).
pub fn table1() -> Artifact {
    let c = SimConfig::default();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec![
        "ROB size".into(),
        format!("{} entries", c.rob_entries),
    ]);
    t.row(vec![
        "Issue queue".into(),
        format!("{} entries", c.iq_entries),
    ]);
    t.row(vec!["Issue width".into(), format!("{}", c.issue_width)]);
    t.row(vec![
        "Functional units".into(),
        format!(
            "{} integer, {} pipelined floating-point",
            c.int_units, c.fp_units
        ),
    ]);
    t.row(vec![
        "L1 caches".into(),
        format!(
            "{}K {}-way, pipelined {}-cycle hit, {}-byte block ({} d-cache ports)",
            c.hierarchy.l1d.size_bytes >> 10,
            c.hierarchy.l1d.ways,
            c.hierarchy.l1d.hit_latency,
            c.hierarchy.l1d.block_bytes,
            c.dcache_ports
        ),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!(
            "{}M {}-way, pipelined {}-cycle hit, {}-byte block",
            c.hierarchy.l2.size_bytes >> 20,
            c.hierarchy.l2.ways,
            c.hierarchy.l2.hit_latency,
            c.hierarchy.l2.block_bytes
        ),
    ]);
    t.row(vec![
        "Memory".into(),
        format!("{} cycles", c.hierarchy.mem_latency),
    ]);
    t.row(vec![
        "Store-set predictor".into(),
        format!(
            "{}-entry SSIT, {}-entry LFST (3-bit pair counter)",
            c.lsq.ssit_entries, c.lsq.lfst_entries
        ),
    ]);
    t.row(vec![
        "Branch predictor".into(),
        "hybrid GAg & PAg, 4K-entry tables, 14-cycle mispredict penalty".into(),
    ]);
    t.row(vec![
        "LSQ (base)".into(),
        format!(
            "{}-entry LQ + {}-entry SQ, {} search ports",
            c.lsq.lq_entries, c.lsq.sq_entries, c.lsq.ports
        ),
    ]);
    Artifact {
        id: "Table 1",
        title: "System configuration parameters",
        table: t,
        notes: vec!["All values match the paper's Table 1.".into()],
    }
}

// ----------------------------------------------------------------------
// Table 2 — base IPCs
// ----------------------------------------------------------------------

/// Table 2: applications and their base IPCs (2-ported conventional LSQ).
pub fn table2(spec: RunSpec) -> Artifact {
    let rows = run_matrix(&[LsqConfig::default()], false, spec);
    let mut t = Table::new(vec!["bench", "class", "IPC measured", "IPC paper"]);
    let mut pairs = Vec::new();
    for (name, r) in &rows {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "name came out of run_matrix, which iterates BenchProfile's own table")
        let fp = BenchProfile::named(name).expect("known").fp;
        t.row(vec![
            name.to_string(),
            if fp { "FP" } else { "INT" }.into(),
            fmt2(r[0].ipc()),
            format!("{:.1}", paper_ipc(name)),
        ]);
        pairs.push((*name, r[0].ipc()));
    }
    let (int, fp) = int_fp_means(&pairs);
    Artifact {
        id: "Table 2",
        title: "Applications and their base IPCs",
        table: t,
        notes: vec![format!(
            "Measured Int.Avg {int:.2} / Fp.Avg {fp:.2}; paper Int.Avg 1.98 / Fp.Avg 1.94. \
             Profiles are calibrated to land near the paper's per-benchmark base IPCs \
             (see lsq-trace)."
        )],
    }
}

// ----------------------------------------------------------------------
// Figures 6, 7 and Table 3 — store-queue search reduction
// ----------------------------------------------------------------------

fn predictor_configs() -> [LsqConfig; 4] {
    let mk = |p| LsqConfig {
        predictor: p,
        ..LsqConfig::default()
    };
    [
        LsqConfig::default(),
        mk(PredictorKind::Perfect),
        mk(PredictorKind::Aggressive),
        mk(PredictorKind::Pair),
    ]
}

fn predictor_matrix(spec: RunSpec) -> Vec<(&'static str, Vec<SimResult>)> {
    run_matrix(&predictor_configs(), false, spec)
}

/// Figure 6: store-queue search bandwidth demand of the perfect,
/// aggressive, and store-load pair predictors, relative to the base case
/// in which every load searches.
pub fn fig6(spec: RunSpec) -> Artifact {
    fig6_from(&predictor_matrix(spec))
}

fn fig6_from(rows: &[(&'static str, Vec<SimResult>)]) -> Artifact {
    let mut t = Table::new(vec!["bench", "perfect", "aggressive", "pair"]);
    let mut perfect = Vec::new();
    let mut aggressive = Vec::new();
    let mut pair = Vec::new();
    for (name, r) in rows {
        let base = r[0].lsq.sq_searches.max(1) as f64;
        let p = r[1].lsq.sq_searches as f64 / base;
        let a = r[2].lsq.sq_searches as f64 / base;
        let q = r[3].lsq.sq_searches as f64 / base;
        t.row(vec![name.to_string(), fmt2(p), fmt2(a), fmt2(q)]);
        perfect.push((*name, p));
        aggressive.push((*name, a));
        pair.push((*name, q));
    }
    let avg = |v: &[(&'static str, f64)]| {
        let (i, f) = int_fp_means(v);
        (i, f)
    };
    let (pi, pf) = avg(&perfect);
    let (ai, af) = avg(&aggressive);
    let (qi, qf) = avg(&pair);
    Artifact {
        id: "Figure 6",
        title: "Search bandwidth reduction in the store queue by using different predictors \
                (demand relative to a conventional store queue; lower is better)",
        table: t,
        notes: vec![
            format!("Measured demand Int/Fp: perfect {pi:.2}/{pf:.2}, aggressive {ai:.2}/{af:.2}, pair {qi:.2}/{qf:.2}."),
            "Paper: perfect ≈ 0.14 overall; aggressive ≈ 0.19 Int / 0.16 Fp; pair ≈ 0.33 Int / 0.24 Fp \
             (the realistic pair predictor is the most conservative of the three)."
                .into(),
        ],
    }
}

/// Figure 7: speedup of the three predictors over the 2-ported base case.
pub fn fig7(spec: RunSpec) -> Artifact {
    fig7_from(&predictor_matrix(spec))
}

fn fig7_from(rows: &[(&'static str, Vec<SimResult>)]) -> Artifact {
    let mut t = Table::new(vec!["bench", "perfect", "aggressive", "pair"]);
    let mut pair = Vec::new();
    for (name, r) in rows {
        let base = &r[0];
        t.row(vec![
            name.to_string(),
            fmt2(r[1].speedup_over(base)),
            fmt2(r[2].speedup_over(base)),
            fmt2(r[3].speedup_over(base)),
        ]);
        pair.push((*name, r[3].speedup_over(base)));
    }
    Artifact {
        id: "Figure 7",
        title: "Performance benefit from the search bandwidth reduction in the store queue \
                (speedup over the 2-ported conventional LSQ)",
        table: t,
        notes: vec![
            speedup_row_note("Measured pair-predictor speedup", &pair),
            "Paper: ports are not binding at 2 ports, so the perfect predictor gains little; \
             the aggressive predictor LOSES on some benchmarks (squashes from eager \
             independence predictions); the pair predictor averages ≈ +2% and never loses \
             materially."
                .into(),
        ],
    }
}

/// Table 3: accuracy of the store-load pair predictor.
pub fn table3(spec: RunSpec) -> Artifact {
    let rows = run_matrix(
        &[LsqConfig {
            predictor: PredictorKind::Pair,
            ..LsqConfig::default()
        }],
        false,
        spec,
    );
    let mut t = Table::new(vec!["bench", "mispred", "squash"]);
    for (name, r) in &rows {
        t.row(vec![
            name.to_string(),
            format!("{:.1}%", r[0].lsq.pair_mispred_rate() * 100.0),
            format!("{:.1e}", r[0].lsq.pair_squash_rate()),
        ]);
    }
    Artifact {
        id: "Table 3",
        title: "Accuracy of the store-load pair predictor (mispredictions = useless searches \
                + commit-detected squashes, per issued load)",
        table: t,
        notes: vec![
            "Paper: mispredictions 0-28% per benchmark, squash rates of 1e-5..1e-3 — squashes \
             stay orders of magnitude rarer than searches, so the expensive commit-time \
             detection is almost never exercised."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// Figure 8, Table 4, Figure 9 — load-queue search reduction
// ----------------------------------------------------------------------

/// Figure 8: load-queue search bandwidth demand with a 2-entry load
/// buffer, relative to the conventional load queue.
pub fn fig8(spec: RunSpec) -> Artifact {
    let cfgs = [
        LsqConfig::default(),
        LsqConfig {
            load_order: LoadOrderPolicy::LoadBuffer(2),
            ..LsqConfig::default()
        },
    ];
    let rows = run_matrix(&cfgs, false, spec);
    let mut t = Table::new(vec!["bench", "LQ demand vs conventional"]);
    let mut pairs = Vec::new();
    for (name, r) in &rows {
        let ratio = r[1].lsq.lq_searches() as f64 / r[0].lsq.lq_searches().max(1) as f64;
        t.row(vec![name.to_string(), fmt2(ratio)]);
        pairs.push((*name, ratio));
    }
    let (int, fp) = int_fp_means(&pairs);
    Artifact {
        id: "Figure 8",
        title: "Search bandwidth reduction in the load queue by using the load buffer \
                (demand relative to a conventional load queue; lower is better)",
        table: t,
        notes: vec![
            format!("Measured demand Int.Avg {int:.2} / Fp.Avg {fp:.2}."),
            "Paper: the load buffer removes the per-load search, cutting LQ demand by 74% \
             (Int) / 77% (Fp); mgrid reduces most (51% loads, 2% stores), vortex least \
             (18% loads, 23% stores — store searches remain)."
                .into(),
        ],
    }
}

/// Table 4: average number of loads issued out of program order.
pub fn table4(spec: RunSpec) -> Artifact {
    let rows = run_matrix(&[LsqConfig::default()], false, spec);
    let mut t = Table::new(vec!["bench", "OoO-issued loads", "in-flight loads"]);
    let mut all = Vec::new();
    for (name, r) in &rows {
        t.row(vec![
            name.to_string(),
            fmt2(r[0].ooo_issued_loads),
            format!("{:.1}", r[0].inflight_loads),
        ]);
        all.push((*name, r[0].ooo_issued_loads));
    }
    let (int, fp) = int_fp_means(&all);
    Artifact {
        id: "Table 4",
        title: "Average number of loads issued out of program order (per cycle, in flight)",
        table: t,
        notes: vec![
            format!("Measured average: Int {int:.1} / Fp {fp:.1}."),
            "Paper: fewer than 3 out-of-order-issued loads on average (vs ~41 in-flight \
             loads), which is why a <=4-entry load buffer suffices."
                .into(),
        ],
    }
}

/// Figure 9: load-buffer sizing, including the in-order strawmen.
pub fn fig9(spec: RunSpec) -> Artifact {
    let mk = |o| LsqConfig {
        load_order: o,
        ..LsqConfig::default()
    };
    let cfgs = [
        LsqConfig::default(),
        mk(LoadOrderPolicy::InOrderAlwaysSearch),
        mk(LoadOrderPolicy::InOrderNoSearch),
        mk(LoadOrderPolicy::LoadBuffer(1)),
        mk(LoadOrderPolicy::LoadBuffer(2)),
        mk(LoadOrderPolicy::LoadBuffer(4)),
    ];
    let rows = run_matrix(&cfgs, false, spec);
    let mut t = Table::new(vec![
        "bench",
        "inord-always-search",
        "0-entry (inorder)",
        "1-entry",
        "2-entry",
        "4-entry",
    ]);
    let mut two = Vec::new();
    for (name, r) in &rows {
        let base = &r[0];
        t.row(vec![
            name.to_string(),
            fmt2(r[1].speedup_over(base)),
            fmt2(r[2].speedup_over(base)),
            fmt2(r[3].speedup_over(base)),
            fmt2(r[4].speedup_over(base)),
            fmt2(r[5].speedup_over(base)),
        ]);
        two.push((*name, r[4].speedup_over(base)));
    }
    Artifact {
        id: "Figure 9",
        title: "Performance benefit from the search bandwidth reduction in the load queue \
                (speedup over the conventional 2-ported load queue)",
        table: t,
        notes: vec![
            speedup_row_note("Measured 2-entry load buffer", &two),
            "Paper: in-order load issue loses ILP (worse when it also burns search \
             bandwidth); a 1-entry buffer recovers most of it; 2 entries ≈ +3% Int / +7% Fp; \
             4 entries is near-infinite."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// Figure 10 — both reduction techniques, port sweep
// ----------------------------------------------------------------------

/// Figure 10: combining the pair predictor and load buffer across port
/// counts, vs the 2-ported conventional base.
pub fn fig10(spec: RunSpec) -> Artifact {
    let cfgs = [
        LsqConfig::default(), // base (2-ported conventional)
        LsqConfig::conventional(1),
        LsqConfig::with_techniques(1),
        LsqConfig::with_techniques(2),
        LsqConfig::conventional(4),
    ];
    let rows = run_matrix(&cfgs, false, spec);
    let mut t = Table::new(vec!["bench", "1port", "1port+tech", "2port+tech", "4port"]);
    let mut one_conv = Vec::new();
    let mut one_tech = Vec::new();
    for (name, r) in &rows {
        let base = &r[0];
        t.row(vec![
            name.to_string(),
            fmt2(r[1].speedup_over(base)),
            fmt2(r[2].speedup_over(base)),
            fmt2(r[3].speedup_over(base)),
            fmt2(r[4].speedup_over(base)),
        ]);
        one_conv.push((*name, r[1].speedup_over(base)));
        one_tech.push((*name, r[2].speedup_over(base)));
    }
    Artifact {
        id: "Figure 10",
        title: "Performance benefit from combining the two search-bandwidth reduction \
                techniques (speedup over the 2-ported conventional LSQ)",
        table: t,
        notes: vec![
            speedup_row_note("Measured 1-ported conventional", &one_conv),
            speedup_row_note("Measured 1-ported with techniques", &one_tech),
            "Paper: the 1-ported conventional LSQ drops ~24%; the 1-ported LSQ WITH the \
             techniques BEATS the 2-ported conventional base (+2% Int / +7% Fp) and the \
             2-ported-with-techniques matches a 4-ported conventional queue."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// Figure 11, Tables 5 & 6 — segmentation
// ----------------------------------------------------------------------

/// Figure 11: segmentation in isolation, both allocation strategies, vs
/// the 32-entry base and a hypothetical unsegmented 128-entry queue.
pub fn fig11(spec: RunSpec) -> Artifact {
    let big = LsqConfig {
        lq_entries: 128,
        sq_entries: 128,
        ..LsqConfig::default()
    };
    let cfgs = [
        LsqConfig::default(),
        LsqConfig::segmented(SegAlloc::NoSelfCircular),
        LsqConfig::segmented(SegAlloc::SelfCircular),
        big,
    ];
    let rows = run_matrix(&cfgs, false, spec);
    let mut t = Table::new(vec![
        "bench",
        "no-self-circular 4x28",
        "self-circular 4x28",
        "128 unsegmented",
    ]);
    let mut nsc = Vec::new();
    let mut sc = Vec::new();
    for (name, r) in &rows {
        let base = &r[0];
        t.row(vec![
            name.to_string(),
            fmt2(r[1].speedup_over(base)),
            fmt2(r[2].speedup_over(base)),
            fmt2(r[3].speedup_over(base)),
        ]);
        nsc.push((*name, r[1].speedup_over(base)));
        sc.push((*name, r[2].speedup_over(base)));
    }
    Artifact {
        id: "Figure 11",
        title: "Performance benefit from segmentation of the LSQ (speedup over the \
                32-entry 2-ported conventional LSQ)",
        table: t,
        notes: vec![
            speedup_row_note("Measured no-self-circular", &nsc),
            speedup_row_note("Measured self-circular", &sc),
            "Paper: no-self-circular +0% Int / +16% Fp (five INT benchmarks lose — their \
             working window fits one segment but gets spread over two); self-circular +5% \
             Int / +19% Fp, up to +15%/+33%, and even beats the unrealistic 128-entry \
             unsegmented queue thanks to per-segment bandwidth."
                .into(),
        ],
    }
}

/// Table 5: average number of entries needed in the load and store
/// queues (measured with generous 256-entry queues so demand is not
/// clamped by the base capacity).
pub fn table5(spec: RunSpec) -> Artifact {
    let unclamped = LsqConfig {
        lq_entries: 256,
        sq_entries: 256,
        ..LsqConfig::default()
    };
    let rows = run_matrix(&[unclamped], false, spec);
    let mut t = Table::new(vec!["bench", "avg LQ entries", "avg SQ entries"]);
    for (name, r) in &rows {
        t.row(vec![
            name.to_string(),
            format!("{:.0}", r[0].lq_occupancy),
            format!("{:.0}", r[0].sq_occupancy),
        ]);
    }
    Artifact {
        id: "Table 5",
        title: "Average number of entries needed in the load and store queues",
        table: t,
        notes: vec![
            "Paper: INT benchmarks need few entries (gcc 7/6, bzip 16/6) while FP \
             benchmarks want far more than the 32-entry base (mgrid 90/4, equake 72/15, \
             swim 70/21) — the demand gap that motivates segmentation, and the reason \
             no-self-circular hurts small-footprint INT codes."
                .into(),
        ],
    }
}

/// Table 6: distribution of the number of segments searched by loads for
/// the latest store value (self-circular allocation).
pub fn table6(spec: RunSpec) -> Artifact {
    let rows = run_matrix(&[LsqConfig::segmented(SegAlloc::SelfCircular)], false, spec);
    let mut t = Table::new(vec!["bench", "1 seg", "2 segs", "3 segs", "4 segs"]);
    let mut one = Vec::new();
    for (name, r) in &rows {
        let h = &r[0].lsq.seg_search_hist;
        t.row(vec![
            name.to_string(),
            format!("{:.1}%", h.fraction(0) * 100.0),
            format!("{:.1}%", h.fraction(1) * 100.0),
            format!("{:.1}%", h.fraction(2) * 100.0),
            format!("{:.1}%", h.fraction(3) * 100.0),
        ]);
        one.push((*name, h.fraction(0)));
    }
    let (int, fp) = int_fp_means(&one);
    Artifact {
        id: "Table 6",
        title: "Distribution of the number of searched segments by loads for the latest \
                stores (self-circular)",
        table: t,
        notes: vec![
            format!(
                "Measured single-segment fraction: Int {:.0}% / Fp {:.0}%.",
                int * 100.0,
                fp * 100.0
            ),
            "Paper: 90% of INT and 79% of FP load searches end within one segment, so the \
             extra per-segment cycle rarely hurts load latency."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// Figure 12 — everything combined, base + scaled processor
// ----------------------------------------------------------------------

/// Figure 12: all three techniques on a 1-ported LSQ, on the base and
/// scaled processors, each vs its own 2-ported conventional LSQ.
pub fn fig12(spec: RunSpec) -> Artifact {
    let cfgs = [LsqConfig::default(), LsqConfig::all_techniques_one_port()];
    let base_rows = run_matrix(&cfgs, false, spec);
    let scaled_rows = run_matrix(&cfgs, true, spec);
    let mut t = Table::new(vec!["bench", "base (8-wide)", "scaled (12-wide, 3-cyc L1)"]);
    let mut base_sp = Vec::new();
    let mut scaled_sp = Vec::new();
    for ((name, b), (_, s)) in base_rows.iter().zip(&scaled_rows) {
        let bsp = b[1].speedup_over(&b[0]);
        let ssp = s[1].speedup_over(&s[0]);
        t.row(vec![name.to_string(), fmt2(bsp), fmt2(ssp)]);
        base_sp.push((*name, bsp));
        scaled_sp.push((*name, ssp));
    }
    Artifact {
        id: "Figure 12",
        title: "Performance of a one-ported LSQ with the three techniques combined \
                (speedup over the 2-ported conventional LSQ on the same processor)",
        table: t,
        notes: vec![
            speedup_row_note("Measured base processor", &base_sp),
            speedup_row_note("Measured scaled processor", &scaled_sp),
            "Paper: +6% Int / +23% Fp on the base processor (up to +15%/+59%), larger on \
             the scaled processor — more in-flight instructions put more pressure on the \
             LSQ, especially for FP codes."
                .into(),
        ],
    }
}

/// Supplementary (not in the paper): the aggressive and pair predictors
/// differ only through table aliasing, and SPEC-scale programs have
/// 10-50k static memory instructions pressing on the 4K-entry SSIT. The
/// synthetic programs here have a few hundred, so at Table 1 sizes the
/// two predictors coincide. This experiment shrinks the tables to match
/// SPEC's static-footprint-to-table-size ratio, restoring the paper's
/// contrast: the alias-free aggressive predictor keeps skipping searches
/// (and squashing), while the realistic pair predictor turns conservative
/// under aliasing.
pub fn supplementary_ssit_pressure(spec: RunSpec) -> Artifact {
    let small = |p| LsqConfig {
        predictor: p,
        ssit_entries: 32,
        lfst_entries: 8,
        ..LsqConfig::default()
    };
    let cfgs = [
        LsqConfig::default(),
        small(PredictorKind::Aggressive),
        small(PredictorKind::Pair),
    ];
    let rows = run_matrix(&cfgs, false, spec);
    let mut t = Table::new(vec![
        "bench",
        "aggr demand",
        "pair demand",
        "aggr speedup",
        "pair speedup",
        "aggr squashes",
        "pair squashes",
    ]);
    let mut aggr_sp = Vec::new();
    let mut pair_sp = Vec::new();
    for (name, r) in &rows {
        let base = &r[0];
        let b = base.lsq.sq_searches.max(1) as f64;
        t.row(vec![
            name.to_string(),
            fmt2(r[1].lsq.sq_searches as f64 / b),
            fmt2(r[2].lsq.sq_searches as f64 / b),
            fmt2(r[1].speedup_over(base)),
            fmt2(r[2].speedup_over(base)),
            format!("{}", r[1].lsq.commit_violations),
            format!("{}", r[2].lsq.commit_violations),
        ]);
        aggr_sp.push((*name, r[1].speedup_over(base)));
        pair_sp.push((*name, r[2].speedup_over(base)));
    }
    Artifact {
        id: "Supplementary",
        title: "Aggressive vs pair predictor under SPEC-scale table pressure                 (32-entry SSIT / 8-entry LFST; demand and speedup vs the 2-ported base)",
        table: t,
        notes: vec![
            speedup_row_note("Measured aggressive", &aggr_sp),
            speedup_row_note("Measured pair", &pair_sp),
            "Expected shape (paper Figures 6-7): under aliasing the pair predictor's              demand rises above the aggressive predictor's (conservatism), while the              aggressive predictor pays more squashes."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// CPI stacks — cycle accounting across the paper's techniques
// ----------------------------------------------------------------------

/// Runs `f` with `LSQ_ACCOUNTING=1`, restoring the variable's prior
/// state afterwards, so every *fresh* job started inside `f` carries a
/// CPI stack. (The engine's result cache has no accounting dimension;
/// an artifact run starts with a cold cache, so all its jobs are fresh.)
fn with_accounting<R>(f: impl FnOnce() -> R) -> R {
    let prior = lsq_util::knobs::get_os("LSQ_ACCOUNTING");
    std::env::set_var("LSQ_ACCOUNTING", "1");
    let out = f();
    match prior {
        Some(v) => std::env::set_var("LSQ_ACCOUNTING", v),
        None => std::env::remove_var("LSQ_ACCOUNTING"),
    }
    out
}

/// The CPI-stack table's column groups: a label and the accounting
/// components (by [`lsq_pipeline::Component::name`]) folded into it.
const CPI_GROUPS: &[(&str, &[&str])] = &[
    ("base", &["base"]),
    ("front", &["frontend"]),
    ("redir", &["branch_redirect"]),
    ("squash", &["squash_replay"]),
    ("full", &["rob_full", "iq_full", "lq_full", "sq_full"]),
    ("search", &["search_port", "dcache_port"]),
    ("order", &["mem_ordering", "store_drain"]),
    ("exec", &["dep_chain", "exec_latency"]),
    ("cache", &["cache_l2", "cache_mem"]),
    ("seg", &["segment_overhead"]),
];

/// Supplementary (not in the paper): per-benchmark CPI stacks from the
/// cycle accountant, for the 2-ported baseline and the paper's three
/// techniques. Every commit slot of every cycle is charged to exactly
/// one component, so each row's group columns sum to its `cpi` — the
/// stack is a partition of simulated time, not a sample.
pub fn cpi_stack(spec: RunSpec) -> Artifact {
    let cfgs = [
        LsqConfig::default(),
        LsqConfig {
            predictor: PredictorKind::Pair,
            ..LsqConfig::default()
        },
        LsqConfig::with_techniques(1),
        LsqConfig::segmented(SegAlloc::SelfCircular),
    ];
    let designs = ["conv2", "pair", "lb1", "seg"];
    let rows = with_accounting(|| run_matrix(&cfgs, false, spec));
    let mut header = vec!["bench", "design", "cpi"];
    header.extend(CPI_GROUPS.iter().map(|(label, _)| *label));
    let mut t = Table::new(header);
    for (name, r) in &rows {
        for (design, res) in designs.iter().zip(r) {
            let stack = res
                .cpi_stack
                .as_ref()
                // lsq-lint: allow(no-unwrap-in-lib, reason = "the matrix above ran with accounting enabled, so every record carries a CPI stack")
                .expect("accounting was enabled for this matrix");
            let denom = (stack.commit_width * res.committed.max(1)) as f64;
            let mut row = vec![
                name.to_string(),
                design.to_string(),
                fmt2(res.cycles as f64 / res.committed.max(1) as f64),
            ];
            for (_, components) in CPI_GROUPS {
                let slots: u64 = components.iter().map(|c| stack.slots(c)).sum();
                row.push(format!("{:.3}", slots as f64 / denom));
            }
            t.row(row);
        }
    }
    Artifact {
        id: "CPI stacks",
        title: "Cycle-accounting CPI stacks per benchmark: 2-ported conventional \
                baseline vs. the paper's three techniques (pair predictor, \
                1-entry load buffer, segmented SQ)",
        table: t,
        notes: vec![
            "Each commit slot of each cycle is charged to exactly one component \
             (components sum exactly to cycles x commit_width), so the group \
             columns of a row sum to its cpi."
                .into(),
            "Groups: base = useful commit slots; front = fetch-limited (i-cache); \
             redir = branch redirect; squash = ordering-violation squash+replay; \
             full = ROB/IQ/LQ/SQ allocation stalls; search = LSQ search-port and \
             D-cache-port stalls; order = memory-ordering rejections and \
             store-drain; exec = dependence chains and execution latency; \
             cache = L2/memory-level load misses; seg = segment-walk overhead."
                .into(),
            "Read the techniques against the baseline: lb1 should shift cycles \
             out of `search` (fewer LQ searches contend for ports) and segmented \
             may add `seg`; the pair predictor trades `order`/`search` against \
             `squash`."
                .into(),
        ],
    }
}

// ----------------------------------------------------------------------
// Critical path — longest dependency chain per design point
// ----------------------------------------------------------------------

/// Runs one `(benchmark, design point)` pair with a lifecycle recorder
/// attached and analyzes the critical path over the measured window
/// (warm-up records are drained and discarded first). Returns `None`
/// when no committed instruction was recorded.
fn critical_path_for(bench: &str, lsq: LsqConfig, spec: RunSpec) -> Option<CriticalPath> {
    // lsq-lint: allow(no-unwrap-in-lib, reason = "benchmarks come from BenchProfile's own table")
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(spec.seed);
    // Hold the whole measured window so the chain walk never hits an
    // evicted producer mid-window.
    let cap = usize::try_from(spec.instrs).unwrap_or(usize::MAX).max(4096);
    let mut sim = Simulator::with_lifecycle(
        SimConfig::with_lsq(lsq),
        NopTracer,
        NopProfiler,
        NopAccountant,
        PipeviewRecorder::new(cap),
    );
    sim.prewarm(&stream.data_regions(), stream.code_region());
    if spec.warmup > 0 {
        let _ = sim.run(&mut stream, spec.warmup);
        let _ = sim.take_pipeview_records();
    }
    let _ = sim.run(&mut stream, spec.instrs);
    let records = sim.take_pipeview_records()?;
    CriticalPath::analyze(&records)
}

/// Supplementary (not in the paper): the longest producer→consumer
/// dependency chain of the measured window, per benchmark, for the
/// 2-ported baseline and the paper's three techniques. Every cycle of
/// the chain is attributed to exactly one component, so the component
/// columns of a row sum to 100% of `cycles` — the per-instruction
/// analogue of the CPI stack's partition invariant.
pub fn critical_path(spec: RunSpec) -> Artifact {
    let cfgs = [
        LsqConfig::default(),
        LsqConfig {
            predictor: PredictorKind::Pair,
            ..LsqConfig::default()
        },
        LsqConfig::with_techniques(1),
        LsqConfig::segmented(SegAlloc::SelfCircular),
    ];
    let designs = ["conv2", "pair", "lb1", "seg"];
    let benches: Vec<&'static str> = BenchProfile::all().iter().map(|p| p.name).collect();
    // In-process recorded runs (the engine's cache has no lifecycle
    // dimension), fanned out on the work-stealing pool.
    let tasks: Vec<_> = benches
        .iter()
        .flat_map(|&bench| {
            cfgs.iter().zip(designs).map(move |(&lsq, design)| {
                move || (bench, design, critical_path_for(bench, lsq, spec))
            })
        })
        .collect();
    let mut header = vec!["bench", "design", "cycles", "instrs"];
    header.extend(CP_COMPONENTS);
    let mut t = Table::new(header);
    for (bench, design, cp) in crate::engine::run_tasks(tasks) {
        let Some(cp) = cp else { continue };
        assert_eq!(
            cp.total(),
            cp.length,
            "critical-path components must sum to the chain length"
        );
        let mut row = vec![
            bench.to_string(),
            design.to_string(),
            cp.length.to_string(),
            cp.instructions.to_string(),
        ];
        let denom = cp.length.max(1) as f64;
        for &cycles in &cp.components {
            row.push(format!("{:.1}%", 100.0 * cycles as f64 / denom));
        }
        t.row(row);
    }
    Artifact {
        id: "Critical path",
        title: "Longest dependency chain of the measured window per benchmark: \
                2-ported conventional baseline vs. the paper's three techniques \
                (pair predictor, 1-entry load buffer, segmented SQ)",
        table: t,
        notes: vec![
            "The chain walks backwards from the last-completing committed \
             instruction, always following the producer whose result arrived \
             last; each link's interval is attributed to exactly one component, \
             so the component columns sum to 100% of `cycles`."
                .into(),
            "Components: frontend = fetch-starved; schedule = scheduler/structural \
             wait after data was ready; sq_search = segmented SQ-search extra \
             cycles; exec = non-load execution; mem_l1/l2/dram = load latency by \
             the deepest level reached."
                .into(),
            "Read the techniques against the baseline: segmented SQ moves chain \
             cycles into `sq_search`; a long `mem_dram` share means the chain is \
             memory-bound and LSQ techniques mostly shift the non-memory \
             remainder."
                .into(),
        ],
    }
}

/// Every artifact name accepted by [`by_name`], in paper order — the
/// menu printed by `cargo run -p lsq-experiments --bin artifact`.
pub const ARTIFACT_NAMES: &[&str] = &[
    "table1",
    "table2",
    "fig6",
    "fig7",
    "table3",
    "fig8",
    "table4",
    "fig9",
    "fig10",
    "fig11",
    "table5",
    "table6",
    "fig12",
    "supplementary",
    "cpi_stack",
    "critical_path",
];

/// Runs the single artifact called `name` (one of [`ARTIFACT_NAMES`]);
/// `None` for an unknown name.
pub fn by_name(name: &str, spec: RunSpec) -> Option<Artifact> {
    Some(match name {
        "table1" => table1(),
        "table2" => table2(spec),
        "fig6" => fig6(spec),
        "fig7" => fig7(spec),
        "table3" => table3(spec),
        "fig8" => fig8(spec),
        "table4" => table4(spec),
        "fig9" => fig9(spec),
        "fig10" => fig10(spec),
        "fig11" => fig11(spec),
        "table5" => table5(spec),
        "table6" => table6(spec),
        "fig12" => fig12(spec),
        "supplementary" => supplementary_ssit_pressure(spec),
        "cpi_stack" => cpi_stack(spec),
        "critical_path" => critical_path(spec),
        _ => return None,
    })
}

/// Runs every paper artifact in paper order. `cpi_stack` is excluded:
/// it flips `LSQ_ACCOUNTING` for its matrix, and the engine's result
/// cache (shared across artifacts in one process, keyed without an
/// accounting dimension) would leak stacks into — or hide them from —
/// the other artifacts' runs. `critical_path` is excluded for the same
/// shape of reason: its runs bypass the cache entirely (lifecycle
/// records don't travel through cached [`SimResult`]s), so batching it
/// here would only pad `all()`'s runtime. Request both by name.
pub fn all(spec: RunSpec) -> Vec<Artifact> {
    let predictor_rows = predictor_matrix(spec);
    vec![
        table1(),
        table2(spec),
        fig6_from(&predictor_rows),
        fig7_from(&predictor_rows),
        table3(spec),
        fig8(spec),
        table4(spec),
        fig9(spec),
        fig10(spec),
        fig11(spec),
        table5(spec),
        table6(spec),
        fig12(spec),
        supplementary_ssit_pressure(spec),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: RunSpec = RunSpec {
        warmup: 1_000,
        instrs: 4_000,
        seed: 1,
    };

    #[test]
    fn by_name_covers_every_artifact_name() {
        assert_eq!(ARTIFACT_NAMES.len(), 16);
        assert!(by_name("nonesuch", TINY).is_none());
        let a = by_name("table1", TINY).expect("table1 exists");
        assert_eq!(a.id, "Table 1");
        let a = by_name("table3", TINY).expect("table3 exists");
        assert_eq!(a.id, "Table 3");
        let a = by_name("fig8", TINY).expect("fig8 exists");
        assert_eq!(a.id, "Figure 8");
    }

    #[test]
    fn cpi_groups_partition_every_component() {
        let grouped: Vec<&str> = CPI_GROUPS
            .iter()
            .flat_map(|(_, cs)| cs.iter().copied())
            .collect();
        for name in lsq_pipeline::Component::NAMES {
            assert_eq!(
                grouped.iter().filter(|c| **c == name).count(),
                1,
                "component {name} must appear in exactly one group"
            );
        }
        assert_eq!(grouped.len(), lsq_pipeline::Component::NAMES.len());
    }

    #[test]
    fn table1_lists_paper_parameters() {
        let a = table1();
        let s = a.to_string();
        assert!(s.contains("256 entries"));
        assert!(s.contains("14-cycle"));
        assert!(s.contains("4096-entry SSIT"));
    }

    #[test]
    fn fig6_ratios_are_fractions() {
        let a = fig6(TINY);
        assert_eq!(a.table.len(), 18);
        // Every data cell is a ratio in (0, 1.5].
        for line in a.table.to_string().lines().skip(2) {
            for cell in line.split_whitespace().skip(1) {
                let v: f64 = cell.parse().expect("numeric cell");
                assert!((0.0..=1.5).contains(&v), "ratio {v}");
            }
        }
    }

    #[test]
    fn artifacts_render_nonempty() {
        for a in [table3(TINY), fig8(TINY), table4(TINY), table6(TINY)] {
            assert!(!a.table.is_empty(), "{} empty", a.id);
            assert!(!a.to_string().is_empty());
        }
    }

    #[test]
    fn fig10_has_all_design_points() {
        let a = fig10(TINY);
        assert_eq!(a.table.len(), 18);
        let s = a.to_string();
        assert!(s.contains("1port+tech"));
        assert!(s.contains("4port"));
        assert!(s.contains("Int.Avg"));
    }

    #[test]
    fn supplementary_reports_both_predictors() {
        let a = supplementary_ssit_pressure(TINY);
        assert_eq!(a.table.len(), 18);
        let s = a.to_string();
        assert!(s.contains("aggr demand"));
        assert!(s.contains("pair squashes"));
    }

    #[test]
    fn fig12_covers_base_and_scaled() {
        let a = fig12(TINY);
        assert_eq!(a.table.len(), 18);
        assert!(a.to_string().contains("scaled"));
    }
}
