//! Reproduces the paper's fig6; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig6(lsq_experiments::RunSpec::default())
    );
}
