//! `bench` — measure simulator throughput (host MIPS) on the standard
//! experiment matrix and write a machine-readable `BENCH_sim.json`.
//!
//! ```text
//! cargo run --release -p lsq-experiments --bin bench -- \
//!     --out BENCH_sim.json --instrs 250000 --warmup 100000
//! ```
//!
//! The matrix is the four design points the experiments lean on most —
//! the two-ported conventional base, the pair predictor, the 1-ported
//! load buffer, and the self-circular segmented queue — each run over
//! all 18 Table 2 benchmarks. Every job records the host-side
//! throughput (`sim_mips`, simulated instructions including warm-up per
//! wall second) stamped by the experiment engine, and the file carries
//! the git revision so before/after pairs are self-describing.
//!
//! Flags (all optional):
//!
//! * `--out <path>`     output path (default `BENCH_sim.json`)
//! * `--instrs <n>`     measured instructions per job (default 250000)
//! * `--warmup <n>`     warm-up instructions per job (default 100000)
//! * `--seed <n>`       workload seed (default 1)
//!
//! Single-process wall-clock measurement: pin `LSQ_JOBS=1` for the
//! least noisy numbers, and interleave before/after binaries when
//! comparing revisions (see "Simulator performance" in EXPERIMENTS.md).

use lsq_core::{LsqConfig, PredictorKind, SegAlloc};
use lsq_experiments::runner::{run_matrix, RunSpec};
use lsq_obs::Json;

/// The standard throughput matrix: one representative per LSQ family.
fn design_points() -> Vec<(&'static str, LsqConfig)> {
    vec![
        ("conventional2", LsqConfig::default()),
        (
            "pair",
            LsqConfig {
                predictor: PredictorKind::Pair,
                ..LsqConfig::default()
            },
        ),
        ("lb1", LsqConfig::with_techniques(1)),
        ("segmented", LsqConfig::segmented(SegAlloc::SelfCircular)),
    ]
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\nusage: bench [--out <path>] [--instrs <n>] [--warmup <n>] [--seed <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out = String::from("BENCH_sim.json");
    let mut spec = RunSpec::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i - 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage("missing flag value"))
        };
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                out = need(&mut i).to_string();
            }
            "--instrs" => {
                i += 1;
                spec.instrs = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --instrs"));
            }
            "--warmup" => {
                i += 1;
                spec.warmup = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --warmup"));
            }
            "--seed" => {
                i += 1;
                spec.seed = need(&mut i).parse().unwrap_or_else(|_| usage("bad --seed"));
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let points = design_points();
    let configs: Vec<LsqConfig> = points.iter().map(|(_, c)| *c).collect();
    let started = std::time::Instant::now();
    let rows = run_matrix(&configs, false, spec);
    let total_wall = started.elapsed();

    let mut jobs = Vec::new();
    let mut mips = Vec::new();
    for (bench, results) in &rows {
        for ((label, _), r) in points.iter().zip(results) {
            mips.push(r.sim_mips);
            jobs.push(Json::obj(vec![
                ("bench", Json::from(*bench)),
                ("config", Json::from(*label)),
                ("sim_mips", r.sim_mips.into()),
                ("wall_nanos", r.wall_nanos.into()),
                ("cycles", r.cycles.into()),
                ("committed", r.committed.into()),
            ]));
        }
    }
    let geomean = lsq_stats::geomean(&mips).unwrap_or(0.0);

    let doc = Json::obj(vec![
        ("git_rev", Json::from(git_rev())),
        ("instrs", spec.instrs.into()),
        ("warmup", spec.warmup.into()),
        ("seed", spec.seed.into()),
        ("geomean_sim_mips", geomean.into()),
        ("total_wall_nanos", (total_wall.as_nanos() as u64).into()),
        ("jobs", Json::Arr(jobs)),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "{}: geomean {geomean:.2} sim-MIPS over {} jobs",
        out,
        mips.len()
    );
}
