//! Reproduces the paper's fig7; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig7(lsq_experiments::RunSpec::default())
    );
}
