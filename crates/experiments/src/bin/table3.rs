//! Reproduces the paper's table3; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::table3(lsq_experiments::RunSpec::default())
    );
}
