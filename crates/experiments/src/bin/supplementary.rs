//! Supplementary experiment: predictor behaviour under SPEC-scale SSIT
//! pressure; see `lsq_experiments::experiments::supplementary_ssit_pressure`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::supplementary_ssit_pressure(
            lsq_experiments::RunSpec::default()
        )
    );
}
