//! Program-seed calibration: for each benchmark, scan candidate static
//! program seeds and report the one whose base-configuration IPC lands
//! closest to the paper's Table 2 value. The winners are baked into the
//! profiles as `program_seed`.

use lsq_core::LsqConfig;
use lsq_pipeline::{SimConfig, Simulator};
use lsq_trace::{BenchProfile, TraceGenerator};

const PAPER: &[(&str, f64)] = &[
    ("bzip", 2.5),
    ("gcc", 2.1),
    ("gzip", 2.0),
    ("mcf", 0.3),
    ("parser", 1.9),
    ("perl", 3.0),
    ("twolf", 1.5),
    ("vortex", 2.2),
    ("vpr", 1.3),
    ("ammp", 1.2),
    ("applu", 2.6),
    ("art", 0.3),
    ("equake", 1.1),
    ("mesa", 3.3),
    ("mgrid", 2.2),
    ("sixtrack", 2.9),
    ("swim", 1.0),
    ("wupwise", 2.9),
];

/// Returns (ipc, mean out-of-order-issued loads) for one candidate
/// static program.
fn ipc_for(profile: &BenchProfile, pseed: u64) -> (f64, f64) {
    let prog = lsq_trace::StaticProgram::build(profile, pseed);
    let mut stream = TraceGenerator::new(profile.name, prog, 1);
    let mut sim = Simulator::new(SimConfig::with_lsq(LsqConfig::default()));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000);
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, 150_000);
    let ipc = (after.committed - before.committed) as f64 / (after.cycles - before.cycles) as f64;
    (ipc, after.ooo_issued_loads)
}

fn main() {
    let seeds: Vec<u64> = (0..56).collect();
    // One task per benchmark on the engine's work-stealing scheduler
    // (honors LSQ_JOBS; defaults to available parallelism).
    let tasks: Vec<_> = PAPER
        .iter()
        .map(|&(name, target)| {
            let seeds = seeds.clone();
            move || {
                let p = BenchProfile::named(name).unwrap();
                let mut best = (u64::MAX, f64::INFINITY, 0.0, 0.0);
                for &s in &seeds {
                    let (ipc, ooo) = ipc_for(p, s);
                    // Score: IPC error plus a penalty for exceeding
                    // the paper's < 3 out-of-order-issued loads.
                    let err = (ipc - target).abs() / target;
                    let score = err + 0.08 * (ooo - 3.0).max(0.0);
                    if score < best.1 {
                        best = (s, score, ipc, ooo);
                    }
                }
                (name, target, best)
            }
        })
        .collect();
    for (name, target, (seed, score, ipc, ooo)) in lsq_experiments::engine::run_tasks(tasks) {
        println!(
            "{name}: best seed {seed} ipc {ipc:.2} ooo {ooo:.1} (target {target}, score {score:.2})"
        );
    }
}
