//! Runs every reproduced table and figure in paper order.
//!
//! Set `LSQ_EXPERIMENTS_OUT=<path>` to also write the output to a file
//! (used to refresh the measured sections of EXPERIMENTS.md).

use std::io::Write;
use std::time::Instant;

fn main() {
    let started = Instant::now();
    let artifacts = lsq_experiments::all(lsq_experiments::RunSpec::default());
    let mut out = String::new();
    for a in &artifacts {
        out.push_str(&a.to_string());
        out.push('\n');
    }
    print!("{out}");
    if let Some(path) = lsq_util::knobs::get("LSQ_EXPERIMENTS_OUT") {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(out.as_bytes()).expect("write output file");
        eprintln!("wrote {path}");
    }
    let (hits, misses) = lsq_experiments::engine::global().stats();
    eprintln!(
        "engine: {misses} unique simulations, {hits} served from cache, {:.1}s wall",
        started.elapsed().as_secs_f64()
    );
}
