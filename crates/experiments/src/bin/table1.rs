//! Reproduces the paper's Table 1 (configuration dump).

fn main() {
    println!("{}", lsq_experiments::experiments::table1());
}
