//! Reproduces the paper's fig9; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig9(lsq_experiments::RunSpec::default())
    );
}
