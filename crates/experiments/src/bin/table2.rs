//! Reproduces the paper's table2; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::table2(lsq_experiments::RunSpec::default())
    );
}
