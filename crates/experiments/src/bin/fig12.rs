//! Reproduces the paper's fig12; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig12(lsq_experiments::RunSpec::default())
    );
}
