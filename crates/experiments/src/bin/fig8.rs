//! Reproduces the paper's fig8; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig8(lsq_experiments::RunSpec::default())
    );
}
