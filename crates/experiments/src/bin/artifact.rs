//! Reproduces a single table or figure of the paper, selected by name.
//!
//! ```text
//! cargo run --release -p lsq-experiments --bin artifact -- fig10
//! cargo run --release -p lsq-experiments --bin artifact -- table3 table6
//! ```
//!
//! `artifact list` (or `--list`) prints the available names, one per
//! line on stdout, for shell completion and scripting. With no
//! arguments it prints the same menu as a usage error. Use `--bin all`
//! to run everything in paper order.

use lsq_experiments::experiments::{by_name, ARTIFACT_NAMES};
use lsq_experiments::RunSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "list" || a == "--list" || a == "-l")
    {
        for name in ARTIFACT_NAMES {
            println!("{name}");
        }
        std::process::exit(0);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help") {
        eprintln!("usage: artifact <name>... (one or more of the following; `artifact list` prints them on stdout)");
        for name in ARTIFACT_NAMES {
            eprintln!("  {name}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let spec = RunSpec::default();
    for name in &args {
        match by_name(name, spec) {
            Some(a) => println!("{a}"),
            None => {
                eprintln!(
                    "unknown artifact {name:?}; expected one of: {}",
                    ARTIFACT_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
