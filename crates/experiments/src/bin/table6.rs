//! Reproduces the paper's table6; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::table6(lsq_experiments::RunSpec::default())
    );
}
