//! Reproduces the paper's fig11; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig11(lsq_experiments::RunSpec::default())
    );
}
