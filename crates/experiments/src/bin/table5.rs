//! Reproduces the paper's table5; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::table5(lsq_experiments::RunSpec::default())
    );
}
