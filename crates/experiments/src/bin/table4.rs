//! Reproduces the paper's table4; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::table4(lsq_experiments::RunSpec::default())
    );
}
