//! Reproduces the paper's fig10; see `lsq_experiments::experiments`.

fn main() {
    println!(
        "{}",
        lsq_experiments::experiments::fig10(lsq_experiments::RunSpec::default())
    );
}
