//! Ad-hoc diagnostics for calibration (not part of the experiment suite).
use lsq_core::LsqConfig;
use lsq_experiments::runner::{run_design_point, RunSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("gcc");
    let r = run_design_point(bench, LsqConfig::default(), false, RunSpec::default());
    println!(
        "bench {bench}: ipc {:.3} cycles {} committed {}",
        r.ipc(),
        r.cycles,
        r.committed
    );
    println!(
        "  loads {} stores {} branches {}",
        r.loads_committed, r.stores_committed, r.branches_committed
    );
    println!(
        "  brmiss {:.2}% l1d {:.2}% l2 {:.2}%",
        r.branch_mispredict_rate() * 100.0,
        r.l1d_miss_rate * 100.0,
        r.l2_miss_rate * 100.0
    );
    println!(
        "  violations {} squashed {}",
        r.violation_squashes, r.instructions_squashed
    );
    println!(
        "  lqOcc {:.1} sqOcc {:.1} oooLoads {:.2}",
        r.lq_occupancy, r.sq_occupancy, r.ooo_issued_loads
    );
    let l = &r.lsq;
    println!(
        "  sq_searches {} hits {} lq_by_stores {} lq_by_loads {}",
        l.sq_searches, l.sq_search_hits, l.lq_searches_by_stores, l.lq_searches_by_loads
    );
    println!(
        "  stalls: sq_port {} lq_port {} commit_delay {} lb_full {} inorder {} ss_wait {}",
        l.sq_port_stalls,
        l.lq_port_stalls,
        l.commit_port_delays,
        l.lb_full_stalls,
        l.in_order_stalls,
        l.store_set_waits
    );
    println!(
        "  issued: loads {} stores {} ; dispatched: loads {} stores {}",
        l.loads_issued, l.stores_issued, l.loads_dispatched, l.stores_dispatched
    );
}
