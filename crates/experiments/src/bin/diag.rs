//! Deep-dive diagnostics for one benchmark on the base design point.
//!
//! ```text
//! cargo run --release -p lsq-experiments --bin diag -- gcc --instrs 50000 --top 5
//! ```
//!
//! Prints every counter of the run as a registry report (including the
//! Table 3 predictor counters), the per-static-PC squash / useless-search
//! attribution, and the trace-ring occupancy. When `LSQ_TRACE` /
//! `LSQ_SAMPLE_CYCLES` are set the captured trace and timeline are also
//! written to the configured files.

use lsq_core::LsqConfig;
use lsq_experiments::runner::{run_traced, RunSpec};
use lsq_obs::TraceConfig;

fn main() {
    let mut bench = String::from("gcc");
    let mut spec = RunSpec::default();
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} expects an integer argument");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--warmup" => spec.warmup = grab("--warmup"),
            "--instrs" => spec.instrs = grab("--instrs"),
            "--top" => top = grab("--top") as usize,
            "--help" | "-h" => {
                eprintln!("usage: diag [bench] [--warmup N] [--instrs N] [--top N]");
                std::process::exit(0);
            }
            name => bench = name.to_string(),
        }
    }

    // Trace even without LSQ_TRACE so the attribution report is always
    // available; files are only written when LSQ_TRACE names a path.
    let trace = TraceConfig::from_env();
    let ring = trace.clone().unwrap_or_else(|| {
        TraceConfig::parse(
            "diag-unwritten",
            lsq_util::knobs::get("LSQ_SAMPLE_CYCLES").as_deref(),
        )
    });
    let (r, buf, sampler) = run_traced(&bench, LsqConfig::default(), false, spec, &ring);

    println!("{}", r.registry(&format!("diag: {bench} (base)")).render());
    println!();
    if buf.attribution().is_empty() {
        println!("attribution: no squashes or useless searches recorded");
    } else {
        println!("{}", buf.attribution().report(top));
    }
    println!(
        "trace ring: {} of {} events kept ({} dropped)",
        buf.len(),
        buf.total(),
        buf.dropped()
    );
    if let Some(cfg) = &trace {
        match cfg.write(&buf, sampler.as_ref()) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!(
                    "error: could not write LSQ_TRACE={}: {e}",
                    cfg.path.display()
                );
                std::process::exit(1);
            }
        }
    }
}
