//! `bench-diff` — noise-aware regression gate over two `BENCH_sim*.json`
//! reports (as written by the `bench` binary).
//!
//! ```text
//! cargo run --release -p lsq-experiments --bin bench-diff -- \
//!     BENCH_sim.before.json BENCH_sim.after.json
//! ```
//!
//! Prints a per-job comparison table and exits 0 when the gate passes,
//! 1 on a regression, 2 on usage or parse errors. See
//! [`lsq_experiments::benchdiff`] for the gate semantics (geomean and
//! per-job thresholds, short-job exemption).
//!
//! Flags (all optional, after the two file paths):
//!
//! * `--tolerance <frac>`      geomean gate (default 0.05 = 5%)
//! * `--job-tolerance <frac>`  per-job gate (default 0.25 = 25%)
//! * `--min-wall-ms <n>`       per-job gate wall floor (default 50)
//! * `--json`                  emit the comparison as JSON on stdout
//!   (exit code still carries the verdict)

use lsq_experiments::benchdiff::{diff, BenchReport, DiffOptions};

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\nusage: bench-diff <before.json> <after.json> \
         [--tolerance <frac>] [--job-tolerance <frac>] [--min-wall-ms <n>] [--json]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("could not read {path}: {e}")));
    BenchReport::parse(&text).unwrap_or_else(|e| usage(&format!("{path}: {e}")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut json = false;
    let mut i = 0;
    while i < argv.len() {
        let need = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i - 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage("missing flag value"))
        };
        match argv[i].as_str() {
            "--tolerance" => {
                i += 1;
                opts.geomean_tolerance = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --tolerance"));
            }
            "--job-tolerance" => {
                i += 1;
                opts.job_tolerance = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --job-tolerance"));
            }
            "--min-wall-ms" => {
                i += 1;
                let ms: u64 = need(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --min-wall-ms"));
                opts.min_wall_nanos = ms * 1_000_000;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let [before_path, after_path] = paths.as_slice() else {
        usage("expected exactly two report paths");
    };

    let before = load(before_path);
    let after = load(after_path);
    let report = diff(&before, &after, &opts);
    if json {
        println!("{}", report.to_json(&opts));
    } else {
        println!(
            "before: {} (geomean {:.2} sim-MIPS, rev {})",
            before_path, before.geomean_sim_mips, before.git_rev
        );
        println!(
            "after:  {} (geomean {:.2} sim-MIPS, rev {})",
            after_path, after.geomean_sim_mips, after.git_rev
        );
        print!("{}", report.render(&opts));
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}
