//! `sim` — run any benchmark through any LSQ design point from the
//! command line.
//!
//! ```text
//! cargo run --release -p lsq-experiments --bin sim -- \
//!     --bench equake --ports 1 --predictor pair --load-buffer 2 \
//!     --segmented self-circular --instrs 250000
//! ```
//!
//! Flags (all optional except `--bench`):
//!
//! * `--bench <name>`          one of the 18 Table 2 benchmarks (or `all`)
//! * `--ports <n>`             search ports per queue (default 2)
//! * `--predictor <kind>`      `none` | `perfect` | `aggressive` | `pair`
//! * `--load-buffer <n>`       n-entry load buffer (replaces LQ searches)
//! * `--in-order [search]`     in-order load issue (optionally still searching)
//! * `--segmented <alloc>`     `self-circular` | `no-self-circular` (4 x 28)
//! * `--lq <n> --sq <n>`       unsegmented queue capacities (default 32)
//! * `--scaled`                the §4.3 12-wide scaled processor
//! * `--instrs <n>`            measured instructions (default 250000)
//! * `--warmup <n>`            warm-up instructions (default 100000)
//! * `--seed <n>`              dynamic workload seed (default 1)
//! * `--csv`                   machine-readable one-line-per-benchmark output

use lsq_core::{LoadOrderPolicy, LsqConfig, PredictorKind, SegAlloc};
use lsq_experiments::runner::{run_design_point, RunSpec};
use lsq_pipeline::SimResult;
use lsq_trace::BenchProfile;

#[derive(Debug)]
struct Args {
    bench: String,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
    csv: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nsee the module docs: cargo doc -p lsq-experiments --bin sim");
    eprintln!("benchmarks:");
    for p in BenchProfile::all() {
        eprint!(" {}", p.name);
    }
    eprintln!();
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut bench = None;
    let mut lsq = LsqConfig::default();
    let mut scaled = false;
    let mut spec = RunSpec::default();
    let mut csv = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i - 1)
            .cloned()
            .unwrap_or_else(|| usage("missing flag value"))
    };
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        match flag.as_str() {
            "--bench" => bench = Some(next(&mut i)),
            "--ports" => {
                lsq.ports = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--ports wants a number"))
            }
            "--predictor" => {
                lsq.predictor = match next(&mut i).as_str() {
                    "none" => PredictorKind::None,
                    "perfect" => PredictorKind::Perfect,
                    "aggressive" => PredictorKind::Aggressive,
                    "pair" => PredictorKind::Pair,
                    other => usage(&format!("unknown predictor {other}")),
                }
            }
            "--load-buffer" => {
                let n = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--load-buffer wants a number"));
                lsq.load_order = LoadOrderPolicy::LoadBuffer(n);
            }
            "--in-order" => {
                // Optional positional modifier: `search` keeps the search.
                if argv.get(i).map(String::as_str) == Some("search") {
                    i += 1;
                    lsq.load_order = LoadOrderPolicy::InOrderAlwaysSearch;
                } else {
                    lsq.load_order = LoadOrderPolicy::InOrderNoSearch;
                }
            }
            "--segmented" => {
                lsq.segmentation = Some(lsq_core::SegConfig::paper(match next(&mut i).as_str() {
                    "self-circular" => SegAlloc::SelfCircular,
                    "no-self-circular" => SegAlloc::NoSelfCircular,
                    other => usage(&format!("unknown allocation {other}")),
                }))
            }
            "--lq" => {
                lsq.lq_entries = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--lq wants a number"))
            }
            "--sq" => {
                lsq.sq_entries = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--sq wants a number"))
            }
            "--scaled" => scaled = true,
            "--instrs" => {
                spec.instrs = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--instrs wants a number"))
            }
            "--warmup" => {
                spec.warmup = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--warmup wants a number"))
            }
            "--seed" => {
                spec.seed = next(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--csv" => csv = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let bench = bench.unwrap_or_else(|| usage("--bench is required (or `--bench all`)"));
    if bench != "all" && BenchProfile::named(&bench).is_none() {
        usage(&format!("unknown benchmark {bench}"));
    }
    if let Err(e) = lsq.validate() {
        usage(&e.to_string());
    }
    Args {
        bench,
        lsq,
        scaled,
        spec,
        csv,
    }
}

fn print_human(bench: &str, r: &SimResult) {
    println!("== {bench} ==");
    println!(
        "  IPC                 {:.3}  ({} instrs, {} cycles)",
        r.ipc(),
        r.committed,
        r.cycles
    );
    println!(
        "  branch mispredict   {:.2}%",
        r.branch_mispredict_rate() * 100.0
    );
    println!("  L1D miss            {:.2}%", r.l1d_miss_rate * 100.0);
    println!(
        "  SQ searches         {} ({} forwarded)",
        r.lsq.sq_searches, r.lsq.sq_search_hits
    );
    println!(
        "  LQ searches         {} by stores + {} by loads (+{} load-buffer)",
        r.lsq.lq_searches_by_stores, r.lsq.lq_searches_by_loads, r.lsq.lb_searches
    );
    println!(
        "  violations/squashes {} store-load, {} at commit",
        r.lsq.violations, r.lsq.commit_violations
    );
    println!(
        "  occupancy           LQ {:.1} / SQ {:.1}; OoO-issued loads {:.1}",
        r.lq_occupancy, r.sq_occupancy, r.ooo_issued_loads
    );
}

fn print_csv_header() {
    println!(
        "bench,ipc,cycles,committed,br_mispredict,l1d_miss,sq_searches,sq_hits,\
         lq_by_stores,lq_by_loads,lb_searches,violations,lq_occ,sq_occ,ooo_loads"
    );
}

fn print_csv(bench: &str, r: &SimResult) {
    println!(
        "{bench},{:.4},{},{},{:.4},{:.4},{},{},{},{},{},{},{:.2},{:.2},{:.2}",
        r.ipc(),
        r.cycles,
        r.committed,
        r.branch_mispredict_rate(),
        r.l1d_miss_rate,
        r.lsq.sq_searches,
        r.lsq.sq_search_hits,
        r.lsq.lq_searches_by_stores,
        r.lsq.lq_searches_by_loads,
        r.lsq.lb_searches,
        r.lsq.violations,
        r.lq_occupancy,
        r.sq_occupancy,
        r.ooo_issued_loads
    );
}

fn main() {
    let args = parse_args();
    // `--bench all` goes through the engine as one batch so benchmarks
    // run on the work-stealing pool (`LSQ_JOBS` workers) instead of
    // serially; single benchmarks take the same path with one job.
    let results: Vec<(&str, SimResult)> = if args.bench == "all" {
        lsq_experiments::runner::run_all_benchmarks(args.lsq, args.scaled, args.spec)
    } else {
        let name = BenchProfile::named(&args.bench).expect("validated").name;
        vec![(
            name,
            run_design_point(name, args.lsq, args.scaled, args.spec),
        )]
    };
    if args.csv {
        print_csv_header();
    }
    for (bench, r) in &results {
        if args.csv {
            print_csv(bench, r);
        } else {
            print_human(bench, r);
        }
    }
}
