//! The shared experiment engine: a work-stealing scheduler plus an
//! in-process content-addressed result cache.
//!
//! Every figure and table in the paper is a cross-product of
//! `(benchmark × LsqConfig × scaled? × RunSpec)` design points, and many
//! of them share points — the base two-ported configuration alone appears
//! in Figures 6 through 12. The engine flattens each request into [`Job`]s,
//! runs the jobs that have not been seen before on a work-stealing thread
//! pool sized by [`worker_count`], and serves repeats from a cache keyed
//! by everything that determines a run's outcome (benchmark name, the
//! full [`SimConfig`], and the [`RunSpec`]). Simulations are
//! deterministic, so a cached result is exactly the result a fresh run
//! would produce (modulo the host-timing fields).
//!
//! Observability knobs (all environment variables):
//!
//! * `LSQ_JOBS=<n>` — worker threads (default:
//!   `std::thread::available_parallelism()`).
//! * `LSQ_PROGRESS=1|0` — force the per-job progress/ETA line on stderr
//!   on or off (default: on when stderr is a terminal).
//! * `LSQ_EXPERIMENTS_JSON=<path>` — after every batch, dump every job
//!   run so far (configuration, headline counters, violation / squash /
//!   port-stall counters, timing, whether it was served from cache) as a
//!   JSON array to `<path>`.
//! * `LSQ_TRACE=<path>[:events|:chrome|:timeline]` and
//!   `LSQ_SAMPLE_CYCLES=<n>` — trace every *fresh* job through the
//!   [`lsq_obs`] event ring / windowed sampler (cache hits re-serve old
//!   results and are not re-traced); see [`lsq_obs::TraceConfig`].
//! * `LSQ_METRICS_ADDR=<ip:port>` — serve live telemetry over HTTP
//!   while batches run: `/metrics` in Prometheus text format, `/jobs`
//!   as a JSON snapshot (see [`crate::telemetry`]).
//! * `LSQ_PROFILE=1` — run every fresh job under the simulator
//!   self-profiler ([`lsq_pipeline::WallProfiler`]): each
//!   `LSQ_EXPERIMENTS_JSON` record carries its per-phase wall-time
//!   profile, and the engine prints (and exposes) the batch aggregate.
//! * `LSQ_ACCOUNTING=1` — run every fresh job under the cycle
//!   accountant ([`lsq_pipeline::SlotAccountant`]): each
//!   `LSQ_EXPERIMENTS_JSON` record carries its CPI stack, the engine
//!   prints the batch aggregate, and the per-component totals are
//!   exposed as `lsq_cpi_stack_cycles_total{component=...}`.
//! * `LSQ_ACCOUNTING_CSV=<path>[:window]` — with accounting on, also
//!   write each fresh job's windowed per-component timeline as CSV
//!   (job 0 gets `<path>` verbatim, later jobs a `.N` suffix).

use crate::runner::RunSpec;
use crate::telemetry;
use lsq_core::LsqConfig;
use lsq_obs::Json;
use lsq_pipeline::{CpiStack, PhaseProfile, SimConfig, SimResult, StageLatency};
use lsq_util::sync::MutexExt;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One unit of work: a benchmark run through one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Benchmark name (one of the 18 Table 2 profiles).
    pub bench: &'static str,
    /// The LSQ design point.
    pub lsq: LsqConfig,
    /// Whether to run the §4.3 scaled processor.
    pub scaled: bool,
    /// Instruction budget.
    pub spec: RunSpec,
}

/// Result-cache key: everything that determines a run's outcome. The
/// full [`SimConfig`] (not just the LSQ point and the scaled flag it was
/// derived from) is hashed, so two jobs collide only if the simulator
/// would be configured identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JobKey {
    bench: &'static str,
    sim: SimConfig,
    spec: RunSpec,
}

impl Job {
    fn key(&self) -> JobKey {
        let sim = if self.scaled {
            SimConfig::scaled(self.lsq)
        } else {
            SimConfig::with_lsq(self.lsq)
        };
        JobKey {
            bench: self.bench,
            sim,
            spec: self.spec,
        }
    }
}

/// Provenance of one job, kept for the `LSQ_EXPERIMENTS_JSON` dump.
#[derive(Debug, Clone)]
struct JobRecord {
    job: Job,
    cached: bool,
    wall_nanos: u64,
    cycles: u64,
    committed: u64,
    ipc: f64,
    sim_mips: f64,
    violations: u64,
    commit_violations: u64,
    useless_searches: u64,
    load_load_violations: u64,
    violation_squashes: u64,
    instructions_squashed: u64,
    sq_port_stalls: u64,
    lq_port_stalls: u64,
    commit_port_delays: u64,
    capped: bool,
    profile: Option<PhaseProfile>,
    cpi_stack: Option<CpiStack>,
    stage_latency: Option<StageLatency>,
}

impl JobRecord {
    fn from_result(job: Job, cached: bool, r: &SimResult) -> Self {
        Self {
            job,
            cached,
            wall_nanos: r.wall_nanos,
            cycles: r.cycles,
            committed: r.committed,
            ipc: r.ipc(),
            sim_mips: r.sim_mips,
            violations: r.lsq.violations,
            commit_violations: r.lsq.commit_violations,
            useless_searches: r.lsq.useless_searches,
            load_load_violations: r.lsq.load_load_violations,
            violation_squashes: r.violation_squashes,
            instructions_squashed: r.instructions_squashed,
            sq_port_stalls: r.lsq.sq_port_stalls,
            lq_port_stalls: r.lsq.lq_port_stalls,
            commit_port_delays: r.lsq.commit_port_delays,
            capped: r.hit_cycle_cap,
            profile: r.profile.clone(),
            cpi_stack: r.cpi_stack.clone(),
            stage_latency: r.stage_latency.clone(),
        }
    }

    fn to_json(&self) -> Json {
        let j = &self.job;
        Json::obj(vec![
            ("bench", Json::from(j.bench)),
            ("scaled", j.scaled.into()),
            ("warmup", j.spec.warmup.into()),
            ("instrs", j.spec.instrs.into()),
            ("seed", j.spec.seed.into()),
            ("ports", j.lsq.ports.into()),
            ("lq_entries", j.lsq.lq_entries.into()),
            ("sq_entries", j.lsq.sq_entries.into()),
            ("predictor", format!("{:?}", j.lsq.predictor).into()),
            ("load_order", format!("{:?}", j.lsq.load_order).into()),
            (
                "segmentation",
                match j.lsq.segmentation {
                    Some(seg) => format!("{seg:?}").into(),
                    None => Json::Null,
                },
            ),
            ("cached", self.cached.into()),
            ("wall_nanos", self.wall_nanos.into()),
            ("cycles", self.cycles.into()),
            ("committed", self.committed.into()),
            ("ipc", self.ipc.into()),
            ("sim_mips", self.sim_mips.into()),
            ("violations", self.violations.into()),
            ("commit_violations", self.commit_violations.into()),
            ("useless_searches", self.useless_searches.into()),
            ("load_load_violations", self.load_load_violations.into()),
            ("violation_squashes", self.violation_squashes.into()),
            ("instructions_squashed", self.instructions_squashed.into()),
            ("sq_port_stalls", self.sq_port_stalls.into()),
            ("lq_port_stalls", self.lq_port_stalls.into()),
            ("commit_port_delays", self.commit_port_delays.into()),
            ("capped", self.capped.into()),
            (
                "profile",
                match &self.profile {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "cpi_stack",
                match &self.cpi_stack {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "stage_latency",
                match &self.stage_latency {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The experiment engine. One global instance (see [`global`]) is shared
/// by every experiment in a process so design points are simulated at
/// most once per run; tests may build private instances.
#[derive(Default)]
pub struct Engine {
    cache: Mutex<HashMap<JobKey, SimResult>>,
    records: Mutex<Vec<JobRecord>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The process-wide engine used by the `runner` entry points.
pub fn global() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::default)
}

impl Engine {
    /// Creates an empty engine (private cache; used by tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// `(cache hits, unique simulations)` served so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            // lsq-lint: allow(relaxed-ordering-audit, reason = "stats snapshot read after run_batch returns; joins ordered the writes")
            self.hits.load(Ordering::Relaxed),
            // lsq-lint: allow(relaxed-ordering-audit, reason = "stats snapshot read after run_batch returns; joins ordered the writes")
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Runs a batch of jobs and returns one result per job, in order.
    ///
    /// Jobs whose key is already cached (from this or an earlier batch)
    /// are served from the cache; duplicates within the batch are
    /// simulated once. Fresh jobs run on [`worker_count`] work-stealing
    /// workers.
    pub fn run_batch(&self, jobs: &[Job]) -> Vec<SimResult> {
        self.run_batch_with_workers(jobs, None)
    }

    /// [`Engine::run_batch`] with an explicit worker count, bypassing
    /// `LSQ_JOBS` / `available_parallelism` (determinism tests).
    pub fn run_batch_with_workers(&self, jobs: &[Job], workers: Option<usize>) -> Vec<SimResult> {
        telemetry::global().maybe_serve_from_env();
        let keys: Vec<JobKey> = jobs.iter().map(Job::key).collect();

        // Unique uncached keys, in first-appearance order (deterministic).
        let mut pending: Vec<(JobKey, Job)> = Vec::new();
        {
            let cache = self.cache.lock_unpoisoned();
            for (job, key) in jobs.iter().zip(&keys) {
                if !cache.contains_key(key) && !pending.iter().any(|(k, _)| k == key) {
                    pending.push((key.clone(), *job));
                }
            }
        }

        let workers = workers.unwrap_or_else(|| worker_count(pending.len()));
        let fresh = self.run_pending(&pending, workers);

        // Batch-level self-profile aggregate (LSQ_PROFILE=1): merged
        // over fresh jobs and printed once; cache hits re-serve the
        // profile stored with their original run.
        let mut batch_profile: Option<PhaseProfile> = None;
        for r in &fresh {
            if let Some(p) = &r.profile {
                match batch_profile.as_mut() {
                    Some(agg) => agg.merge(p),
                    None => batch_profile = Some(p.clone()),
                }
            }
        }
        if let Some(p) = &batch_profile {
            eprintln!(
                "profile: aggregate over {} fresh jobs\n{}",
                fresh.len(),
                p.render()
            );
        }

        // Batch-level CPI-stack aggregate (LSQ_ACCOUNTING=1): merged
        // over fresh jobs and printed once.
        let mut batch_stack: Option<CpiStack> = None;
        let mut batch_committed = 0u64;
        for r in &fresh {
            if let Some(s) = &r.cpi_stack {
                batch_committed += r.committed;
                match batch_stack.as_mut() {
                    Some(agg) => agg.merge(s),
                    None => batch_stack = Some(s.clone()),
                }
            }
        }
        if let Some(s) = &batch_stack {
            eprintln!(
                "cpi stack: aggregate over {} fresh jobs\n{}",
                fresh.len(),
                s.render(batch_committed)
            );
        }

        {
            let mut cache = self.cache.lock_unpoisoned();
            for ((key, _), result) in pending.iter().zip(fresh) {
                cache.insert(key.clone(), result);
            }
        }

        let cache = self.cache.lock_unpoisoned();
        let results: Vec<SimResult> = keys.iter().map(|k| cache[k].clone()).collect();
        drop(cache);

        // A job is "fresh" only at the first appearance of its key in this
        // batch, and only if that key was actually simulated here; repeats
        // and keys cached by earlier batches are hits.
        let ran: HashSet<&JobKey> = pending.iter().map(|(k, _)| k).collect();
        let mut first_seen: HashSet<&JobKey> = HashSet::new();
        let cached_flags: Vec<bool> = keys
            .iter()
            .map(|k| !(ran.contains(k) && first_seen.insert(k)))
            .collect();
        let batch_hits = cached_flags.iter().filter(|&&c| c).count() as u64;
        // lsq-lint: allow(relaxed-ordering-audit, reason = "monotonic tally; read only via stats() snapshots")
        self.hits.fetch_add(batch_hits, Ordering::Relaxed);
        self.misses
            // lsq-lint: allow(relaxed-ordering-audit, reason = "monotonic tally; read only via stats() snapshots")
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        telemetry::global().cache_counted(batch_hits, pending.len() as u64);

        {
            let mut records = self.records.lock_unpoisoned();
            for ((job, &cached), result) in jobs.iter().zip(&cached_flags).zip(&results) {
                records.push(JobRecord::from_result(*job, cached, result));
            }
        }
        // Capped runs report truncated counters: say so loudly at batch
        // end instead of letting a deadlocked configuration pass as a
        // slow one.
        let capped_labels: Vec<String> = jobs
            .iter()
            .zip(&results)
            .filter(|(_, r)| r.hit_cycle_cap)
            .map(|(j, _)| job_label(j))
            .collect();
        if let Some(warning) = capped_warning(&capped_labels) {
            eprintln!("{warning}");
        }
        if let Some(path) = lsq_util::knobs::get("LSQ_EXPERIMENTS_JSON") {
            self.dump_json(&path);
        }
        results
    }

    /// Runs the uncached jobs on `workers` work-stealing threads.
    ///
    /// Each worker owns a deque seeded round-robin; it pops its own work
    /// from the front and, when empty, steals from the back of a
    /// neighbour's. No new work appears mid-run, so a worker exits once
    /// every deque is empty.
    fn run_pending(&self, pending: &[(JobKey, Job)], workers: usize) -> Vec<SimResult> {
        let total = pending.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, total);
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, _) in pending.iter().enumerate() {
            deques[i % workers].lock_unpoisoned().push_back(i);
        }
        let results: Vec<Mutex<Option<SimResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let done = AtomicUsize::new(0);
        let started = Instant::now();
        let progress = progress_enabled();
        let tel = telemetry::global();
        tel.batch_started(total, workers);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let results = &results;
                let done = &done;
                scope.spawn(move || loop {
                    let mut stolen = false;
                    let mut claimed = deques[w].lock_unpoisoned().pop_front();
                    if claimed.is_none() {
                        for (o, other) in deques.iter().enumerate() {
                            claimed = other.lock_unpoisoned().pop_back();
                            if claimed.is_some() {
                                stolen = o != w;
                                break;
                            }
                        }
                    }
                    let Some(idx) = claimed else { break };
                    let job = pending[idx].1;
                    tel.job_claimed(w, job_label(&job), stolen);
                    let t0 = Instant::now();
                    let mut r = crate::runner::run_design_point_uncached(
                        job.bench, job.lsq, job.scaled, job.spec,
                    );
                    let wall = t0.elapsed();
                    r.wall_nanos = wall.as_nanos() as u64;
                    let simulated = (job.spec.warmup + r.committed) as f64;
                    r.sim_mips = simulated / wall.as_secs_f64().max(1e-12) / 1e6;
                    tel.job_finished(w, &r, job.spec.warmup);
                    *results[idx].lock_unpoisoned() = Some(r);
                    // lsq-lint: allow(relaxed-ordering-audit, reason = "progress tally; result hand-off is ordered by the per-slot mutex")
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        report_progress(n, total, started);
                    }
                });
            }
        });
        if progress {
            eprintln!();
        }
        results
            .into_iter()
            .map(|slot| {
                let r = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
                // lsq-lint: allow(no-unwrap-in-lib, reason = "thread::scope joined every worker (propagating any panic), so each slot is filled")
                r.expect("every job runs")
            })
            .collect()
    }

    /// Writes every job recorded so far as a JSON array to `path`
    /// (one record object per line for greppability). Failures are
    /// reported on stderr, not fatal — a bad dump path must not kill an
    /// hour of simulation.
    fn dump_json(&self, path: &str) {
        let records = self.records.lock_unpoisoned();
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.to_json().to_string());
            out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write LSQ_EXPERIMENTS_JSON={path}: {e}");
        }
    }
}

/// Runs arbitrary closures on the engine's work-stealing scheduler,
/// returning their results in input order. Honors `LSQ_JOBS` like
/// [`Engine::run_batch`] but bypasses the result cache (the tasks are
/// opaque). Used by workloads that are not design-point runs, e.g. the
/// `calibrate` seed scan.
pub fn run_tasks<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = tasks.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = worker_count(total);
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..total {
        deques[i % workers].lock_unpoisoned().push_back(i);
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let results = &results;
            scope.spawn(move || loop {
                let mut claimed = deques[w].lock_unpoisoned().pop_front();
                if claimed.is_none() {
                    for other in deques.iter() {
                        claimed = other.lock_unpoisoned().pop_back();
                        if claimed.is_some() {
                            break;
                        }
                    }
                }
                let Some(idx) = claimed else { break };
                let task = slots[idx]
                    .lock_unpoisoned()
                    .take()
                    // lsq-lint: allow(no-unwrap-in-lib, reason = "each index is enqueued exactly once, so the claimed slot still holds its closure")
                    .expect("task claimed once");
                *results[idx].lock_unpoisoned() = Some(task());
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            let r = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            // lsq-lint: allow(no-unwrap-in-lib, reason = "thread::scope joined every worker (propagating any panic), so each slot is filled")
            r.expect("every task runs")
        })
        .collect()
}

/// Number of worker threads for `jobs` queued jobs: `LSQ_JOBS` when set
/// to a positive integer, else `std::thread::available_parallelism()`;
/// always within `1..=max(jobs, 1)`.
pub fn worker_count(jobs: usize) -> usize {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    worker_count_from(
        lsq_util::knobs::get("LSQ_JOBS").as_deref(),
        parallelism,
        jobs,
    )
}

/// Pure core of [`worker_count`], separated for testing.
fn worker_count_from(env: Option<&str>, parallelism: usize, jobs: usize) -> usize {
    env.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(parallelism)
        .clamp(1, jobs.max(1))
}

/// The batch-end warning for jobs that ended on the safety cycle cap
/// (their counters cover a truncated run), or `None` when no job was
/// capped. Separated from the stderr print for testing.
fn capped_warning(labels: &[String]) -> Option<String> {
    if labels.is_empty() {
        return None;
    }
    let mut msg = format!(
        "warning: {} job(s) hit the safety cycle cap — counters are \
         truncated and the configuration may be deadlocked:",
        labels.len()
    );
    for label in labels {
        msg.push_str("\n  capped: ");
        msg.push_str(label);
    }
    Some(msg)
}

/// Short human label for the `/jobs` worker view.
fn job_label(job: &Job) -> String {
    format!(
        "{} ports={} pred={:?}{}{}",
        job.bench,
        job.lsq.ports,
        job.lsq.predictor,
        if job.lsq.segmentation.is_some() {
            " segmented"
        } else {
            ""
        },
        if job.scaled { " scaled" } else { "" },
    )
}

fn progress_enabled() -> bool {
    match lsq_util::knobs::get("LSQ_PROGRESS").as_deref() {
        Some("0") => false,
        Some(_) => true,
        None => std::io::stderr().is_terminal(),
    }
}

fn report_progress(done: usize, total: usize, started: Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    let eta = elapsed / done as f64 * (total - done) as f64;
    let mut err = std::io::stderr().lock();
    let _ = write!(
        err,
        "\r[{done}/{total}] jobs, {elapsed:.1}s elapsed, eta {eta:.1}s   "
    );
    let _ = err.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: RunSpec = RunSpec {
        warmup: 200,
        instrs: 800,
        seed: 1,
    };

    fn job(bench: &'static str) -> Job {
        Job {
            bench,
            lsq: LsqConfig::default(),
            scaled: false,
            spec: TINY,
        }
    }

    /// Non-timing fields of two results must match bit-for-bit.
    fn assert_same_counters(a: &SimResult, b: &SimResult) {
        let strip = |r: &SimResult| {
            let mut r = r.clone();
            r.wall_nanos = 0;
            r.sim_mips = 0.0;
            r.profile = None;
            r
        };
        let (a, b) = (strip(a), strip(b));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn worker_count_bounds() {
        // LSQ_JOBS wins when positive.
        assert_eq!(worker_count_from(Some("3"), 8, 100), 3);
        // Garbage and zero fall back to parallelism.
        assert_eq!(worker_count_from(Some("oops"), 4, 100), 4);
        assert_eq!(worker_count_from(Some("0"), 4, 100), 4);
        assert_eq!(worker_count_from(None, 4, 100), 4);
        // Never more workers than jobs, never fewer than one.
        assert_eq!(worker_count_from(Some("64"), 8, 5), 5);
        assert_eq!(worker_count_from(None, 8, 0), 1);
        assert_eq!(worker_count_from(None, 1, 0), 1);
    }

    #[test]
    fn batch_results_are_in_job_order_and_deduplicated() {
        let engine = Engine::new();
        let jobs = [job("gzip"), job("mcf"), job("gzip")];
        let results = engine.run_batch_with_workers(&jobs, Some(2));
        assert_eq!(results.len(), 3);
        // Duplicate jobs return the identical result.
        assert_same_counters(&results[0], &results[2]);
        // Different benchmarks genuinely differ.
        assert_ne!(results[0].cycles, results[1].cycles);
        let (hits, misses) = engine.stats();
        assert_eq!(misses, 2, "gzip simulated once, mcf once");
        assert_eq!(hits, 1, "second gzip job served from cache");
    }

    #[test]
    fn cache_hit_equals_fresh_run() {
        let engine = Engine::new();
        let fresh = engine.run_batch_with_workers(&[job("gzip")], Some(1));
        let cached = engine.run_batch_with_workers(&[job("gzip")], Some(1));
        assert_same_counters(&fresh[0], &cached[0]);
        let (hits, misses) = engine.stats();
        assert_eq!((hits, misses), (1, 1));
        // An independent engine reproduces the same counters from scratch.
        let other = Engine::new().run_batch_with_workers(&[job("gzip")], Some(1));
        assert_same_counters(&fresh[0], &other[0]);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let jobs = [job("gzip"), job("mcf"), job("equake"), job("bzip")];
        let serial = Engine::new().run_batch_with_workers(&jobs, Some(1));
        let parallel = Engine::new().run_batch_with_workers(&jobs, Some(4));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_same_counters(s, p);
        }
    }

    #[test]
    fn fresh_results_carry_timing() {
        let engine = Engine::new();
        let r = &engine.run_batch_with_workers(&[job("gzip")], Some(1))[0];
        assert!(r.wall_nanos > 0, "engine stamps wall time");
        assert!(r.sim_mips > 0.0, "engine stamps simulation rate");
    }

    #[test]
    fn scaled_and_base_do_not_collide() {
        let engine = Engine::new();
        let base = job("gzip");
        let scaled = Job {
            scaled: true,
            ..base
        };
        let results = engine.run_batch_with_workers(&[base, scaled], Some(1));
        let (hits, misses) = engine.stats();
        assert_eq!((hits, misses), (0, 2));
        assert_ne!(results[0].cycles, results[1].cycles);
    }

    #[test]
    fn run_tasks_preserves_order() {
        let tasks: Vec<_> = (0..17).map(|i| move || i * 3).collect();
        assert_eq!(run_tasks(tasks), (0..17).map(|i| i * 3).collect::<Vec<_>>());
        let empty: Vec<fn() -> i32> = Vec::new();
        assert_eq!(run_tasks(empty), Vec::<i32>::new());
    }

    #[test]
    fn json_dump_parses_and_carries_violation_counters() {
        let engine = Engine::new();
        let _ = engine.run_batch_with_workers(&[job("gzip"), job("gzip")], Some(1));
        let path = std::env::temp_dir().join("lsq_engine_dump_test.json");
        engine.dump_json(path.to_str().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let parsed = Json::parse(&text).expect("dump is valid JSON");
        let records = parsed.as_arr().expect("dump is an array");
        assert_eq!(records.len(), 2);
        let get_str = |r: &Json, k: &str| r.get(k).and_then(Json::as_str).map(str::to_string);
        let get_bool = |r: &Json, k: &str| r.get(k).and_then(Json::as_bool);
        assert_eq!(get_str(&records[0], "bench").as_deref(), Some("gzip"));
        assert_eq!(get_bool(&records[0], "cached"), Some(false));
        assert_eq!(get_bool(&records[1], "cached"), Some(true));
        // Both records describe the same simulation: identical counters.
        for key in [
            "cycles",
            "committed",
            "violations",
            "commit_violations",
            "useless_searches",
            "load_load_violations",
            "violation_squashes",
            "instructions_squashed",
            "sq_port_stalls",
            "lq_port_stalls",
            "commit_port_delays",
        ] {
            let a = records[0].get(key).and_then(Json::as_u64);
            let b = records[1].get(key).and_then(Json::as_u64);
            assert!(a.is_some(), "record has {key}");
            assert_eq!(a, b, "{key} survives the cache");
        }
        assert!(
            records[0].get("ipc").and_then(Json::as_f64).unwrap() > 0.1,
            "ipc serialized as a number"
        );
        // Accounting off, healthy runs: explicit capped flag, no stack.
        assert_eq!(get_bool(&records[0], "capped"), Some(false));
        assert!(
            matches!(records[0].get("cpi_stack"), Some(Json::Null)),
            "cpi_stack field present but null without LSQ_ACCOUNTING"
        );
        assert!(
            matches!(records[0].get("stage_latency"), Some(Json::Null)),
            "stage_latency field present but null without LSQ_PIPEVIEW"
        );
    }

    #[test]
    fn capped_warning_lists_offending_jobs() {
        assert_eq!(capped_warning(&[]), None);
        let labels = vec!["gzip ports=2".to_string(), "mcf ports=1".to_string()];
        let w = capped_warning(&labels).expect("capped jobs warn");
        assert!(w.contains("2 job(s)"), "{w}");
        assert!(w.contains("capped: gzip ports=2"), "{w}");
        assert!(w.contains("capped: mcf ports=1"), "{w}");
        assert!(w.contains("truncated"), "{w}");
    }
}
