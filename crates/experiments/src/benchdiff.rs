//! Noise-aware comparison of two `BENCH_sim*.json` throughput reports
//! (the files written by the `bench` binary; see the `bench-diff` binary
//! for the CLI).
//!
//! Host-side sim-MIPS numbers are noisy: short jobs wobble by tens of
//! percent run-to-run, and even the geomean moves a few percent between
//! otherwise identical builds. The gate therefore applies two
//! thresholds, both configurable through [`DiffOptions`]:
//!
//! * **geomean**: the geomean of per-job `after/before` sim-MIPS ratios
//!   over all matched jobs must stay above `1 - geomean_tolerance`.
//!   Averaging over the whole matrix cancels most per-job noise, so this
//!   tolerance can be tight (default 5%).
//! * **per-job**: any single job slower by more than `job_tolerance`
//!   (default 25%) is flagged — but only when *both* runs spent at least
//!   `min_wall_nanos` (default 50 ms) on the job, because shorter jobs
//!   are dominated by scheduling noise.
//!
//! Improvements never fail the gate; a faster `after` is the point.

use lsq_obs::Json;

/// One job row from a `BENCH_sim*.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchJob {
    /// Benchmark name (Table 2 workload).
    pub bench: String,
    /// Design-point label (`conventional2`, `pair`, ...).
    pub config: String,
    /// Host throughput: simulated instructions (warm-up included) per
    /// wall second, in millions.
    pub sim_mips: f64,
    /// Host wall nanoseconds the job took.
    pub wall_nanos: u64,
}

/// A parsed `BENCH_sim*.json` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Git revision the report was measured at.
    pub git_rev: String,
    /// Geomean sim-MIPS as recorded in the file.
    pub geomean_sim_mips: f64,
    /// Per-job rows.
    pub jobs: Vec<BenchJob>,
}

impl BenchReport {
    /// Parses the JSON text of a `BENCH_sim*.json` file.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text)?;
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("missing \"jobs\" array")?;
        let mut rows = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let field = |key: &str| {
                job.get(key)
                    .ok_or_else(|| format!("job {i}: missing \"{key}\""))
            };
            rows.push(BenchJob {
                bench: field("bench")?
                    .as_str()
                    .ok_or_else(|| format!("job {i}: \"bench\" is not a string"))?
                    .to_string(),
                config: field("config")?
                    .as_str()
                    .ok_or_else(|| format!("job {i}: \"config\" is not a string"))?
                    .to_string(),
                sim_mips: field("sim_mips")?
                    .as_f64()
                    .ok_or_else(|| format!("job {i}: \"sim_mips\" is not a number"))?,
                wall_nanos: field("wall_nanos")?
                    .as_u64()
                    .ok_or_else(|| format!("job {i}: \"wall_nanos\" is not an integer"))?,
            });
        }
        Ok(BenchReport {
            git_rev: doc
                .get("git_rev")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            geomean_sim_mips: doc
                .get("geomean_sim_mips")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            jobs: rows,
        })
    }
}

/// Thresholds for the regression gate (see the module docs for why the
/// defaults differ by an order of magnitude).
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated geomean slowdown (fraction; 0.05 = 5%).
    pub geomean_tolerance: f64,
    /// Maximum tolerated single-job slowdown (fraction; 0.25 = 25%).
    pub job_tolerance: f64,
    /// Jobs faster than this in *either* run are exempt from the
    /// per-job gate (they still count toward the geomean).
    pub min_wall_nanos: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            geomean_tolerance: 0.05,
            job_tolerance: 0.25,
            min_wall_nanos: 50_000_000,
        }
    }
}

/// One matched job with its throughput ratio.
#[derive(Debug, Clone)]
pub struct JobDelta {
    /// The job (from the `after` report).
    pub job: BenchJob,
    /// `before` sim-MIPS for the same (bench, config).
    pub before_mips: f64,
    /// `after / before` sim-MIPS (> 1.0 means faster).
    pub ratio: f64,
    /// Whether this job tripped the per-job gate.
    pub regressed: bool,
    /// Whether the job was exempt from the per-job gate for being
    /// shorter than [`DiffOptions::min_wall_nanos`] in either run.
    pub noisy: bool,
}

/// The outcome of comparing two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Matched jobs in `after` order.
    pub deltas: Vec<JobDelta>,
    /// Geomean of the per-job ratios (> 1.0 means `after` is faster).
    pub geomean_ratio: f64,
    /// Whether the geomean tripped its gate.
    pub geomean_regressed: bool,
    /// (bench, config) pairs present in only one report.
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes: no geomean regression and no per-job
    /// regression.
    pub fn ok(&self) -> bool {
        !self.geomean_regressed && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Machine-readable comparison for `bench-diff --json`: the same
    /// content as [`DiffReport::render`] plus the thresholds the gate
    /// ran under, so a CI consumer can archive the verdict without
    /// re-deriving the configuration.
    pub fn to_json(&self, opts: &DiffOptions) -> Json {
        let jobs: Vec<Json> = self
            .deltas
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("bench", Json::from(d.job.bench.as_str())),
                    ("config", Json::from(d.job.config.as_str())),
                    ("before_mips", Json::from(d.before_mips)),
                    ("after_mips", Json::from(d.job.sim_mips)),
                    ("wall_nanos", Json::from(d.job.wall_nanos)),
                    ("ratio", Json::from(d.ratio)),
                    ("regressed", Json::from(d.regressed)),
                    ("noisy", Json::from(d.noisy)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::from(self.ok())),
            ("geomean_ratio", Json::from(self.geomean_ratio)),
            ("geomean_regressed", Json::from(self.geomean_regressed)),
            (
                "gates",
                Json::obj(vec![
                    ("geomean_tolerance", Json::from(opts.geomean_tolerance)),
                    ("job_tolerance", Json::from(opts.job_tolerance)),
                    ("min_wall_nanos", Json::from(opts.min_wall_nanos)),
                ]),
            ),
            ("jobs", Json::Arr(jobs)),
            (
                "unmatched",
                Json::Arr(
                    self.unmatched
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable comparison table plus verdict.
    pub fn render(&self, opts: &DiffOptions) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<14} {:>10} {:>10} {:>8}\n",
            "bench", "config", "before", "after", "ratio"
        ));
        for d in &self.deltas {
            let mark = if d.regressed {
                "  REGRESSED"
            } else if d.noisy && d.ratio < 1.0 {
                "  (noisy: below per-job wall floor)"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<12} {:<14} {:>10.2} {:>10.2} {:>8.3}{mark}\n",
                d.job.bench, d.job.config, d.before_mips, d.job.sim_mips, d.ratio
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("unmatched: {name}\n"));
        }
        out.push_str(&format!(
            "geomean ratio {:.3} over {} jobs (gate: >= {:.3}; per-job gate: >= {:.3})\n",
            self.geomean_ratio,
            self.deltas.len(),
            1.0 - opts.geomean_tolerance,
            1.0 - opts.job_tolerance,
        ));
        out.push_str(if self.ok() {
            "verdict: PASS\n"
        } else {
            "verdict: REGRESSION\n"
        });
        out
    }
}

/// Compares two reports under `opts`. Jobs are matched by
/// `(bench, config)`; unmatched jobs are listed but never fail the gate
/// (a new design point in `after` is not a regression).
pub fn diff(before: &BenchReport, after: &BenchReport, opts: &DiffOptions) -> DiffReport {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    let mut ratios = Vec::new();
    for job in &after.jobs {
        let Some(base) = before
            .jobs
            .iter()
            .find(|b| b.bench == job.bench && b.config == job.config)
        else {
            unmatched.push(format!("{}/{} (after only)", job.bench, job.config));
            continue;
        };
        let ratio = if base.sim_mips > 0.0 {
            job.sim_mips / base.sim_mips
        } else {
            0.0
        };
        let noisy = job.wall_nanos < opts.min_wall_nanos || base.wall_nanos < opts.min_wall_nanos;
        let regressed = !noisy && ratio < 1.0 - opts.job_tolerance;
        ratios.push(ratio);
        deltas.push(JobDelta {
            job: job.clone(),
            before_mips: base.sim_mips,
            ratio,
            regressed,
            noisy,
        });
    }
    for job in &before.jobs {
        if !after
            .jobs
            .iter()
            .any(|a| a.bench == job.bench && a.config == job.config)
        {
            unmatched.push(format!("{}/{} (before only)", job.bench, job.config));
        }
    }
    let geomean_ratio = lsq_stats::geomean(&ratios).unwrap_or(1.0);
    DiffReport {
        geomean_regressed: geomean_ratio < 1.0 - opts.geomean_tolerance,
        deltas,
        geomean_ratio,
        unmatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &str, f64, u64)]) -> BenchReport {
        BenchReport {
            git_rev: "test".to_string(),
            geomean_sim_mips: 0.0,
            jobs: rows
                .iter()
                .map(|&(bench, config, sim_mips, wall_nanos)| BenchJob {
                    bench: bench.to_string(),
                    config: config.to_string(),
                    sim_mips,
                    wall_nanos,
                })
                .collect(),
        }
    }

    const LONG: u64 = 200_000_000;

    #[test]
    fn identical_reports_pass() {
        let a = report(&[("gzip", "pair", 2.0, LONG), ("mcf", "pair", 1.5, LONG)]);
        let d = diff(&a, &a, &DiffOptions::default());
        assert!(d.ok());
        assert!((d.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(d.unmatched.is_empty());
        assert!(d.render(&DiffOptions::default()).contains("PASS"));
    }

    #[test]
    fn uniform_slowdown_trips_the_geomean_gate() {
        let before = report(&[("gzip", "pair", 2.0, LONG), ("mcf", "pair", 1.5, LONG)]);
        // 10% slower everywhere: under the 25% per-job gate but over the
        // 5% geomean gate.
        let after = report(&[("gzip", "pair", 1.8, LONG), ("mcf", "pair", 1.35, LONG)]);
        let d = diff(&before, &after, &DiffOptions::default());
        assert!(d.geomean_regressed);
        assert!(!d.ok());
        assert!(d.deltas.iter().all(|j| !j.regressed));
        assert!(d.render(&DiffOptions::default()).contains("REGRESSION"));
    }

    #[test]
    fn single_job_collapse_trips_the_per_job_gate() {
        let before = report(&[
            ("gzip", "pair", 2.0, LONG),
            ("mcf", "pair", 1.5, LONG),
            ("art", "pair", 3.0, LONG),
        ]);
        let after = report(&[
            ("gzip", "pair", 2.0, LONG),
            ("mcf", "pair", 1.5, LONG),
            ("art", "pair", 1.0, LONG), // 3x slowdown on one job
        ]);
        let d = diff(&before, &after, &DiffOptions::default());
        let art = d.deltas.iter().find(|j| j.job.bench == "art").unwrap();
        assert!(art.regressed);
        assert!(!d.ok());
    }

    #[test]
    fn short_jobs_are_exempt_from_the_per_job_gate() {
        let before = report(&[("gzip", "pair", 2.0, 1_000_000)]);
        let after = report(&[("gzip", "pair", 1.0, 1_000_000)]);
        // 2x slowdown on a 1 ms job: noisy, so only the geomean gate
        // applies (and trips, since it is the only job).
        let d = diff(&before, &after, &DiffOptions::default());
        assert!(d.deltas[0].noisy);
        assert!(!d.deltas[0].regressed);
        assert!(d.geomean_regressed);
        // Loosening the geomean tolerance lets the noisy pair through.
        let loose = DiffOptions {
            geomean_tolerance: 0.6,
            ..DiffOptions::default()
        };
        assert!(diff(&before, &after, &loose).ok());
    }

    #[test]
    fn improvements_never_fail() {
        let before = report(&[("gzip", "pair", 1.0, LONG)]);
        let after = report(&[("gzip", "pair", 10.0, LONG)]);
        assert!(diff(&before, &after, &DiffOptions::default()).ok());
    }

    #[test]
    fn unmatched_jobs_are_reported_but_do_not_gate() {
        let before = report(&[("gzip", "pair", 2.0, LONG), ("old", "pair", 1.0, LONG)]);
        let after = report(&[("gzip", "pair", 2.0, LONG), ("new", "pair", 1.0, LONG)]);
        let d = diff(&before, &after, &DiffOptions::default());
        assert!(d.ok());
        assert_eq!(
            d.unmatched,
            vec![
                "new/pair (after only)".to_string(),
                "old/pair (before only)".to_string()
            ]
        );
    }

    #[test]
    fn parses_the_bench_binary_schema() {
        let text = r#"{
            "git_rev": "abc",
            "instrs": 100,
            "warmup": 10,
            "seed": 1,
            "geomean_sim_mips": 2.5,
            "total_wall_nanos": 12345,
            "jobs": [
                {"bench": "gzip", "config": "pair", "sim_mips": 2.5,
                 "wall_nanos": 1000, "cycles": 10, "committed": 100}
            ]
        }"#;
        let r = BenchReport::parse(text).unwrap();
        assert_eq!(r.git_rev, "abc");
        assert_eq!(r.geomean_sim_mips, 2.5);
        assert_eq!(
            r.jobs,
            vec![BenchJob {
                bench: "gzip".to_string(),
                config: "pair".to_string(),
                sim_mips: 2.5,
                wall_nanos: 1000,
            }]
        );
    }

    #[test]
    fn parse_errors_name_the_field() {
        assert!(BenchReport::parse("{}").unwrap_err().contains("jobs"));
        let missing = r#"{"jobs": [{"bench": "gzip", "config": "pair"}]}"#;
        assert!(BenchReport::parse(missing)
            .unwrap_err()
            .contains("sim_mips"));
        assert!(BenchReport::parse("not json").is_err());
    }

    #[test]
    fn json_output_carries_verdict_jobs_and_gates() {
        let before = report(&[("gzip", "pair", 2.0, LONG), ("old", "pair", 1.0, LONG)]);
        let after = report(&[("gzip", "pair", 1.8, LONG), ("new", "pair", 1.0, LONG)]);
        let opts = DiffOptions::default();
        let d = diff(&before, &after, &opts);
        // Render and reparse: the CLI's --json output must be valid JSON
        // whose verdict matches `ok()`.
        let doc = Json::parse(&d.to_json(&opts).to_string()).expect("to_json emits valid JSON");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(d.ok()));
        assert_eq!(
            doc.get("geomean_ratio").and_then(Json::as_f64),
            Some(d.geomean_ratio)
        );
        let jobs = doc.get("jobs").and_then(Json::as_arr).expect("jobs array");
        assert_eq!(jobs.len(), 1, "only matched jobs are compared");
        assert_eq!(jobs[0].get("bench").and_then(Json::as_str), Some("gzip"));
        assert_eq!(jobs[0].get("after_mips").and_then(Json::as_f64), Some(1.8));
        assert_eq!(
            jobs[0].get("regressed").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            doc.get("unmatched").and_then(Json::as_arr).map(|a| a.len()),
            Some(2),
            "both one-sided jobs are listed"
        );
        assert_eq!(
            doc.get("gates")
                .and_then(|g| g.get("geomean_tolerance"))
                .and_then(Json::as_f64),
            Some(opts.geomean_tolerance)
        );
    }

    #[test]
    fn committed_before_after_pair_passes() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let before = std::fs::read_to_string(format!("{root}/BENCH_sim.before.json"))
            .expect("committed before report");
        let after = std::fs::read_to_string(format!("{root}/BENCH_sim.after.json"))
            .expect("committed after report");
        let before = BenchReport::parse(&before).unwrap();
        let after = BenchReport::parse(&after).unwrap();
        assert_eq!(before.jobs.len(), 72, "4 design points x 18 benchmarks");
        assert_eq!(after.jobs.len(), 72);
        let d = diff(&before, &after, &DiffOptions::default());
        assert!(
            d.ok(),
            "committed pair regressed:\n{}",
            d.render(&DiffOptions::default())
        );
        // Swapping the pair simulates the regression the gate exists to
        // catch: the after build is much faster, so the reverse diff
        // must fail.
        assert!(!diff(&after, &before, &DiffOptions::default()).ok());
    }
}
