#![warn(missing_docs)]

//! # lsq-experiments — reproduction of every table and figure
//!
//! One runner per artifact of the paper's evaluation (§4): Tables 1–6 and
//! Figures 6–12. Each experiment sweeps the relevant [`lsq_core::LsqConfig`]
//! design points over the 18 synthetic SPEC2K workloads and prints rows
//! shaped like the paper's, so EXPERIMENTS.md can record paper-vs-measured
//! side by side.
//!
//! Run a single artifact with `cargo run --release -p lsq-experiments
//! --bin artifact -- fig10` (see [`experiments::ARTIFACT_NAMES`] for the
//! menu), or everything with `--bin all`. The instruction budget per run
//! is controlled by the `LSQ_INSTRS` environment variable (default
//! 200,000 after a 40,000-instruction warm-up).
//!
//! All runs flow through the shared [`engine`]: a work-stealing pool
//! (`LSQ_JOBS` workers) with a result cache, so design points shared
//! between artifacts — the base and two-ported configurations appear in
//! most of Figures 6–12 — are simulated exactly once per process. See
//! the [`engine`] docs for `LSQ_PROGRESS` and `LSQ_EXPERIMENTS_JSON`.
//!
//! Any run can be traced through the [`lsq_obs`] event ring and windowed
//! sampler: set `LSQ_TRACE=<path>[:events|:chrome|:timeline]` (and
//! optionally `LSQ_SAMPLE_CYCLES=<n>`), or call
//! [`runner::run_traced`] directly.
//!
//! # Examples
//!
//! ```
//! use lsq_experiments::runner::{run_design_point, RunSpec};
//! use lsq_core::LsqConfig;
//!
//! let spec = RunSpec { warmup: 1_000, instrs: 3_000, seed: 1 };
//! let r = run_design_point("gzip", LsqConfig::default(), false, spec);
//! assert!(r.ipc() > 0.1);
//! ```

pub mod benchdiff;
pub mod engine;
pub mod experiments;
pub mod runner;
pub mod telemetry;

pub use engine::{worker_count, Engine, Job};
pub use experiments::{all, by_name, Artifact, ARTIFACT_NAMES};
pub use runner::{run_design_point, run_traced, RunSpec};
