//! Shared machinery for running design points across benchmarks.
//!
//! All entry points route through the [`crate::engine`]: design points
//! are simulated once per process and repeats are served from its result
//! cache, and batches run on a work-stealing pool sized by
//! `LSQ_JOBS` / `available_parallelism` (see the engine docs for the
//! observability knobs).

use crate::engine::{self, Job};
use lsq_core::LsqConfig;
use lsq_obs::{
    CpiStackSampler, NopTracer, PipeRecord, PipeviewConfig, Sampler, SharedTracer, TraceBuffer,
    TraceConfig, Tracer,
};
use lsq_pipeline::{
    CycleAccountant, Lifecycle, NopAccountant, NopLifecycle, NopProfiler, PipeviewRecorder,
    Profiler, SimConfig, SimResult, Simulator, SlotAccountant, WallProfiler,
};
use lsq_trace::BenchProfile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Instruction budget for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunSpec {
    /// Instructions committed before measurement starts (caches,
    /// predictors, and queues warm up; statistics from this phase are
    /// discarded by differencing).
    pub warmup: u64,
    /// Instructions measured.
    pub instrs: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self {
            warmup: 100_000,
            instrs: default_instrs(),
            seed: 1,
        }
    }
}

fn default_instrs() -> u64 {
    lsq_util::knobs::get("LSQ_INSTRS")
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Runs one `(benchmark, LSQ design point)` pair on the base (or scaled)
/// processor and returns the measured-phase result.
///
/// Served from the engine's result cache when the same design point has
/// already run in this process.
///
/// # Panics
///
/// Panics if `bench` is not one of the 18 profile names.
pub fn run_design_point(bench: &str, lsq: LsqConfig, scaled: bool, spec: RunSpec) -> SimResult {
    // lsq-lint: allow(no-unwrap-in-lib, reason = "documented # Panics contract: bench must be one of the 18 profile names")
    let profile = BenchProfile::named(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    engine::global()
        .run_batch(&[Job {
            bench: profile.name,
            lsq,
            scaled,
            spec,
        }])
        .pop()
        // lsq-lint: allow(no-unwrap-in-lib, reason = "run_batch returns exactly one result per submitted job")
        .expect("one job, one result")
}

/// Whether `LSQ_PROFILE` asks for the simulator self-profiler: any
/// non-empty value except `0` enables it (see [`lsq_pipeline::profile`]).
pub fn profile_enabled() -> bool {
    lsq_util::knobs::flag("LSQ_PROFILE")
}

/// Whether `LSQ_ACCOUNTING` asks for cycle accounting (CPI stacks):
/// any non-empty value except `0` enables it (see
/// [`lsq_pipeline::accounting`]).
pub fn accounting_enabled() -> bool {
    lsq_util::knobs::flag("LSQ_ACCOUNTING")
}

/// Default window width (cycles) for `LSQ_ACCOUNTING_CSV` rows.
const DEFAULT_ACCOUNTING_WINDOW: u64 = 10_000;

/// Parses `LSQ_ACCOUNTING_CSV=<path>[:window]`: the destination for
/// windowed CPI-stack CSV rows and the window width in cycles
/// (default 10 000). Implies nothing unless `LSQ_ACCOUNTING` is also
/// set — the sampler hangs off the accountant.
fn accounting_csv_from_env() -> Option<(PathBuf, u64)> {
    let raw = lsq_util::knobs::get("LSQ_ACCOUNTING_CSV")?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    if let Some((path, window)) = raw.rsplit_once(':') {
        if let Ok(w) = window.parse::<u64>() {
            if w > 0 && !path.is_empty() {
                return Some((PathBuf::from(path), w));
            }
        }
    }
    Some((PathBuf::from(raw), DEFAULT_ACCOUNTING_WINDOW))
}

/// Parallel jobs write to distinct paths: job 0 gets the configured
/// path verbatim, later ones a `.N` suffix (same convention as
/// [`TraceConfig::for_job`]).
fn numbered_path(path: &Path, n: u64) -> PathBuf {
    if n == 0 {
        path.to_path_buf()
    } else {
        PathBuf::from(format!("{}.{n}", path.display()))
    }
}

/// The shared simulation core: warm up, snapshot, measure, difference —
/// generic over the trace sink, the self-profiler, and the cycle
/// accountant so every (traced?, profiled?, accounted?) combination
/// monomorphizes to exactly the code it needs. The returned result
/// carries the profiler's report (whole run, warm-up included — like
/// `wall_nanos`, it is host-side timing and not windowed by the diff)
/// and the warm-up-differenced CPI stack (a simulated quantity, so it
/// *is* windowed by the diff).
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn simulate_parts<T: Tracer + Clone, P: Profiler, A: CycleAccountant, L: Lifecycle>(
    bench: &str,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
    tracer: T,
    profiler: P,
    acct: A,
    life: L,
    sample_window: Option<u64>,
) -> (
    SimResult,
    Option<Sampler>,
    Option<CpiStackSampler>,
    Option<(Vec<PipeRecord>, u64)>,
) {
    // lsq-lint: allow(no-unwrap-in-lib, reason = "documented # Panics contract: bench must be one of the 18 profile names")
    let profile = BenchProfile::named(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let cfg = if scaled {
        SimConfig::scaled(lsq)
    } else {
        SimConfig::with_lsq(lsq)
    };
    let mut stream = profile.stream(spec.seed);
    let mut sim = Simulator::with_lifecycle(cfg, tracer, profiler, acct, life);
    if let Some(window) = sample_window {
        sim.set_sampler(Sampler::new(window));
    }
    sim.prewarm(&stream.data_regions(), stream.code_region());
    if spec.warmup > 0 {
        let _ = sim.run(&mut stream, spec.warmup);
    }
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, spec.instrs);
    let result = diff_results(&before, &after);
    let sampler = sim.take_sampler();
    let cpi_sampler = sim.take_cpi_sampler();
    let dropped = sim.pipeview_dropped();
    let pipeview = sim.take_pipeview_records().map(|recs| (recs, dropped));
    (result, sampler, cpi_sampler, pipeview)
}

/// [`simulate_with_lifecycle`] with the lifecycle recorder chosen by
/// `LSQ_PIPEVIEW`: recorded runs carry a [`PipeviewRecorder`] and write
/// the pipeline-viewer log on the way out; disabled runs use the
/// zero-cost [`NopLifecycle`].
fn simulate<T: Tracer + Clone, P: Profiler>(
    bench: &str,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
    tracer: T,
    profiler: P,
    sample_window: Option<u64>,
) -> (SimResult, Option<Sampler>) {
    let Some(pv) = PipeviewConfig::from_env() else {
        let (result, sampler, _) = simulate_with_lifecycle(
            bench,
            lsq,
            scaled,
            spec,
            tracer,
            profiler,
            NopLifecycle,
            sample_window,
        );
        return (result, sampler);
    };
    // Parallel jobs write to distinct paths: job 0 gets the configured
    // path verbatim, later ones a `.N` suffix.
    static PIPEVIEW_JOBS: AtomicU64 = AtomicU64::new(0);
    let pv = pv.for_job(PIPEVIEW_JOBS.fetch_add(1, Ordering::Relaxed));
    let (result, sampler, pipeview) = simulate_with_lifecycle(
        bench,
        lsq,
        scaled,
        spec,
        tracer,
        profiler,
        PipeviewRecorder::new(pv.capacity),
        sample_window,
    );
    if let Some((records, dropped)) = pipeview {
        warn_on_pipeview_drops(bench, &records, dropped, pv.capacity);
        match pv.write(&records) {
            Ok(path) => eprintln!("pipeview: {bench} -> {}", path.display()),
            Err(e) => eprintln!(
                "warning: could not write LSQ_PIPEVIEW={}: {e}",
                pv.path.display()
            ),
        }
    }
    (result, sampler)
}

/// [`simulate_parts`] with the cycle accountant chosen by
/// `LSQ_ACCOUNTING` / `LSQ_ACCOUNTING_CSV`: disabled runs use the
/// zero-cost [`NopAccountant`]; accounted runs carry a
/// [`SlotAccountant`] and, when a CSV path is configured, write the
/// windowed per-component timeline on the way out. Returns the drained
/// lifecycle records (and their drop count) alongside the result.
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn simulate_with_lifecycle<T: Tracer + Clone, P: Profiler, L: Lifecycle>(
    bench: &str,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
    tracer: T,
    profiler: P,
    life: L,
    sample_window: Option<u64>,
) -> (SimResult, Option<Sampler>, Option<(Vec<PipeRecord>, u64)>) {
    if !accounting_enabled() {
        let (result, sampler, _, pipeview) = simulate_parts(
            bench,
            lsq,
            scaled,
            spec,
            tracer,
            profiler,
            NopAccountant,
            life,
            sample_window,
        );
        return (result, sampler, pipeview);
    }
    let csv = accounting_csv_from_env();
    let acct = match &csv {
        Some((_, window)) => SlotAccountant::with_sampler(*window),
        None => SlotAccountant::new(),
    };
    let (result, sampler, cpi_sampler, pipeview) = simulate_parts(
        bench,
        lsq,
        scaled,
        spec,
        tracer,
        profiler,
        acct,
        life,
        sample_window,
    );
    if let (Some((path, _)), Some(cpi)) = (csv, cpi_sampler) {
        static ACCT_CSV_JOBS: AtomicU64 = AtomicU64::new(0);
        let path = numbered_path(&path, ACCT_CSV_JOBS.fetch_add(1, Ordering::Relaxed));
        match std::fs::write(&path, cpi.to_csv()) {
            Ok(()) => eprintln!("cpi-stack csv: {bench} -> {}", path.display()),
            Err(e) => eprintln!(
                "warning: could not write LSQ_ACCOUNTING_CSV={}: {e}",
                path.display()
            ),
        }
    }
    (result, sampler, pipeview)
}

/// Surfaces pipeview-ring overflow at sink flush: a pipeline-viewer log
/// missing its oldest records is silently misleading, so drops cost a
/// stderr warning and a bump of the `lsq_pipeview_dropped_total` metric.
fn warn_on_pipeview_drops(bench: &str, records: &[PipeRecord], dropped: u64, capacity: usize) {
    if dropped > 0 {
        crate::telemetry::global().pipeview_drops(dropped);
        eprintln!(
            "warning: {bench}: pipeview ring dropped {dropped} of {} records; \
             the written log is truncated (raise LSQ_PIPEVIEW_CAP, \
             currently {capacity})",
            records.len() as u64 + dropped,
        );
    }
}

/// The uncached simulation underneath [`run_design_point`]: warm up,
/// snapshot, measure, difference. Called by the engine for cache misses.
/// Honours `LSQ_TRACE` (event ring + sampler) and `LSQ_PROFILE` (phase
/// profiler) in any combination.
///
/// The warm-up phase runs on the same machine state; measured counters
/// are obtained by differencing cumulative counters against the
/// post-warm-up snapshot.
pub(crate) fn run_design_point_uncached(
    bench: &str,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
) -> SimResult {
    let profiled = profile_enabled();
    if let Some(trace) = TraceConfig::from_env() {
        // Parallel jobs write to distinct paths: job 0 gets the
        // configured path verbatim, later ones a `.N` suffix.
        static TRACED_JOBS: AtomicU64 = AtomicU64::new(0);
        let trace = trace.for_job(TRACED_JOBS.fetch_add(1, Ordering::Relaxed));
        let tracer = SharedTracer::with_capacity(trace.capacity);
        let window = trace.effective_sample_cycles();
        let (result, sampler) = if profiled {
            simulate(
                bench,
                lsq,
                scaled,
                spec,
                tracer.clone(),
                WallProfiler::new(),
                window,
            )
        } else {
            simulate(
                bench,
                lsq,
                scaled,
                spec,
                tracer.clone(),
                NopProfiler,
                window,
            )
        };
        let buf = tracer.snapshot();
        warn_on_trace_drops(bench, &buf);
        match trace.write(&buf, sampler.as_ref()) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("trace: {bench} -> {}", p.display());
                }
            }
            Err(e) => eprintln!(
                "warning: could not write LSQ_TRACE={}: {e}",
                trace.path.display()
            ),
        }
        return result;
    }
    if profiled {
        simulate(
            bench,
            lsq,
            scaled,
            spec,
            NopTracer,
            WallProfiler::new(),
            None,
        )
        .0
    } else {
        simulate(bench, lsq, scaled, spec, NopTracer, NopProfiler, None).0
    }
}

/// Surfaces trace-ring overflow at sink flush: a truncated JSONL/Chrome
/// artifact is silently misleading, so drops cost a stderr warning and
/// a bump of the `lsq_trace_events_dropped_total` metric.
fn warn_on_trace_drops(bench: &str, buf: &TraceBuffer) {
    if buf.dropped() > 0 {
        crate::telemetry::global().trace_drops(buf.dropped());
        eprintln!(
            "warning: {bench}: trace ring dropped {} of {} events; \
             the written trace is truncated (raise LSQ_TRACE_CAP, \
             currently {})",
            buf.dropped(),
            buf.total(),
            buf.capacity(),
        );
    }
}

/// [`run_design_point_uncached`] with tracing: the simulator carries a
/// [`SharedTracer`] ring (and, when the config asks for one, a windowed
/// [`Sampler`]) and the captured buffer and flushed sampler are returned
/// alongside the measured-phase result.
///
/// The sampler is attached before the warm-up phase so its per-window
/// deltas partition the *whole* run — summing `committed` over every
/// window and dividing by the summed `cycles` reproduces the cumulative
/// (undiffed) IPC exactly.
///
/// # Panics
///
/// Panics if `bench` is not one of the 18 profile names.
pub fn run_traced(
    bench: &str,
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
    trace: &TraceConfig,
) -> (SimResult, TraceBuffer, Option<Sampler>) {
    let tracer = SharedTracer::with_capacity(trace.capacity);
    let (result, sampler) = simulate(
        bench,
        lsq,
        scaled,
        spec,
        tracer.clone(),
        NopProfiler,
        trace.effective_sample_cycles(),
    );
    (result, tracer.snapshot(), sampler)
}

/// Subtracts the warm-up prefix from cumulative counters so the result
/// reflects only the measured window.
pub fn diff_results(before: &SimResult, after: &SimResult) -> SimResult {
    let mut r = after.clone();
    r.cycles = after.cycles - before.cycles;
    r.committed = after.committed - before.committed;
    r.loads_committed = after.loads_committed - before.loads_committed;
    r.stores_committed = after.stores_committed - before.stores_committed;
    r.branches_committed = after.branches_committed - before.branches_committed;
    r.branch_predictions = after.branch_predictions - before.branch_predictions;
    r.branch_mispredictions = after.branch_mispredictions - before.branch_mispredictions;
    r.violation_squashes = after.violation_squashes - before.violation_squashes;
    r.instructions_squashed = after.instructions_squashed - before.instructions_squashed;
    // LSQ counters are cumulative; difference the scalar fields.
    r.lsq.loads_dispatched -= before.lsq.loads_dispatched;
    r.lsq.stores_dispatched -= before.lsq.stores_dispatched;
    r.lsq.loads_issued -= before.lsq.loads_issued;
    r.lsq.stores_issued -= before.lsq.stores_issued;
    r.lsq.stores_committed -= before.lsq.stores_committed;
    r.lsq.sq_searches -= before.lsq.sq_searches;
    r.lsq.sq_search_hits -= before.lsq.sq_search_hits;
    r.lsq.lq_searches_by_stores -= before.lsq.lq_searches_by_stores;
    r.lsq.lq_searches_by_loads -= before.lsq.lq_searches_by_loads;
    r.lsq.lb_searches -= before.lsq.lb_searches;
    r.lsq.violations -= before.lsq.violations;
    r.lsq.commit_violations -= before.lsq.commit_violations;
    r.lsq.useless_searches -= before.lsq.useless_searches;
    r.lsq.load_load_violations -= before.lsq.load_load_violations;
    r.lsq.invalidations -= before.lsq.invalidations;
    r.lsq.invalidation_squashes -= before.lsq.invalidation_squashes;
    r.lsq.sq_port_stalls -= before.lsq.sq_port_stalls;
    r.lsq.lq_port_stalls -= before.lsq.lq_port_stalls;
    r.lsq.commit_port_delays -= before.lsq.commit_port_delays;
    r.lsq.lb_full_stalls -= before.lsq.lb_full_stalls;
    r.lsq.in_order_stalls -= before.lsq.in_order_stalls;
    r.lsq.store_set_waits -= before.lsq.store_set_waits;
    // The segment histogram is cumulative too: subtract the warm-up
    // snapshot so Table 6 reflects only the measured window.
    r.lsq.seg_search_hist.subtract(&before.lsq.seg_search_hist);
    // Occupancy means are sampled once per cycle, so the cycle counts are
    // their exact sample counts: re-base each mean onto the measured
    // window by removing the warm-up window's weighted contribution.
    r.lq_occupancy = rebase_mean(
        before.lq_occupancy,
        before.cycles,
        after.lq_occupancy,
        after.cycles,
    );
    r.sq_occupancy = rebase_mean(
        before.sq_occupancy,
        before.cycles,
        after.sq_occupancy,
        after.cycles,
    );
    r.ooo_issued_loads = rebase_mean(
        before.ooo_issued_loads,
        before.cycles,
        after.ooo_issued_loads,
        after.cycles,
    );
    r.inflight_loads = rebase_mean(
        before.inflight_loads,
        before.cycles,
        after.inflight_loads,
        after.cycles,
    );
    // The CPI stack is cumulative and monotone, so the measured-window
    // stack is a component-wise difference — the partition invariant
    // carries over: diffed components sum to diffed cycles × width.
    r.cpi_stack = match (&after.cpi_stack, &before.cpi_stack) {
        (Some(a), Some(b)) => Some(a.minus(b)),
        (Some(a), None) => Some(a.clone()),
        _ => None,
    };
    // Stage-latency histograms are cumulative over committed
    // instructions; the same windowing applies.
    r.stage_latency = match (&after.stage_latency, &before.stage_latency) {
        (Some(a), Some(b)) => Some(a.minus(b)),
        (Some(a), None) => Some(a.clone()),
        _ => None,
    };
    r
}

/// Mean over only the samples recorded after a snapshot:
/// `(after_mean·after_n − before_mean·before_n) / (after_n − before_n)`,
/// clamped at zero against floating-point cancellation.
fn rebase_mean(before_mean: f64, before_n: u64, after_mean: f64, after_n: u64) -> f64 {
    let n = after_n.saturating_sub(before_n);
    if n == 0 {
        return 0.0;
    }
    let sum = after_mean * after_n as f64 - before_mean * before_n as f64;
    (sum / n as f64).max(0.0)
}

/// Runs a design point for every benchmark, in parallel, returning
/// `(name, result)` pairs in Table 2 order.
pub fn run_all_benchmarks(
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
) -> Vec<(&'static str, SimResult)> {
    run_matrix(&[lsq], scaled, spec)
        .into_iter()
        // lsq-lint: allow(no-unwrap-in-lib, reason = "run_matrix ran exactly one config per benchmark in this sweep")
        .map(|(name, mut row)| (name, row.pop().expect("one config")))
        .collect()
}

/// Runs several design points for every benchmark through the engine's
/// work-stealing pool. Returns one row per benchmark (Table 2 order),
/// each with one result per design point (input order).
pub fn run_matrix(
    configs: &[LsqConfig],
    scaled: bool,
    spec: RunSpec,
) -> Vec<(&'static str, Vec<SimResult>)> {
    let names: Vec<&'static str> = BenchProfile::all().iter().map(|p| p.name).collect();
    let jobs: Vec<Job> = names
        .iter()
        .flat_map(|&name| {
            configs.iter().map(move |&lsq| Job {
                bench: name,
                lsq,
                scaled,
                spec,
            })
        })
        .collect();
    let mut results = engine::global().run_batch(&jobs).into_iter();
    names
        .iter()
        .map(|&name| (name, results.by_ref().take(configs.len()).collect()))
        .collect()
}

/// Splits per-benchmark values into (INT mean, FP mean) using the Table 2
/// benchmark classification.
pub fn int_fp_means(rows: &[(&'static str, f64)]) -> (f64, f64) {
    let mut int = Vec::new();
    let mut fp = Vec::new();
    for (name, v) in rows {
        // lsq-lint: allow(no-unwrap-in-lib, reason = "names come from Table 2 rows, all drawn from BenchProfile's table")
        let profile = BenchProfile::named(name).expect("known benchmark");
        if profile.fp {
            fp.push(*v);
        } else {
            int.push(*v);
        }
    }
    (
        lsq_stats::mean(&int).unwrap_or(0.0),
        lsq_stats::mean(&fp).unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsq_core::LsqStats;

    const SMALL: RunSpec = RunSpec {
        warmup: 2_000,
        instrs: 6_000,
        seed: 1,
    };

    #[test]
    fn run_design_point_produces_progress() {
        let r = run_design_point("gzip", LsqConfig::default(), false, SMALL);
        // The final cycle may retire up to commit_width instructions,
        // so a run can overshoot its budget by a few.
        assert!(
            (6_000..6_008).contains(&r.committed),
            "committed {}",
            r.committed
        );
        assert!(r.ipc() > 0.1);
        assert!(!r.hit_cycle_cap);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = run_design_point("nonesuch", LsqConfig::default(), false, SMALL);
    }

    #[test]
    fn diffing_removes_warmup() {
        let with_warm = run_design_point("gzip", LsqConfig::default(), false, SMALL);
        assert!(
            (SMALL.instrs..SMALL.instrs + 8).contains(&with_warm.committed),
            "warm-up committed removed ({})",
            with_warm.committed
        );
        assert!(
            with_warm.lsq.loads_issued < 6_000 * 2,
            "counters are windowed"
        );
    }

    #[test]
    fn diffing_rebases_means_and_histogram() {
        let mut before = blank_result();
        before.cycles = 1_000;
        before.lq_occupancy = 30.0; // congested warm-up window
        before.lsq.seg_search_hist.record(0);
        before.lsq.seg_search_hist.record(3);
        let mut after = blank_result();
        after.cycles = 3_000;
        // Cumulative mean: (30·1000 + 6·2000) / 3000 = 14.
        after.lq_occupancy = 14.0;
        after.lsq.seg_search_hist.record(0);
        after.lsq.seg_search_hist.record(3);
        after.lsq.seg_search_hist.record(1);
        let r = diff_results(&before, &after);
        assert_eq!(r.cycles, 2_000);
        assert!(
            (r.lq_occupancy - 6.0).abs() < 1e-9,
            "warm-up congestion removed"
        );
        // Only the measured-window observation remains.
        assert_eq!(r.lsq.seg_search_hist.count(), 1);
        assert_eq!(r.lsq.seg_search_hist.bucket(1), 1);
        assert_eq!(r.lsq.seg_search_hist.bucket(0), 0);
        assert_eq!(r.lsq.seg_search_hist.bucket(3), 0);
    }

    #[test]
    fn rebase_mean_edge_cases() {
        // No new samples: define the mean as zero rather than dividing
        // by zero.
        assert_eq!(rebase_mean(5.0, 100, 5.0, 100), 0.0);
        // No warm-up: the cumulative mean passes through.
        assert_eq!(rebase_mean(0.0, 0, 7.5, 200), 7.5);
        // A difference that would go negative (rounding noise near zero)
        // clamps at zero instead.
        assert_eq!(rebase_mean(2.0, 100, 1.0, 101), 0.0);
    }

    fn blank_result() -> SimResult {
        SimResult {
            cycles: 0,
            committed: 0,
            loads_committed: 0,
            stores_committed: 0,
            branches_committed: 0,
            branch_predictions: 0,
            branch_mispredictions: 0,
            violation_squashes: 0,
            instructions_squashed: 0,
            lq_occupancy: 0.0,
            sq_occupancy: 0.0,
            ooo_issued_loads: 0.0,
            inflight_loads: 0.0,
            lsq: LsqStats::new(4),
            l1d_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            hit_cycle_cap: false,
            wall_nanos: 0,
            sim_mips: 0.0,
            profile: None,
            cpi_stack: None,
            stage_latency: None,
        }
    }

    #[test]
    fn traced_run_matches_untraced_counters() {
        let trace = TraceConfig::parse("unused.json", Some("500"));
        let (r, buf, sampler) = run_traced("gzip", LsqConfig::default(), false, SMALL, &trace);
        let plain = run_design_point("gzip", LsqConfig::default(), false, SMALL);
        assert_eq!(r.cycles, plain.cycles, "tracing must not perturb timing");
        assert_eq!(r.committed, plain.committed);
        assert_eq!(r.lsq.sq_searches, plain.lsq.sq_searches);
        assert_eq!(r.violation_squashes, plain.violation_squashes);
        assert!(buf.total() > 0, "a real run emits events");
        let sampler = sampler.expect("sampling was requested");
        assert!(!sampler.rows().is_empty(), "windows were recorded");
        // The sampler covers warm-up and measurement: its windowed cycles
        // partition the whole run.
        let windowed: u64 = sampler.rows().iter().map(|w| w.cycles).sum();
        assert!(
            windowed >= r.cycles,
            "windows cover at least the measured phase"
        );
    }

    #[test]
    fn trace_ring_overflow_is_counted_and_surfaced() {
        let trace = TraceConfig {
            capacity: 32,
            ..TraceConfig::parse("unused.json", None)
        };
        let (_, buf, _) = run_traced("gzip", LsqConfig::default(), false, SMALL, &trace);
        assert_eq!(buf.capacity(), 32);
        assert!(
            buf.dropped() > 0,
            "a real run overflows a 32-event ring ({} events total)",
            buf.total()
        );
        assert_eq!(buf.dropped() + buf.len() as u64, buf.total());
        let before = crate::telemetry::global().metrics().render();
        warn_on_trace_drops("gzip", &buf);
        let after = crate::telemetry::global().metrics().render();
        let count = |text: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with("lsq_trace_events_dropped_total"))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        assert_eq!(
            count(&after),
            count(&before) + buf.dropped(),
            "sink flush bumps the drop metric"
        );
    }

    #[test]
    fn int_fp_split() {
        let rows = vec![("gzip", 2.0), ("mgrid", 4.0)];
        let (i, f) = int_fp_means(&rows);
        assert_eq!(i, 2.0);
        assert_eq!(f, 4.0);
    }

    #[test]
    fn matrix_runs_all_benchmarks() {
        let tiny = RunSpec {
            warmup: 200,
            instrs: 800,
            seed: 1,
        };
        let rows = run_matrix(&[LsqConfig::default()], false, tiny);
        assert_eq!(rows.len(), 18);
        assert!(rows
            .iter()
            .all(|(_, r)| (800..808).contains(&r[0].committed)));
    }

    #[test]
    fn matrix_keeps_config_order_within_rows() {
        let tiny = RunSpec {
            warmup: 100,
            instrs: 400,
            seed: 1,
        };
        let one_port = LsqConfig::conventional(1);
        let rows = run_matrix(&[LsqConfig::default(), one_port], false, tiny);
        for (name, row) in &rows {
            assert_eq!(row.len(), 2, "{name}");
            // Identical results to running each point individually.
            let lone = run_design_point(name, one_port, false, tiny);
            assert_eq!(row[1].cycles, lone.cycles, "{name}");
        }
    }
}
