//! Shared machinery for running design points across benchmarks.

use lsq_core::LsqConfig;
use lsq_pipeline::{SimConfig, SimResult, Simulator};
use lsq_trace::BenchProfile;

/// Instruction budget for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Instructions committed before measurement starts (caches,
    /// predictors, and queues warm up; statistics from this phase are
    /// discarded by differencing).
    pub warmup: u64,
    /// Instructions measured.
    pub instrs: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self { warmup: 100_000, instrs: default_instrs(), seed: 1 }
    }
}

fn default_instrs() -> u64 {
    std::env::var("LSQ_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Runs one `(benchmark, LSQ design point)` pair on the base (or scaled)
/// processor and returns the measured-phase result.
///
/// The warm-up phase runs on the same machine state; measured counters are
/// obtained by differencing cumulative counters where they matter (IPC is
/// computed from the measured window).
///
/// # Panics
///
/// Panics if `bench` is not one of the 18 profile names.
pub fn run_design_point(bench: &str, lsq: LsqConfig, scaled: bool, spec: RunSpec) -> SimResult {
    let profile = BenchProfile::named(bench).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let cfg = if scaled { SimConfig::scaled(lsq) } else { SimConfig::with_lsq(lsq) };
    let mut stream = profile.stream(spec.seed);
    let mut sim = Simulator::new(cfg);
    sim.prewarm(&stream.data_regions(), stream.code_region());
    if spec.warmup > 0 {
        let _ = sim.run(&mut stream, spec.warmup);
    }
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, spec.instrs);
    diff_results(&before, &after)
}

/// Subtracts the warm-up prefix from cumulative counters so the result
/// reflects only the measured window.
fn diff_results(before: &SimResult, after: &SimResult) -> SimResult {
    let mut r = after.clone();
    r.cycles = after.cycles - before.cycles;
    r.committed = after.committed - before.committed;
    r.loads_committed = after.loads_committed - before.loads_committed;
    r.stores_committed = after.stores_committed - before.stores_committed;
    r.branches_committed = after.branches_committed - before.branches_committed;
    r.branch_predictions = after.branch_predictions - before.branch_predictions;
    r.branch_mispredictions = after.branch_mispredictions - before.branch_mispredictions;
    r.violation_squashes = after.violation_squashes - before.violation_squashes;
    r.instructions_squashed = after.instructions_squashed - before.instructions_squashed;
    // LSQ counters are cumulative; difference the scalar fields.
    r.lsq.loads_dispatched -= before.lsq.loads_dispatched;
    r.lsq.stores_dispatched -= before.lsq.stores_dispatched;
    r.lsq.loads_issued -= before.lsq.loads_issued;
    r.lsq.stores_issued -= before.lsq.stores_issued;
    r.lsq.stores_committed -= before.lsq.stores_committed;
    r.lsq.sq_searches -= before.lsq.sq_searches;
    r.lsq.sq_search_hits -= before.lsq.sq_search_hits;
    r.lsq.lq_searches_by_stores -= before.lsq.lq_searches_by_stores;
    r.lsq.lq_searches_by_loads -= before.lsq.lq_searches_by_loads;
    r.lsq.lb_searches -= before.lsq.lb_searches;
    r.lsq.violations -= before.lsq.violations;
    r.lsq.commit_violations -= before.lsq.commit_violations;
    r.lsq.useless_searches -= before.lsq.useless_searches;
    r.lsq.sq_port_stalls -= before.lsq.sq_port_stalls;
    r.lsq.lq_port_stalls -= before.lsq.lq_port_stalls;
    r.lsq.commit_port_delays -= before.lsq.commit_port_delays;
    r.lsq.lb_full_stalls -= before.lsq.lb_full_stalls;
    r.lsq.in_order_stalls -= before.lsq.in_order_stalls;
    r.lsq.store_set_waits -= before.lsq.store_set_waits;
    // Occupancy means and the segment histogram include the warm-up
    // window; with warmup ≤ 20% of the run this bias is negligible.
    r
}

/// Runs a design point for every benchmark, in parallel, returning
/// `(name, result)` pairs in Table 2 order.
pub fn run_all_benchmarks(
    lsq: LsqConfig,
    scaled: bool,
    spec: RunSpec,
) -> Vec<(&'static str, SimResult)> {
    run_matrix(&[lsq], scaled, spec)
        .into_iter()
        .map(|(name, mut row)| (name, row.pop().expect("one config")))
        .collect()
}

/// Runs several design points for every benchmark, in parallel. Returns
/// one row per benchmark (Table 2 order), each with one result per
/// design point (input order).
pub fn run_matrix(
    configs: &[LsqConfig],
    scaled: bool,
    spec: RunSpec,
) -> Vec<(&'static str, Vec<SimResult>)> {
    let names: Vec<&'static str> = BenchProfile::all().iter().map(|p| p.name).collect();
    let mut out: Vec<(&'static str, Vec<SimResult>)> = Vec::with_capacity(names.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = names
            .iter()
            .map(|&name| {
                scope.spawn(move || {
                    configs
                        .iter()
                        .map(|&lsq| run_design_point(name, lsq, scaled, spec))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (name, h) in names.iter().zip(handles) {
            out.push((name, h.join().expect("benchmark thread panicked")));
        }
    });
    out
}

/// Splits per-benchmark values into (INT mean, FP mean) using the Table 2
/// benchmark classification.
pub fn int_fp_means(rows: &[(&'static str, f64)]) -> (f64, f64) {
    let mut int = Vec::new();
    let mut fp = Vec::new();
    for (name, v) in rows {
        let profile = BenchProfile::named(name).expect("known benchmark");
        if profile.fp {
            fp.push(*v);
        } else {
            int.push(*v);
        }
    }
    (
        lsq_stats::mean(&int).unwrap_or(0.0),
        lsq_stats::mean(&fp).unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: RunSpec = RunSpec { warmup: 2_000, instrs: 6_000, seed: 1 };

    #[test]
    fn run_design_point_produces_progress() {
        let r = run_design_point("gzip", LsqConfig::default(), false, SMALL);
        // The final cycle may retire up to commit_width instructions,
        // so a run can overshoot its budget by a few.
        assert!((6_000..6_008).contains(&r.committed), "committed {}", r.committed);
        assert!(r.ipc() > 0.1);
        assert!(!r.hit_cycle_cap);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = run_design_point("nonesuch", LsqConfig::default(), false, SMALL);
    }

    #[test]
    fn diffing_removes_warmup() {
        let with_warm = run_design_point("gzip", LsqConfig::default(), false, SMALL);
        assert!(
            (SMALL.instrs..SMALL.instrs + 8).contains(&with_warm.committed),
            "warm-up committed removed ({})",
            with_warm.committed
        );
        assert!(with_warm.lsq.loads_issued < 6_000 * 2, "counters are windowed");
    }

    #[test]
    fn int_fp_split() {
        let rows = vec![("gzip", 2.0), ("mgrid", 4.0)];
        let (i, f) = int_fp_means(&rows);
        assert_eq!(i, 2.0);
        assert_eq!(f, 4.0);
    }

    #[test]
    fn matrix_runs_all_benchmarks() {
        let tiny = RunSpec { warmup: 200, instrs: 800, seed: 1 };
        let rows = run_matrix(&[LsqConfig::default()], false, tiny);
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|(_, r)| (800..808).contains(&r[0].committed)));
    }
}
