//! Engine-side live telemetry: one process-wide [`Metrics`] registry
//! fed by the work-stealing scheduler, the `/jobs` JSON snapshot, and
//! the `LSQ_METRICS_ADDR` exposition server.
//!
//! Every [`crate::engine::Engine`] (the global one and private test
//! instances) reports into the same registry, so the server — started
//! lazily on the first batch after `LSQ_METRICS_ADDR` is set — always
//! shows whole-process state: jobs queued/running/done, per-worker
//! activity, cache hit rate, steal counts, aggregate sim-MIPS, trace
//! ring drops, and (under `LSQ_PROFILE=1`) the merged simulator phase
//! profile. Counter updates are relaxed atomics on job boundaries, so
//! the cost is nil next to a simulation job.

use lsq_obs::Json;
use lsq_pipeline::{CpiStack, PhaseProfile, SimResult, StageLatency};
use lsq_telemetry::{Counter, FloatGauge, Gauge, HistogramMetric, Metrics, MetricsServer};
use lsq_util::sync::MutexExt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Exposition bounds (cycles) for the `lsq_stage_latency_cycles`
/// histograms; the simulator records exact per-cycle buckets up to
/// [`lsq_pipeline::STAGE_BUCKETS`], folded into these on job finish.
const STAGE_LATENCY_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// The repository commit this process was built or launched from, for
/// the `lsq_build_info` gauge; `unknown` outside a git checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Live view of one scheduler worker, kept for `/jobs`.
#[derive(Debug, Default, Clone)]
struct WorkerView {
    busy: bool,
    /// Job label while busy (`bench` plus design-point summary).
    current: Option<String>,
    done: u64,
    steals: u64,
}

/// The process-wide telemetry hub.
pub struct EngineTelemetry {
    metrics: Arc<Metrics>,
    jobs_queued: Arc<Gauge>,
    jobs_running: Arc<Gauge>,
    jobs_done: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    steals: Arc<Counter>,
    sim_instrs: Arc<Counter>,
    sim_wall_nanos: Arc<Counter>,
    sim_mips: Arc<FloatGauge>,
    job_wall_ms: Arc<HistogramMetric>,
    trace_events_dropped: Arc<Counter>,
    pipeview_dropped: Arc<Counter>,
    uptime: Arc<FloatGauge>,
    start: Instant,
    workers: Mutex<Vec<WorkerView>>,
    profile: Mutex<Option<PhaseProfile>>,
    stack: Mutex<Option<CpiStack>>,
}

/// The singleton registry every engine instance reports into.
pub fn global() -> &'static EngineTelemetry {
    static TELEMETRY: OnceLock<EngineTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(EngineTelemetry::new)
}

impl EngineTelemetry {
    fn new() -> Self {
        let m = Arc::new(Metrics::new());
        Self {
            jobs_queued: m.gauge("lsq_jobs_queued", "Jobs waiting in worker deques."),
            jobs_running: m.gauge("lsq_jobs_running", "Jobs currently simulating."),
            jobs_done: m.counter("lsq_jobs_done_total", "Fresh jobs completed."),
            cache_hits: m.counter("lsq_cache_hits_total", "Jobs served from the result cache."),
            cache_misses: m.counter(
                "lsq_cache_misses_total",
                "Jobs simulated fresh (cache misses).",
            ),
            steals: m.counter(
                "lsq_steals_total",
                "Jobs taken from another worker's deque.",
            ),
            sim_instrs: m.counter(
                "lsq_sim_instructions_total",
                "Simulated instructions, warm-up included.",
            ),
            sim_wall_nanos: m.counter(
                "lsq_sim_wall_nanos_total",
                "Host wall nanoseconds spent simulating.",
            ),
            sim_mips: m.float_gauge(
                "lsq_sim_mips",
                "Aggregate simulated MIPS (instructions / wall time).",
            ),
            job_wall_ms: m.histogram(
                "lsq_job_wall_ms",
                "Per-job wall time in milliseconds.",
                &[10, 50, 100, 500, 1000, 5000, 30000],
            ),
            trace_events_dropped: m.counter(
                "lsq_trace_events_dropped_total",
                "Trace-ring events evicted on overflow (raise LSQ_TRACE_CAP).",
            ),
            pipeview_dropped: m.counter(
                "lsq_pipeview_dropped_total",
                "Pipeview-ring records evicted on overflow (raise LSQ_PIPEVIEW_CAP).",
            ),
            uptime: {
                m.gauge_with(
                    "lsq_build_info",
                    "Build identity: constant 1, labelled with the crate \
                     version and the git commit.",
                    &[
                        ("version", env!("CARGO_PKG_VERSION")),
                        ("git_sha", &git_sha()),
                    ],
                )
                .set(1);
                m.float_gauge(
                    "lsq_uptime_seconds",
                    "Seconds since this process's telemetry hub started; \
                     refreshed on job boundaries and /jobs snapshots.",
                )
            },
            start: Instant::now(),
            workers: Mutex::new(Vec::new()),
            profile: Mutex::new(None),
            stack: Mutex::new(None),
            metrics: m,
        }
    }

    /// Refreshes the `lsq_uptime_seconds` gauge.
    fn tick_uptime(&self) {
        self.uptime.set(self.start.elapsed().as_secs_f64());
    }

    /// The underlying registry (what `/metrics` renders).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Starts the `LSQ_METRICS_ADDR` server the first time a batch runs
    /// with the variable set; later calls (and unset/empty values) are
    /// no-ops. Bind failures warn and disable retries rather than
    /// killing an experiment run.
    pub fn maybe_serve_from_env(&'static self) {
        static SERVER: OnceLock<Option<MetricsServer>> = OnceLock::new();
        SERVER.get_or_init(|| {
            let addr = lsq_util::knobs::get("LSQ_METRICS_ADDR")?;
            if addr.trim().is_empty() {
                return None;
            }
            match self.serve(addr.trim()) {
                Ok(server) => {
                    eprintln!(
                        "telemetry: serving /metrics and /jobs on http://{}",
                        server.addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("warning: could not bind LSQ_METRICS_ADDR={addr}: {e}");
                    None
                }
            }
        });
    }

    /// Binds `addr` and serves this hub's registry and job view.
    /// Exposed for tests (ephemeral ports); production goes through
    /// [`EngineTelemetry::maybe_serve_from_env`].
    pub fn serve(&'static self, addr: &str) -> std::io::Result<MetricsServer> {
        MetricsServer::start(
            addr,
            self.metrics(),
            Box::new(|| self.jobs_json().to_string()),
        )
    }

    /// A batch of `queued` fresh jobs is about to run on `workers`
    /// workers.
    pub(crate) fn batch_started(&self, queued: usize, workers: usize) {
        self.tick_uptime();
        self.jobs_queued.add(queued as i64);
        let mut views = self.workers.lock_unpoisoned();
        if views.len() < workers {
            views.resize(workers, WorkerView::default());
        }
    }

    /// Worker `worker` claimed a job (`stolen` from another deque).
    pub(crate) fn job_claimed(&self, worker: usize, label: String, stolen: bool) {
        self.jobs_queued.sub(1);
        self.jobs_running.add(1);
        if stolen {
            self.steals.inc();
        }
        let mut views = self.workers.lock_unpoisoned();
        if let Some(v) = views.get_mut(worker) {
            v.busy = true;
            v.current = Some(label);
            if stolen {
                v.steals += 1;
            }
        }
    }

    /// Worker `worker` finished the job it claimed; `spec_warmup` is the
    /// job's warm-up budget (the engine's sim-MIPS convention counts
    /// warm-up instructions as simulated work).
    pub(crate) fn job_finished(&self, worker: usize, result: &SimResult, spec_warmup: u64) {
        self.tick_uptime();
        self.jobs_running.sub(1);
        self.jobs_done.inc();
        self.sim_instrs.add(spec_warmup + result.committed);
        self.sim_wall_nanos.add(result.wall_nanos);
        let wall = self.sim_wall_nanos.get();
        if wall > 0 {
            self.sim_mips
                .set(self.sim_instrs.get() as f64 / wall as f64 * 1e3);
        }
        self.job_wall_ms.record(result.wall_nanos / 1_000_000);
        if let Some(profile) = &result.profile {
            self.merge_profile(profile);
        }
        if let Some(stack) = &result.cpi_stack {
            self.merge_stack(stack);
        }
        if let Some(stages) = &result.stage_latency {
            self.merge_stage_latency(stages);
        }
        let mut views = self.workers.lock_unpoisoned();
        if let Some(v) = views.get_mut(worker) {
            v.busy = false;
            v.current = None;
            v.done += 1;
        }
    }

    /// Cache accounting for one batch.
    pub(crate) fn cache_counted(&self, hits: u64, misses: u64) {
        self.cache_hits.add(hits);
        self.cache_misses.add(misses);
    }

    /// Trace-ring overflow: `dropped` events were evicted before the
    /// sink flush (see the warning in `runner`).
    pub(crate) fn trace_drops(&self, dropped: u64) {
        self.trace_events_dropped.add(dropped);
    }

    /// Pipeview-ring overflow: `dropped` finished lifecycle records
    /// were evicted before the log flush (see the warning in `runner`).
    pub(crate) fn pipeview_drops(&self, dropped: u64) {
        self.pipeview_dropped.add(dropped);
    }

    /// Folds one job's stage-latency histograms into the
    /// `lsq_stage_latency_cycles{stage=…}` exposition histograms.
    fn merge_stage_latency(&self, stages: &StageLatency) {
        for (name, h) in stages.stages() {
            let metric = self.metrics.histogram_with(
                "lsq_stage_latency_cycles",
                "Per-stage instruction latency in cycles, from the \
                 lifecycle recorder (LSQ_PIPEVIEW runs).",
                STAGE_LATENCY_BOUNDS,
                &[("stage", name)],
            );
            for (value, count) in h.iter() {
                if count > 0 {
                    metric.record_n(value as u64, count);
                }
            }
        }
    }

    /// Folds one job's phase profile into the process aggregate and the
    /// per-phase exposition counters.
    fn merge_profile(&self, profile: &PhaseProfile) {
        for stat in &profile.phases {
            self.metrics
                .counter_with(
                    "lsq_profile_phase_nanos_total",
                    "Simulator self-profile: wall nanoseconds per phase.",
                    &[("phase", &stat.phase)],
                )
                .add(stat.nanos);
            self.metrics
                .counter_with(
                    "lsq_profile_phase_calls_total",
                    "Simulator self-profile: timed invocations per phase.",
                    &[("phase", &stat.phase)],
                )
                .add(stat.calls);
        }
        let mut agg = self.profile.lock_unpoisoned();
        match agg.as_mut() {
            Some(a) => a.merge(profile),
            None => *agg = Some(profile.clone()),
        }
    }

    /// The process-wide aggregated phase profile, if any job was
    /// profiled.
    pub fn aggregated_profile(&self) -> Option<PhaseProfile> {
        self.profile.lock_unpoisoned().clone()
    }

    /// Folds one job's CPI stack into the process aggregate and the
    /// per-component exposition counters.
    fn merge_stack(&self, stack: &CpiStack) {
        for stat in &stack.components {
            self.metrics
                .counter_with(
                    "lsq_cpi_stack_cycles_total",
                    "Cycle accounting: commit slots charged per CPI-stack \
                     component (commit_width slots per simulated cycle).",
                    &[("component", &stat.component)],
                )
                .add(stat.slots);
        }
        let mut agg = self.stack.lock_unpoisoned();
        match agg.as_mut() {
            Some(a) => a.merge(stack),
            None => *agg = Some(stack.clone()),
        }
    }

    /// The process-wide aggregated CPI stack, if any job ran with
    /// cycle accounting.
    pub fn aggregated_stack(&self) -> Option<CpiStack> {
        self.stack.lock_unpoisoned().clone()
    }

    /// The `/jobs` snapshot.
    pub fn jobs_json(&self) -> Json {
        self.tick_uptime();
        let views = self.workers.lock_unpoisoned().clone();
        let workers: Vec<Json> = views
            .iter()
            .enumerate()
            .map(|(i, v)| {
                Json::obj(vec![
                    ("worker", Json::from(i)),
                    ("busy", v.busy.into()),
                    (
                        "current",
                        match &v.current {
                            Some(label) => Json::from(label.clone()),
                            None => Json::Null,
                        },
                    ),
                    ("done", v.done.into()),
                    ("steals", v.steals.into()),
                ])
            })
            .collect();
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        Json::obj(vec![
            ("queued", Json::from(self.jobs_queued.get())),
            ("running", self.jobs_running.get().into()),
            ("done", self.jobs_done.get().into()),
            ("cache_hits", hits.into()),
            ("cache_misses", misses.into()),
            ("cache_hit_rate", hit_rate.into()),
            ("steals", self.steals.get().into()),
            ("sim_mips", self.sim_mips.get().into()),
            (
                "trace_events_dropped",
                self.trace_events_dropped.get().into(),
            ),
            ("workers", Json::Arr(workers)),
            (
                "profile",
                match self.aggregated_profile() {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "cpi_stack",
                match self.aggregated_stack() {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exercised against the singleton: other tests in this process also
    // feed it, so assertions are monotonic (deltas / shape), never
    // absolute totals.

    #[test]
    fn jobs_json_has_the_operator_fields() {
        let tel = global();
        tel.batch_started(2, 2);
        tel.job_claimed(0, "gzip ports=2".to_string(), false);
        tel.job_claimed(1, "mcf ports=2".to_string(), true);
        let snap = tel.jobs_json();
        for key in [
            "queued",
            "running",
            "done",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "steals",
            "sim_mips",
            "trace_events_dropped",
            "workers",
            "profile",
            "cpi_stack",
        ] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
        let workers = snap.get("workers").and_then(Json::as_arr).unwrap();
        assert!(workers.len() >= 2);
        // The snapshot is valid JSON.
        let parsed = Json::parse(&snap.to_string()).expect("snapshot parses");
        assert!(parsed.get("workers").is_some());
        // Settle the running gauge for other tests (queued already
        // netted out: +2 at batch start, -1 per claim).
        tel.jobs_running.sub(2);
    }

    #[test]
    fn concurrent_updates_under_the_worker_pool_lose_nothing() {
        // Hammer one counter and one histogram from the engine's own
        // work-stealing scheduler: every increment must land.
        let m = global().metrics();
        let c = m.counter("lsq_test_pool_total", "Worker-pool torture counter.");
        let h = m.histogram(
            "lsq_test_pool_hist",
            "Worker-pool torture histogram.",
            &[4, 16],
        );
        let c_before = c.get();
        let h_before = h.count();
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                move || {
                    for k in 0..100u64 {
                        c.inc();
                        h.record((i + k) % 20);
                    }
                }
            })
            .collect();
        crate::engine::run_tasks(tasks);
        assert_eq!(c.get(), c_before + 6400);
        assert_eq!(h.count(), h_before + 6400);
        assert!(m.render().contains("lsq_test_pool_total"));
    }

    #[test]
    fn steal_and_cache_counters_accumulate() {
        let tel = global();
        let steals_before = tel.steals.get();
        let hits_before = tel.cache_hits.get();
        tel.job_claimed(0, "x".to_string(), true);
        tel.cache_counted(3, 1);
        assert_eq!(tel.steals.get(), steals_before + 1);
        assert_eq!(tel.cache_hits.get(), hits_before + 3);
        tel.jobs_running.sub(1);
        tel.jobs_queued.add(1);
    }
}
