#![warn(missing_docs)]

//! # lsq — Reducing Design Complexity of the Load/Store Queue
//!
//! A full Rust reproduction of Park, Ooi & Vijaykumar, *Reducing Design
//! Complexity of the Load/Store Queue* (MICRO-36, 2003): the store-load
//! pair predictor, the load buffer, and load/store-queue segmentation, on
//! top of a from-scratch cycle-level out-of-order superscalar simulator
//! and a synthetic SPEC2K-like workload substrate.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! * [`core`] (`lsq-core`) — the paper's contribution: LSQ models and
//!   predictors.
//! * [`pipeline`] (`lsq-pipeline`) — the out-of-order core.
//! * [`mem`] (`lsq-mem`) — the cache hierarchy.
//! * [`trace`] (`lsq-trace`) — the 18 SPEC2K-like synthetic workloads.
//! * [`experiments`] (`lsq-experiments`) — one runner per paper table and
//!   figure.
//! * [`obs`] (`lsq-obs`) — event tracing (JSONL / Chrome `trace_event`),
//!   windowed time-series sampling, and per-PC squash attribution.
//! * [`telemetry`] (`lsq-telemetry`) — live metrics registry plus the
//!   Prometheus-format HTTP exposition server (`LSQ_METRICS_ADDR`).
//! * [`isa`], [`stats`], [`util`] — shared substrates.
//!
//! # Quickstart
//!
//! ```
//! use lsq::prelude::*;
//!
//! // A small run of a synthetic benchmark through the base processor.
//! let profile = BenchProfile::named("gcc").expect("known benchmark");
//! let mut stream = profile.stream(1);
//! let mut sim = Simulator::new(SimConfig::default());
//! let result = sim.run(&mut stream, 20_000);
//! assert!(result.ipc() > 0.0);
//! ```

pub use lsq_core as core;
pub use lsq_experiments as experiments;
pub use lsq_isa as isa;
pub use lsq_mem as mem;
pub use lsq_obs as obs;
pub use lsq_pipeline as pipeline;
pub use lsq_stats as stats;
pub use lsq_telemetry as telemetry;
pub use lsq_trace as trace;
pub use lsq_util as util;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use lsq_core::{LsqConfig, PredictorKind, SegAlloc, SegConfig};
    pub use lsq_isa::{Addr, ArchReg, InstrKind, Instruction, InstructionStream, Pc};
    pub use lsq_pipeline::{SimConfig, SimResult, Simulator};
    pub use lsq_trace::BenchProfile;
}
