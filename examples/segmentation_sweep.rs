//! Segmentation design-space sweep: segment count × entries-per-segment,
//! at fixed total capacity and at the paper's per-segment size — the
//! ablation DESIGN.md calls out beyond the paper's single 4 × 28 point.
//!
//! ```text
//! cargo run --release --example segmentation_sweep [bench]
//! ```

use lsq::core::{SegAlloc, SegConfig};
use lsq::prelude::*;

fn run(bench: &str, lsq_cfg: LsqConfig) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000);
    sim.run(&mut stream, 150_000)
}

fn seg(segments: usize, entries: usize) -> LsqConfig {
    LsqConfig {
        segmentation: Some(SegConfig {
            segments,
            entries_per_segment: entries,
            alloc: SegAlloc::SelfCircular,
        }),
        ..LsqConfig::default()
    }
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "equake".to_string());
    let base = run(&bench, LsqConfig::default());
    println!("segmentation sweep on `{bench}` (self-circular; speedup vs 32-entry base)\n");
    println!(
        "{:<22} {:>9} {:>9} {:>14} {:>12}",
        "design", "capacity", "speedup", "1-seg searches", "IPC"
    );

    let report = |label: String, r: &lsq::pipeline::SimResult, capacity: usize| {
        println!(
            "{:<22} {:>9} {:>8.2}x {:>13.0}% {:>12.2}",
            label,
            capacity,
            r.speedup_over(&base),
            r.lsq.seg_search_fraction(0) * 100.0,
            r.ipc(),
        );
    };

    println!("-- fixed 112-entry capacity, varying segment count:");
    for (segments, entries) in [(2, 56), (4, 28), (8, 14)] {
        let r = run(&bench, seg(segments, entries));
        report(format!("{segments} x {entries}"), &r, segments * entries);
    }
    println!("-- the paper's 28-entry segments, varying count (capacity grows):");
    for segments in [1usize, 2, 4, 8] {
        let r = run(&bench, seg(segments, 28));
        report(format!("{segments} x 28"), &r, segments * 28);
    }
    println!(
        "\nThe paper's §3 trade-off: more segments buy capacity and aggregate \
         bandwidth but lengthen worst-case searches and shrink the head segment \
         (where early scheduling survives); 4 x 28 was their sweet spot."
    );
}
