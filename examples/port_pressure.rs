//! Port pressure study: how many LSQ search ports does a workload need,
//! and how far do the paper's techniques stretch a single port?
//!
//! Sweeps 1/2/4 search ports for the conventional LSQ and for the LSQ
//! with the store-load pair predictor + 2-entry load buffer, printing
//! IPC and the search counts that explain it (the Figure 10 mechanism on
//! one benchmark).
//!
//! ```text
//! cargo run --release --example port_pressure [bench]
//! ```

use lsq::prelude::*;

fn run(bench: &str, lsq_cfg: LsqConfig) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000); // warm up
    sim.run(&mut stream, 150_000)
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "perl".to_string());
    println!("LSQ search-port sweep on `{bench}`\n");
    println!(
        "{:<28} {:>5} {:>12} {:>12} {:>12}",
        "configuration", "IPC", "SQ searches", "LQ searches", "port stalls"
    );
    for ports in [1, 2, 4] {
        let r = run(&bench, LsqConfig::conventional(ports));
        println!(
            "{:<28} {:>5.2} {:>12} {:>12} {:>12}",
            format!("conventional, {ports} port(s)"),
            r.ipc(),
            r.lsq.sq_searches,
            r.lsq.lq_searches(),
            r.lsq.sq_port_stalls + r.lsq.lq_port_stalls,
        );
    }
    for ports in [1, 2, 4] {
        let r = run(&bench, LsqConfig::with_techniques(ports));
        println!(
            "{:<28} {:>5.2} {:>12} {:>12} {:>12}",
            format!("pair + load buffer, {ports} port(s)"),
            r.ipc(),
            r.lsq.sq_searches,
            r.lsq.lq_searches(),
            r.lsq.sq_port_stalls + r.lsq.lq_port_stalls,
        );
    }
    println!(
        "\nThe paper's claim (Figure 10): with the predictor filtering store-queue \
         searches and the load buffer absorbing load-load ordering searches, one \
         port performs like a conventional two-ported design."
    );
}
