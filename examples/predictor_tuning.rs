//! Predictor tuning: ablations over the store-load pair predictor's
//! hardware budget — SSIT size and the width of the per-LFST-entry
//! counter the paper adds in §2.1.1 (a 3-bit counter was "large enough").
//!
//! ```text
//! cargo run --release --example predictor_tuning [bench]
//! ```

use lsq::prelude::*;

fn run(bench: &str, lsq_cfg: LsqConfig) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000);
    sim.run(&mut stream, 150_000)
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex".to_string());
    let base = run(&bench, LsqConfig::conventional(1));
    println!("pair-predictor hardware budget on `{bench}` (1-ported LSQ)\n");
    println!(
        "baseline (conventional, all loads search): IPC {:.2}\n",
        base.ipc()
    );

    println!("SSIT size sweep (counter = 3 bits):");
    println!(
        "{:>8} {:>6} {:>12} {:>10} {:>10}",
        "entries", "IPC", "SQ searches", "useless", "squashes"
    );
    for ssit in [256usize, 1024, 4096, 16384] {
        let mut cfg = LsqConfig::with_techniques(1);
        cfg.ssit_entries = ssit;
        let r = run(&bench, cfg);
        println!(
            "{:>8} {:>6.2} {:>12} {:>10} {:>10}",
            ssit,
            r.ipc(),
            r.lsq.sq_searches,
            r.lsq.useless_searches,
            r.lsq.commit_violations,
        );
    }

    println!("\ncounter width sweep (SSIT = 4K; width 0 emulates the single valid bit):");
    println!(
        "{:>8} {:>6} {:>12} {:>10}",
        "bits", "IPC", "SQ searches", "squashes"
    );
    for bits in [0u8, 1, 2, 3, 4] {
        let mut cfg = LsqConfig::with_techniques(1);
        cfg.counter_max = (1u16 << bits).saturating_sub(1).min(255) as u8;
        let r = run(&bench, cfg);
        println!(
            "{:>8} {:>6.2} {:>12} {:>10}",
            bits,
            r.ipc(),
            r.lsq.sq_searches,
            r.lsq.commit_violations,
        );
    }
    println!(
        "\nThe paper's §2.1.1/§2.1.2 claims: a single valid bit frees waiting loads \
         too early once multiple instances of one static store are in flight, while \
         a 3-bit counter suffices; the 4K-entry SSIT absorbs the extra pairs the \
         pair predictor stores beyond the plain store-set predictor."
    );
}
