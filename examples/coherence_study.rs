//! Coherence study: the multiprocessor scenario that motivates load-load
//! ordering (paper §2.2), which the paper's uniprocessor evaluation never
//! fires. This repo implements both of the §2.2 schemes; this example
//! injects synthetic coherence invalidations (another processor writing
//! words we are reading) and shows (a) invalidation squashes hitting
//! outstanding loads, R10000-style, and (b) the load buffer detecting
//! same-address out-of-order loads exactly like the full load-queue
//! search, Alpha-style, at a fraction of the search bandwidth.
//!
//! ```text
//! cargo run --release --example coherence_study [bench]
//! ```

#![allow(clippy::field_reassign_with_default)] // configs tweak one field of a default

use lsq::core::LoadOrderPolicy;
use lsq::prelude::*;

fn run(bench: &str, lsq_cfg: LsqConfig, inval_rate: f64) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut cfg = SimConfig::with_lsq(lsq_cfg);
    cfg.invalidation_rate = inval_rate;
    let mut sim = Simulator::new(cfg);
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000);
    sim.run(&mut stream, 150_000)
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "twolf".to_string());

    println!("R10000-style invalidation squashes (scheme 2) on `{bench}`\n");
    println!(
        "{:>12} {:>6} {:>14} {:>14}",
        "inval rate", "IPC", "invalidations", "inval squashes"
    );
    for rate in [0.0, 0.002, 0.01, 0.05] {
        let r = run(&bench, LsqConfig::default(), rate);
        println!(
            "{:>12} {:>6.2} {:>14} {:>14}",
            format!("{rate}"),
            r.ipc(),
            r.lsq.invalidations,
            r.lsq.invalidation_squashes,
        );
    }

    println!("\nAlpha-style same-address ordering traps (scheme 1), with and without");
    println!("the load buffer standing in for the full load-queue search:\n");
    println!(
        "{:<26} {:>6} {:>12} {:>12} {:>12}",
        "design", "IPC", "LL traps", "LQ searches", "LB searches"
    );
    let mut conventional = LsqConfig::default();
    conventional.load_load_squash = true;
    let c = run(&bench, conventional, 0.0);
    println!(
        "{:<26} {:>6.2} {:>12} {:>12} {:>12}",
        "conventional (LQ search)",
        c.ipc(),
        c.lsq.load_load_violations,
        c.lsq.lq_searches_by_loads,
        c.lsq.lb_searches,
    );
    let mut with_lb = LsqConfig::default();
    with_lb.load_load_squash = true;
    with_lb.load_order = LoadOrderPolicy::LoadBuffer(2);
    let l = run(&bench, with_lb, 0.0);
    println!(
        "{:<26} {:>6.2} {:>12} {:>12} {:>12}",
        "2-entry load buffer",
        l.ipc(),
        l.lsq.load_load_violations,
        l.lsq.lq_searches_by_loads,
        l.lsq.lb_searches,
    );
    println!(
        "\nThe buffer confines the ordering check to the few out-of-order-issued \
         loads: same detection duty, no per-load search of the whole load queue."
    );
}
