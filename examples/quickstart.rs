//! Quickstart: simulate one synthetic SPEC2K-like workload through the
//! paper's base processor and print what the load/store queue saw.
//!
//! ```text
//! cargo run --release --example quickstart [bench]
//! ```

use lsq::prelude::*;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let profile = BenchProfile::named(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}; pick one of:");
        for p in BenchProfile::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    });

    // The paper's Table 1 machine with its base LSQ: 32-entry load and
    // store queues, 2 search ports, conventional searches.
    let mut sim = Simulator::new(SimConfig::default());
    let mut stream = profile.stream(1);
    sim.prewarm(&stream.data_regions(), stream.code_region());

    let result = sim.run(&mut stream, 200_000);

    println!("benchmark        : {}", profile.name);
    println!(
        "class            : {}",
        if profile.fp {
            "floating-point"
        } else {
            "integer"
        }
    );
    println!("instructions     : {}", result.committed);
    println!("cycles           : {}", result.cycles);
    println!("IPC              : {:.2}", result.ipc());
    println!(
        "branch mispredict: {:.2}%",
        result.branch_mispredict_rate() * 100.0
    );
    println!("L1D miss rate    : {:.2}%", result.l1d_miss_rate * 100.0);
    println!();
    println!("load/store queue activity:");
    println!("  loads issued          : {}", result.lsq.loads_issued);
    println!("  SQ searches (by loads): {}", result.lsq.sq_searches);
    println!("  ... that forwarded    : {}", result.lsq.sq_search_hits);
    println!(
        "  LQ searches by stores : {}",
        result.lsq.lq_searches_by_stores
    );
    println!(
        "  LQ searches by loads  : {}",
        result.lsq.lq_searches_by_loads
    );
    println!("  order violations      : {}", result.lsq.violations);
    println!("  avg LQ occupancy      : {:.1} / 32", result.lq_occupancy);
    println!("  avg SQ occupancy      : {:.1} / 32", result.sq_occupancy);
    println!(
        "  OoO-issued loads      : {:.1} (why a tiny load buffer suffices)",
        result.ooo_issued_loads
    );
}
