//! Scaling study (the paper's §4.3 / Figure 12 scenario on selected
//! benchmarks): as the processor widens and L1 latency grows, pressure on
//! the load/store queue rises, and the three techniques pay off more.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use lsq::prelude::*;

fn run(bench: &str, scaled: bool, lsq_cfg: LsqConfig) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let cfg = if scaled {
        SimConfig::scaled(lsq_cfg)
    } else {
        SimConfig::with_lsq(lsq_cfg)
    };
    let mut sim = Simulator::new(cfg);
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, 60_000);
    sim.run(&mut stream, 150_000)
}

fn main() {
    let benches = ["gcc", "perl", "equake", "mgrid", "swim"];
    println!("All three techniques (pair predictor + 2-entry load buffer + self-circular");
    println!("4x28 segmentation) on a ONE-ported LSQ, vs the conventional two-ported LSQ,");
    println!("on the base (8-wide) and scaled (12-wide, 96-entry IQ, 3-cycle L1) cores.\n");
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}",
        "bench", "base speedup", "scaled speedup", "LQ occupancy", "(scaled LQ occ.)"
    );
    for bench in benches {
        let base_conv = run(bench, false, LsqConfig::default());
        let base_tech = run(bench, false, LsqConfig::all_techniques_one_port());
        let scaled_conv = run(bench, true, LsqConfig::default());
        let scaled_tech = run(bench, true, LsqConfig::all_techniques_one_port());
        println!(
            "{:<10} {:>13.2}x {:>13.2}x {:>16.1} {:>16.1}",
            bench,
            base_tech.speedup_over(&base_conv),
            scaled_tech.speedup_over(&scaled_conv),
            base_tech.lq_occupancy,
            scaled_tech.lq_occupancy,
        );
    }
    println!(
        "\nThe paper's claim: the scaled processor keeps more memory instructions in \
         flight, so the capacity (segmentation) and bandwidth (predictor + load \
         buffer) techniques gain more — especially on floating-point codes."
    );
}
