//! End-to-end checks of the observability subsystem: traced runs must
//! reproduce untraced counters exactly, the serialized trace formats
//! must parse, the windowed timeline must partition the run so per-window
//! IPC sums back to the aggregate, and the per-PC attribution must point
//! at the offending static instruction.

use lsq::isa::{Addr, ArchReg, InstrKind, Instruction, Pc, VecStream};
use lsq::obs::{Event, Json, SampleInput, Sampler, SharedTracer, TraceBuffer, TraceConfig};
use lsq::prelude::*;

/// A loop whose store's data arrives late, so the same-address load
/// issues prematurely and triggers memory-order violations (the shape
/// used by the pipeline's own squash tests).
fn violation_workload(iters: u64) -> Vec<Instruction> {
    let mut instrs = Vec::new();
    for i in 0..iters {
        let pc = 0x1000 + (i % 8) * 32;
        instrs.push(Instruction::op(Pc(pc), InstrKind::FpDiv).with_dst(ArchReg::fp(1)));
        instrs.push(
            Instruction::op(Pc(pc + 4), InstrKind::IntAlu)
                .with_dst(ArchReg::int(2))
                .with_src(ArchReg::int(2)),
        );
        instrs.push(Instruction::store(Pc(pc + 8), Addr(0x80)).with_src(ArchReg::fp(1)));
        instrs.push(Instruction::load(Pc(pc + 12), Addr(0x80)).with_dst(ArchReg::int(4)));
    }
    instrs
}

/// Runs the violation workload with a tracer and sampler attached,
/// returning the result, the trace snapshot, and the flushed sampler.
fn traced_run(iters: u64, window: u64) -> (lsq::pipeline::SimResult, TraceBuffer, Sampler) {
    let instrs = violation_workload(iters);
    let n = instrs.len() as u64;
    let mut stream = VecStream::new(instrs);
    let tracer = SharedTracer::new();
    let mut sim = Simulator::with_tracer(SimConfig::default(), tracer.clone());
    sim.set_sampler(Sampler::new(window));
    let r = sim.run(&mut stream, n);
    let sampler = sim.take_sampler().expect("sampler was set");
    (r, tracer.snapshot(), sampler)
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let instrs = violation_workload(100);
    let n = instrs.len() as u64;
    let mut plain_stream = VecStream::new(instrs);
    let mut plain = Simulator::new(SimConfig::default());
    let p = plain.run(&mut plain_stream, n);
    let (t, buf, _) = traced_run(100, 64);
    assert_eq!(p.cycles, t.cycles);
    assert_eq!(p.committed, t.committed);
    assert_eq!(p.violation_squashes, t.violation_squashes);
    assert_eq!(p.lsq.sq_searches, t.lsq.sq_searches);
    assert_eq!(p.lsq.violations, t.lsq.violations);
    assert!(buf.total() > 0, "the traced twin actually recorded events");
}

#[test]
fn jsonl_trace_parses_line_by_line() {
    let (r, buf, _) = traced_run(60, 128);
    let jsonl = buf.to_jsonl();
    let mut names = std::collections::HashSet::new();
    let mut lines = 0u64;
    for line in jsonl.lines() {
        let v = Json::parse(line).expect("every JSONL line is valid JSON");
        let cycle = v.get("cycle").and_then(Json::as_u64).expect("cycle field");
        assert!(cycle <= r.cycles, "cycle {cycle} within the run");
        names.insert(
            v.get("event")
                .and_then(Json::as_str)
                .expect("event field")
                .to_string(),
        );
        lines += 1;
    }
    assert_eq!(lines as usize, buf.len());
    for expected in ["dispatch", "issue", "sq_search", "violation", "squash"] {
        assert!(names.contains(expected), "missing event kind {expected}");
    }
}

#[test]
fn chrome_trace_parses_and_carries_lane_metadata() {
    let (_, buf, sampler) = traced_run(60, 128);
    let parsed = Json::parse(&buf.to_chrome_trace()).expect("chrome trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // 6 thread_name metadata rows precede the payload events.
    let meta: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .collect();
    assert_eq!(meta.len(), 6, "one metadata row per lane");
    let payload: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .collect();
    assert_eq!(payload.len(), buf.len());
    for e in payload {
        let ph = e.get("ph").and_then(Json::as_str).expect("phase");
        assert!(ph == "i" || ph == "X", "instant or complete, got {ph}");
        assert!(e.get("ts").and_then(Json::as_u64).is_some(), "timestamp");
        assert!(e.get("name").and_then(Json::as_str).is_some(), "name");
        let tid = e.get("tid").and_then(Json::as_u64).expect("lane");
        assert!(tid < 6, "lane {tid} in range");
        if ph == "X" {
            assert!(e.get("dur").and_then(Json::as_u64).unwrap() >= 1);
        }
    }
    // The CSV sidecar is also well-formed.
    let csv = sampler.to_csv();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "start_cycle,end_cycle,cycles,committed,ipc,lq_occupancy,sq_occupancy,\
         inflight_loads,sq_searches,lq_searches"
    );
    assert!(lines.next().is_some(), "at least one data row");
}

#[test]
fn windowed_ipc_sums_back_to_aggregate_ipc() {
    let (r, _, sampler) = traced_run(120, 64);
    let rows = sampler.rows();
    assert!(rows.len() >= 2, "run spans several windows");
    let cycles: u64 = rows.iter().map(|w| w.cycles).sum();
    let committed: u64 = rows.iter().map(|w| w.committed).sum();
    assert_eq!(cycles, r.cycles, "windows partition the run's cycles");
    assert_eq!(committed, r.committed, "windows partition commits");
    let windowed_ipc = committed as f64 / cycles as f64;
    assert!(
        (windowed_ipc - r.ipc()).abs() < 1e-12,
        "windowed {windowed_ipc} vs aggregate {}",
        r.ipc()
    );
    // The last (partial) window still ends at the final cycle.
    assert_eq!(rows.last().unwrap().end_cycle, r.cycles);
}

#[test]
fn attribution_points_at_the_violating_loads() {
    let (r, buf, _) = traced_run(200, 256);
    assert!(r.violation_squashes > 0, "workload must squash");
    let attrib = buf.attribution();
    assert!(!attrib.is_empty());
    // Every violating load in the workload sits at pc % 32 == 12.
    let top = attrib.top(4);
    assert!(!top.is_empty());
    let squashed_pcs: Vec<u64> = top
        .iter()
        .filter(|(_, c)| c.squashes > 0)
        .map(|(pc, _)| *pc)
        .collect();
    assert!(!squashed_pcs.is_empty(), "squashes are attributed");
    for pc in &squashed_pcs {
        assert_eq!(pc % 32, 12, "squash attributed to a load PC (got {pc:#x})");
    }
    let report = attrib.report(4);
    assert!(report.contains("pc"), "report has a header");
}

#[test]
fn trace_config_writes_parseable_files() {
    let dir = std::env::temp_dir().join("lsq_trace_obs_test");
    let _ = std::fs::remove_dir_all(&dir);
    let chrome = dir.join("run.json");
    let cfg = TraceConfig::parse(&format!("{}:chrome", chrome.display()), Some("64"));
    let (_, buf, sampler) = traced_run(60, 64);
    let written = cfg.write(&buf, Some(&sampler)).expect("write succeeds");
    assert_eq!(written.len(), 2, "chrome file plus timeline sidecar");
    let text = std::fs::read_to_string(&chrome).unwrap();
    assert!(Json::parse(&text).is_ok(), "written chrome trace parses");
    let timeline = std::fs::read_to_string(cfg.timeline_path()).unwrap();
    assert!(timeline.starts_with("start_cycle,"));
    assert!(timeline.lines().count() >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nop_tracer_interface_is_inert() {
    // The default-tracer simulator compiles and runs with no ring at
    // all; this is the configuration the benchmarks measure.
    let mut sampler = Sampler::new(4);
    sampler.observe(
        1,
        SampleInput {
            committed: 2,
            lq_occupancy: 0,
            sq_occupancy: 0,
            sq_searches: 0,
            lq_searches: 0,
            inflight_loads: 0,
        },
    );
    sampler.flush();
    assert_eq!(sampler.rows().len(), 1);
    let buf = TraceBuffer::new();
    assert!(buf.is_empty());
    let _ = Event::LbSearch { load: 1 };
}
