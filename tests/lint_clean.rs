//! Tier-1 gate: the workspace must satisfy its own architectural
//! linter (`crates/lint`). A violation anywhere in the tree — an
//! allocation on a marked hot path, an unregistered `LSQ_*` knob, a
//! non-trivial `Nop*` impl, a bare `unwrap()` in a library crate —
//! fails `cargo test`, not just a separately-run CI job.

use std::path::Path;

/// The workspace root: this integration test lives in `<root>/tests/`.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let diags = lsq_lint::lint_workspace(workspace_root()).expect("lint walk succeeds");
    assert!(
        diags.is_empty(),
        "lsq-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_self_check_passes() {
    let failures = lsq_lint::self_check();
    assert!(
        failures.is_empty(),
        "lint self-check failed:\n{}",
        failures.join("\n")
    );
}
