//! The event-driven scheduler must be architecturally invisible: every
//! counter in [`SimResult`] must be bit-identical to the reference
//! polling scheduler (which re-scans the whole issue queue against the
//! ROB every cycle, the way the simulator originally worked).
//!
//! The argument for why they agree: all execution latencies are at
//! least one cycle, so no instruction becomes ready as a consequence of
//! a same-cycle issue — the set of ready instructions is fixed when the
//! cycle starts. The polling scan visits that set in program order; the
//! event scheduler pops a min-heap keyed by sequence number, which
//! yields the same order. Resource-stalled candidates are deferred and
//! re-queued, matching the scan's skip-and-revisit. These tests pin
//! that equivalence across the design points that stress every issue
//! path: forwarding, squashes, the load buffer, and segmented search.

use lsq::core::{LsqConfig, PredictorKind, SegAlloc};
use lsq::experiments::runner::diff_results;
use lsq::pipeline::{SimConfig, SimResult, Simulator};
use lsq::trace::BenchProfile;

const WARMUP: u64 = 3_000;
const INSTRS: u64 = 10_000;

/// Runs `bench` × `lsq_cfg` with warm-up differencing, with either the
/// event scheduler (default) or the reference polling scheduler.
fn run(bench: &str, lsq_cfg: LsqConfig, polling: bool) -> SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    if polling {
        sim.set_reference_scheduler();
    }
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, WARMUP);
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, INSTRS);
    diff_results(&before, &after)
}

fn design_points() -> Vec<(&'static str, LsqConfig)> {
    vec![
        ("conventional2", LsqConfig::default()),
        (
            "pair",
            LsqConfig {
                predictor: PredictorKind::Pair,
                ..LsqConfig::default()
            },
        ),
        ("lb1", LsqConfig::with_techniques(1)),
        ("segmented", LsqConfig::segmented(SegAlloc::SelfCircular)),
    ]
}

fn assert_equivalent(bench: &str) {
    for (label, cfg) in design_points() {
        let event = run(bench, cfg, false);
        let polling = run(bench, cfg, true);
        // SimResult has no float-free Eq; the Debug rendering covers
        // every field (occupancy means included) exactly. wall_nanos
        // and sim_mips are both zero here — only the engine stamps
        // them — so the comparison is purely architectural.
        assert_eq!(
            format!("{event:?}"),
            format!("{polling:?}"),
            "{bench}/{label}: event scheduler diverged from polling reference"
        );
        assert!(event.committed >= INSTRS, "{bench}/{label}: run too short");
    }
}

#[test]
fn gzip_schedulers_agree() {
    assert_equivalent("gzip");
}

#[test]
fn mcf_schedulers_agree() {
    assert_equivalent("mcf");
}

#[test]
fn mgrid_schedulers_agree() {
    assert_equivalent("mgrid");
}
