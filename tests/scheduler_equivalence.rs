//! The event-driven scheduler must be architecturally invisible: every
//! counter in [`SimResult`] must be bit-identical to the reference
//! polling scheduler (which re-scans the whole issue queue against the
//! ROB every cycle, the way the simulator originally worked).
//!
//! The argument for why they agree: all execution latencies are at
//! least one cycle, so no instruction becomes ready as a consequence of
//! a same-cycle issue — the set of ready instructions is fixed when the
//! cycle starts. The polling scan visits that set in program order; the
//! event scheduler pops a min-heap keyed by sequence number, which
//! yields the same order. Resource-stalled candidates are deferred and
//! re-queued, matching the scan's skip-and-revisit. These tests pin
//! that equivalence across the design points that stress every issue
//! path: forwarding, squashes, the load buffer, and segmented search.

use lsq::core::{LsqConfig, PredictorKind, SegAlloc};
use lsq::experiments::runner::diff_results;
use lsq::obs::NopTracer;
use lsq::pipeline::{
    NopAccountant, NopProfiler, PipeviewRecorder, SimConfig, SimResult, Simulator, SlotAccountant,
};
use lsq::trace::BenchProfile;

const WARMUP: u64 = 3_000;
const INSTRS: u64 = 10_000;

/// Runs `bench` × `lsq_cfg` with warm-up differencing, with either the
/// event scheduler (default) or the reference polling scheduler.
fn run(bench: &str, lsq_cfg: LsqConfig, polling: bool) -> SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    if polling {
        sim.set_reference_scheduler();
    }
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, WARMUP);
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, INSTRS);
    diff_results(&before, &after)
}

/// Like [`run`], but with the cycle accountant attached, so the
/// differenced result carries a CPI stack for the measured window.
fn run_accounted(bench: &str, lsq_cfg: LsqConfig, polling: bool) -> SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::with_all(
        SimConfig::with_lsq(lsq_cfg),
        NopTracer,
        NopProfiler,
        SlotAccountant::new(),
    );
    if polling {
        sim.set_reference_scheduler();
    }
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, WARMUP);
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, INSTRS);
    diff_results(&before, &after)
}

/// Like [`run`], but with the lifecycle recorder attached, so the
/// differenced result carries per-stage latency histograms.
fn run_recorded(bench: &str, lsq_cfg: LsqConfig, polling: bool) -> SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::with_lifecycle(
        SimConfig::with_lsq(lsq_cfg),
        NopTracer,
        NopProfiler,
        NopAccountant,
        PipeviewRecorder::new(4096),
    );
    if polling {
        sim.set_reference_scheduler();
    }
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, WARMUP);
    let before = sim.run(&mut stream, 0);
    let after = sim.run(&mut stream, INSTRS);
    diff_results(&before, &after)
}

fn design_points() -> Vec<(&'static str, LsqConfig)> {
    vec![
        ("conventional2", LsqConfig::default()),
        (
            "pair",
            LsqConfig {
                predictor: PredictorKind::Pair,
                ..LsqConfig::default()
            },
        ),
        ("lb1", LsqConfig::with_techniques(1)),
        ("segmented", LsqConfig::segmented(SegAlloc::SelfCircular)),
    ]
}

fn assert_equivalent(bench: &str) {
    for (label, cfg) in design_points() {
        let event = run(bench, cfg, false);
        let polling = run(bench, cfg, true);
        // SimResult has no float-free Eq; the Debug rendering covers
        // every field (occupancy means included) exactly. wall_nanos
        // and sim_mips are both zero here — only the engine stamps
        // them — so the comparison is purely architectural.
        assert_eq!(
            format!("{event:?}"),
            format!("{polling:?}"),
            "{bench}/{label}: event scheduler diverged from polling reference"
        );
        assert!(event.committed >= INSTRS, "{bench}/{label}: run too short");
    }
}

/// Cycle accounting is pure observability: attaching the accountant
/// must leave every architectural counter bit-identical, and the stack
/// it emits must partition the measured window exactly — components
/// sum to `cycles × commit_width`, with the base component equal to the
/// committed-instruction count. Checked across all four design points
/// (and two benchmarks, one cache-bound) so every stall-classification
/// path is exercised.
#[test]
fn accounting_is_invisible_and_partitions_every_slot() {
    for bench in ["gzip", "mcf"] {
        for (label, cfg) in design_points() {
            let plain = run(bench, cfg, false);
            let mut accounted = run_accounted(bench, cfg, false);
            let stack = accounted
                .cpi_stack
                .take()
                .expect("accounted run reports a CPI stack");
            assert_eq!(
                format!("{plain:?}"),
                format!("{accounted:?}"),
                "{bench}/{label}: accounting perturbed the simulation"
            );
            assert_eq!(
                stack.total_slots(),
                accounted.cycles * stack.commit_width,
                "{bench}/{label}: stack does not partition the window"
            );
            assert_eq!(
                stack.slots("base"),
                accounted.committed,
                "{bench}/{label}: base slots must equal committed instructions"
            );
        }
    }
}

/// The lifecycle recorder is pure observability, same contract as the
/// accountant: attaching it must leave every architectural counter
/// bit-identical across all four design points, and the stage-latency
/// histograms it emits must cover every committed instruction of the
/// measured window exactly once.
#[test]
fn lifecycle_recording_is_invisible_and_covers_every_commit() {
    for bench in ["gzip", "mcf"] {
        for (label, cfg) in design_points() {
            let plain = run(bench, cfg, false);
            let mut recorded = run_recorded(bench, cfg, false);
            let stages = recorded
                .stage_latency
                .take()
                .expect("recorded run reports stage latencies");
            assert_eq!(
                format!("{plain:?}"),
                format!("{recorded:?}"),
                "{bench}/{label}: lifecycle recording perturbed the simulation"
            );
            // Every committed instruction was dispatched and issued, and
            // the recorder was attached for the whole run, so the
            // windowed dispatch→issue histogram observes each exactly
            // once.
            let (name, dispatch_to_issue) = stages.stages()[0];
            assert_eq!(name, "dispatch_to_issue");
            assert_eq!(
                dispatch_to_issue.count(),
                recorded.committed,
                "{bench}/{label}: dispatch→issue must cover every committed instruction"
            );
        }
    }
}

/// The CPI stack is part of the architectural state the two schedulers
/// must agree on: an accounted event-driven run and an accounted
/// polling run must produce bit-identical stacks (the stack is in the
/// `SimResult` Debug rendering, so full-result equality covers it).
#[test]
fn accounted_schedulers_agree() {
    for (label, cfg) in design_points() {
        let event = run_accounted("gzip", cfg, false);
        let polling = run_accounted("gzip", cfg, true);
        assert!(event.cpi_stack.is_some(), "gzip/{label}: stack missing");
        assert_eq!(
            format!("{event:?}"),
            format!("{polling:?}"),
            "gzip/{label}: accounted schedulers diverged"
        );
    }
}

#[test]
fn gzip_schedulers_agree() {
    assert_equivalent("gzip");
}

#[test]
fn mcf_schedulers_agree() {
    assert_equivalent("mcf");
}

#[test]
fn mgrid_schedulers_agree() {
    assert_equivalent("mgrid");
}
