//! Shape tests: re-run scaled-down versions of the paper's key
//! comparisons and assert the qualitative results the paper reports.
//! (The full-budget runs live in `lsq-experiments`' binaries; these use
//! small instruction budgets so `cargo test` stays fast, and assert only
//! directions/orderings, not magnitudes.)

use lsq::core::{LoadOrderPolicy, LsqConfig, PredictorKind, SegAlloc};
use lsq::prelude::*;

const WARMUP: u64 = 10_000;
const INSTRS: u64 = 25_000;

fn run(bench: &str, lsq_cfg: LsqConfig) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let _ = sim.run(&mut stream, WARMUP);
    sim.run(&mut stream, INSTRS)
}

/// Figure 6 shape: search-demand ordering perfect < pair < conventional,
/// and every predictor removes most searches.
#[test]
fn fig6_shape_predictors_cut_sq_demand() {
    for bench in ["gcc", "mgrid"] {
        let base = run(bench, LsqConfig::default());
        let perfect = run(
            bench,
            LsqConfig {
                predictor: PredictorKind::Perfect,
                ..LsqConfig::default()
            },
        );
        let pair = run(
            bench,
            LsqConfig {
                predictor: PredictorKind::Pair,
                ..LsqConfig::default()
            },
        );
        let b = base.lsq.sq_searches as f64;
        let p = perfect.lsq.sq_searches as f64 / b;
        let q = pair.lsq.sq_searches as f64 / b;
        assert!(p < 0.6, "{bench}: perfect demand {p:.2}");
        assert!(q < 0.8, "{bench}: pair demand {q:.2}");
        assert!(
            p <= q + 0.05,
            "{bench}: perfect ({p:.2}) must not exceed pair ({q:.2})"
        );
    }
}

/// Figure 8 shape: the 2-entry load buffer removes most load-queue
/// searches; mgrid (load-heavy) reduces more than vortex (store-heavy).
#[test]
fn fig8_shape_load_buffer_cuts_lq_demand() {
    let lb = LsqConfig {
        load_order: LoadOrderPolicy::LoadBuffer(2),
        ..LsqConfig::default()
    };
    let mut ratios = std::collections::HashMap::new();
    for bench in ["mgrid", "vortex"] {
        let base = run(bench, LsqConfig::default());
        let with_lb = run(bench, lb);
        let ratio = with_lb.lsq.lq_searches() as f64 / base.lsq.lq_searches().max(1) as f64;
        assert!(ratio < 0.75, "{bench}: LQ demand ratio {ratio:.2}");
        ratios.insert(bench, ratio);
    }
    assert!(
        ratios["mgrid"] < ratios["vortex"],
        "load-heavy mgrid ({:.2}) must reduce more than store-heavy vortex ({:.2})",
        ratios["mgrid"],
        ratios["vortex"]
    );
}

/// Figure 9 shape: in-order load issue is worse than the 2-entry load
/// buffer, and 4 entries is at least as good as 1.
#[test]
fn fig9_shape_load_buffer_sizing() {
    let bench = "equake";
    let mk = |o| LsqConfig {
        load_order: o,
        ..LsqConfig::default()
    };
    let in_order = run(bench, mk(LoadOrderPolicy::InOrderAlwaysSearch));
    let lb2 = run(bench, mk(LoadOrderPolicy::LoadBuffer(2)));
    let lb4 = run(bench, mk(LoadOrderPolicy::LoadBuffer(4)));
    assert!(
        lb2.ipc() > in_order.ipc(),
        "2-entry buffer ({:.2}) must beat in-order issue ({:.2})",
        lb2.ipc(),
        in_order.ipc()
    );
    assert!(
        lb4.ipc() >= lb2.ipc() * 0.97,
        "4 entries ({:.2}) must not fall below 2 entries ({:.2})",
        lb4.ipc(),
        lb2.ipc()
    );
}

/// Figure 10 shape: one conventional port loses clearly; adding both
/// techniques recovers most of the loss.
#[test]
fn fig10_shape_techniques_rescue_one_port() {
    let bench = "perl";
    let base = run(bench, LsqConfig::default());
    let one = run(bench, LsqConfig::conventional(1));
    let one_tech = run(bench, LsqConfig::with_techniques(1));
    assert!(
        one.ipc() < base.ipc() * 0.9,
        "1 port ({:.2}) must lose vs 2 ports ({:.2})",
        one.ipc(),
        base.ipc()
    );
    assert!(
        one_tech.ipc() > one.ipc() * 1.15,
        "techniques ({:.2}) must rescue the 1-port queue ({:.2})",
        one_tech.ipc(),
        one.ipc()
    );
}

/// Figure 11 shape: segmentation's capacity gains show on an FP benchmark
/// with heavy queue demand, and self-circular does not trail
/// no-self-circular.
#[test]
fn fig11_shape_segmentation_helps_fp() {
    let bench = "swim";
    let base = run(bench, LsqConfig::default());
    let nsc = run(bench, LsqConfig::segmented(SegAlloc::NoSelfCircular));
    let sc = run(bench, LsqConfig::segmented(SegAlloc::SelfCircular));
    assert!(
        sc.ipc() > base.ipc() * 1.05,
        "segmentation ({:.2}) must beat the 32-entry base ({:.2})",
        sc.ipc(),
        base.ipc()
    );
    assert!(
        sc.ipc() >= nsc.ipc() * 0.97,
        "self-circular ({:.2}) must not trail no-self-circular ({:.2})",
        sc.ipc(),
        nsc.ipc()
    );
}

/// Table 6 shape: under self-circular allocation, most forwarding
/// searches finish within one or two segments.
#[test]
fn table6_shape_searches_stay_local() {
    let r = run("gcc", LsqConfig::segmented(SegAlloc::SelfCircular));
    let h = &r.lsq.seg_search_hist;
    let within_two = h.fraction(0) + h.fraction(1);
    assert!(
        within_two > 0.8,
        "within-two-segments fraction {within_two:.2}"
    );
}

/// Table 5 shape: FP streaming codes need far more queue entries than
/// compact INT codes.
#[test]
fn table5_shape_fp_wants_more_capacity() {
    let unclamped = LsqConfig {
        lq_entries: 256,
        sq_entries: 256,
        ..LsqConfig::default()
    };
    let int = run("gcc", unclamped);
    let fp = run("mgrid", unclamped);
    assert!(
        fp.lq_occupancy > 1.5 * int.lq_occupancy,
        "mgrid LQ demand ({:.0}) must clearly exceed gcc's ({:.0})",
        fp.lq_occupancy,
        int.lq_occupancy
    );
}
