//! Cross-crate integration tests: whole-simulator runs over the synthetic
//! workloads, checking determinism, accounting invariants, and that every
//! benchmark and LSQ design point drives to completion.

#![allow(clippy::field_reassign_with_default)] // tests mutate one field of a default config

use lsq::core::{LoadOrderPolicy, LsqConfig, PredictorKind, SegAlloc};
use lsq::prelude::*;

fn run(bench: &str, lsq_cfg: LsqConfig, instrs: u64, seed: u64) -> lsq::pipeline::SimResult {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(seed);
    let mut sim = Simulator::new(SimConfig::with_lsq(lsq_cfg));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    sim.run(&mut stream, instrs)
}

#[test]
fn identical_runs_are_bit_deterministic() {
    let a = run("gcc", LsqConfig::default(), 8_000, 3);
    let b = run("gcc", LsqConfig::default(), 8_000, 3);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.lsq.sq_searches, b.lsq.sq_searches);
    assert_eq!(a.violation_squashes, b.violation_squashes);
    assert_eq!(a.branch_mispredictions, b.branch_mispredictions);
}

#[test]
fn different_dynamic_seeds_differ() {
    let a = run("gcc", LsqConfig::default(), 8_000, 1);
    let b = run("gcc", LsqConfig::default(), 8_000, 2);
    assert_ne!(
        (a.cycles, a.lsq.sq_searches),
        (b.cycles, b.lsq.sq_searches),
        "dynamic randomness must vary with the seed"
    );
}

#[test]
fn every_benchmark_completes_on_base_config() {
    for p in BenchProfile::all() {
        let r = run(p.name, LsqConfig::default(), 3_000, 1);
        assert!(r.committed >= 3_000, "{} committed {}", p.name, r.committed);
        assert!(!r.hit_cycle_cap, "{} hit the cycle cap", p.name);
        assert!(r.ipc() > 0.02, "{} ipc {}", p.name, r.ipc());
    }
}

#[test]
fn every_design_point_completes() {
    let designs = [
        LsqConfig::conventional(1),
        LsqConfig::conventional(4),
        LsqConfig {
            predictor: PredictorKind::Perfect,
            ..LsqConfig::default()
        },
        LsqConfig {
            predictor: PredictorKind::Aggressive,
            ..LsqConfig::default()
        },
        LsqConfig {
            predictor: PredictorKind::Pair,
            ..LsqConfig::default()
        },
        LsqConfig {
            load_order: LoadOrderPolicy::InOrderAlwaysSearch,
            ..LsqConfig::default()
        },
        LsqConfig {
            load_order: LoadOrderPolicy::InOrderNoSearch,
            ..LsqConfig::default()
        },
        LsqConfig {
            load_order: LoadOrderPolicy::LoadBuffer(2),
            ..LsqConfig::default()
        },
        LsqConfig::segmented(SegAlloc::NoSelfCircular),
        LsqConfig::segmented(SegAlloc::SelfCircular),
        LsqConfig::with_techniques(1),
        LsqConfig::all_techniques_one_port(),
    ];
    for (i, d) in designs.into_iter().enumerate() {
        let r = run("twolf", d, 4_000, 1);
        assert!(r.committed >= 4_000, "design {i} committed {}", r.committed);
        assert!(!r.hit_cycle_cap, "design {i} deadlocked");
    }
}

#[test]
fn scaled_processor_completes() {
    let profile = BenchProfile::named("mesa").unwrap();
    let mut stream = profile.stream(1);
    let mut sim = Simulator::new(SimConfig::scaled(LsqConfig::all_techniques_one_port()));
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let r = sim.run(&mut stream, 5_000);
    assert!(r.committed >= 5_000);
    assert!(!r.hit_cycle_cap);
}

#[test]
fn committed_mix_matches_profile() {
    let p = BenchProfile::named("vortex").unwrap();
    let r = run("vortex", LsqConfig::default(), 20_000, 1);
    let loads = r.loads_committed as f64 / r.committed as f64;
    let stores = r.stores_committed as f64 / r.committed as f64;
    assert!(
        (loads - p.loads).abs() < 0.06,
        "load mix {loads:.3} vs {:.3}",
        p.loads
    );
    assert!(
        (stores - p.stores).abs() < 0.06,
        "store mix {stores:.3} vs {:.3}",
        p.stores
    );
}

#[test]
fn accounting_invariants_hold() {
    let r = run("gzip", LsqConfig::default(), 15_000, 1);
    // Every committed load/store was dispatched at least once.
    assert!(r.lsq.loads_dispatched >= r.loads_committed);
    assert!(r.lsq.stores_dispatched >= r.stores_committed);
    // In the conventional scheme every issued load searches both queues.
    assert_eq!(r.lsq.sq_searches, r.lsq.loads_issued);
    assert_eq!(r.lsq.lq_searches_by_loads, r.lsq.loads_issued);
    // Forwarding hits are a subset of searches.
    assert!(r.lsq.sq_search_hits <= r.lsq.sq_searches);
    // Stores drain once each; at most a handful retired at run end are
    // still waiting in the store queue to drain.
    assert!(r.lsq.stores_committed <= r.stores_committed);
    assert!(r.stores_committed - r.lsq.stores_committed < 40);
    // Occupancies stay within the configured capacity.
    assert!(r.lq_occupancy <= 32.0);
    assert!(r.sq_occupancy <= 32.0);
}

#[test]
fn squashed_work_is_refetched_exactly() {
    // Violations cause squash-and-refetch; dispatched > committed, but
    // the committed stream length is exactly the requested budget.
    let mut cfg = LsqConfig::default();
    cfg.predictor = PredictorKind::Aggressive; // provokes squashes
    let r = run("vortex", cfg, 20_000, 1);
    assert!(r.committed >= 20_000);
    if r.violation_squashes > 0 {
        assert!(r.lsq.loads_dispatched > r.loads_committed);
    }
}

#[test]
fn load_buffer_eliminates_load_queue_searches_by_loads() {
    let mut cfg = LsqConfig::default();
    cfg.load_order = LoadOrderPolicy::LoadBuffer(2);
    let r = run("mgrid", cfg, 10_000, 1);
    assert_eq!(r.lsq.lq_searches_by_loads, 0);
    assert!(r.lsq.lb_searches > 0);
    assert!(
        r.lsq.lq_searches_by_stores > 0,
        "store violation searches remain"
    );
}

#[test]
fn pair_predictor_cuts_store_queue_searches() {
    let base = run("mgrid", LsqConfig::default(), 15_000, 1);
    let mut cfg = LsqConfig::default();
    cfg.predictor = PredictorKind::Pair;
    let pair = run("mgrid", cfg, 15_000, 1);
    assert!(
        (pair.lsq.sq_searches as f64) < 0.7 * base.lsq.sq_searches as f64,
        "pair {} vs base {}",
        pair.lsq.sq_searches,
        base.lsq.sq_searches
    );
}
