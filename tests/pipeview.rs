//! End-to-end checks of the per-instruction pipeline viewer: a recorded
//! run's Konata/O3 log must round-trip through the parsers covering
//! every committed instruction exactly once (squashed instances
//! flagged, never double-counted), squash-heavy workloads must
//! terminate their victims' records with the right cause, and the
//! engine's `LSQ_PIPEVIEW` path must write a parseable log while
//! accounting ring overflow in `lsq_pipeview_dropped_total`.
//!
//! The env-dependent assertions are confined to a single `#[test]`
//! (mirroring `telemetry_profile.rs`); the remaining tests never read
//! the environment.

use lsq::core::LsqConfig;
use lsq::experiments::{telemetry, Engine, Job, RunSpec};
use lsq::isa::{Addr, ArchReg, InstrKind, Instruction, Pc, VecStream};
use lsq::obs::{
    parse_konata, parse_o3, parse_pipeview, NopTracer, PipeRecord, PipeviewConfig, SquashCause,
};
use lsq::pipeline::{
    NopAccountant, NopProfiler, PipeviewRecorder, SimConfig, SimResult, Simulator,
};
use lsq::trace::BenchProfile;
use std::collections::HashSet;
use std::sync::Mutex;

/// Serializes the tests that mutate process environment variables.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Holds the env lock and restores every listed variable on drop.
struct EnvGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
    saved: Vec<(&'static str, Option<std::ffi::OsString>)>,
}

impl EnvGuard {
    fn new(vars: &[&'static str]) -> Self {
        let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = vars.iter().map(|&v| (v, std::env::var_os(v))).collect();
        Self { _lock: lock, saved }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        for (var, prior) in &self.saved {
            match prior {
                Some(v) => std::env::set_var(var, v),
                None => std::env::remove_var(var),
            }
        }
    }
}

/// Runs `bench` for `n` instructions with a lifecycle recorder sized to
/// hold every finished record, returning the cumulative result and the
/// drained records.
fn recorded_run(bench: &str, n: u64) -> (SimResult, Vec<PipeRecord>) {
    let profile = BenchProfile::named(bench).expect("known benchmark");
    let mut stream = profile.stream(7);
    let mut sim = Simulator::with_lifecycle(
        SimConfig::with_lsq(LsqConfig::default()),
        NopTracer,
        NopProfiler,
        NopAccountant,
        PipeviewRecorder::new(1 << 16),
    );
    sim.prewarm(&stream.data_regions(), stream.code_region());
    let res = sim.run(&mut stream, n);
    assert_eq!(sim.pipeview_dropped(), 0, "ring sized to hold everything");
    let records = sim
        .take_pipeview_records()
        .expect("recorder drains records");
    (res, records)
}

/// Every committed instruction must appear in the rendered log exactly
/// once, in both formats, and squashed instances must be flagged rather
/// than counted as retirements.
#[test]
fn konata_and_o3_round_trip_cover_every_commit_exactly_once() {
    let (res, records) = recorded_run("gzip", 4_000);
    let committed: Vec<&PipeRecord> = records.iter().filter(|r| r.commit.is_some()).collect();
    assert_eq!(
        committed.len() as u64,
        res.committed,
        "one finished record per committed instruction"
    );
    let seqs: HashSet<u64> = committed.iter().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), committed.len(), "committed seqs are unique");

    // Konata: write through the configured file path and parse back.
    let path = std::env::temp_dir().join(format!("lsq_pipeview_rt_{}.kanata", std::process::id()));
    let cfg = PipeviewConfig::parse(&format!("{}:konata", path.display()));
    let written = cfg.write(&records).expect("write konata log");
    let text = std::fs::read_to_string(&written).expect("read back konata log");
    let _ = std::fs::remove_file(&written);
    let parsed = parse_konata(&text).expect("konata log parses");
    assert_eq!(parsed.len(), records.len(), "one parsed instr per record");
    let parsed_committed: Vec<_> = parsed
        .iter()
        .filter(|p| p.retire.is_some() && !p.squashed)
        .collect();
    assert_eq!(parsed_committed.len() as u64, res.committed);
    let parsed_seqs: HashSet<u64> = parsed_committed.iter().map(|p| p.seq).collect();
    assert_eq!(parsed_seqs, seqs, "committed coverage is exactly-once");
    for p in &parsed_committed {
        assert!(!p.label.is_empty(), "konata carries a left-pane label");
    }
    // Format sniffing agrees with the explicit parser.
    assert_eq!(parse_pipeview(&text).expect("sniffed parse"), parsed);

    // O3: same coverage through the gem5 format.
    let o3 = parse_o3(&lsq::obs::to_o3(&records)).expect("o3 log parses");
    assert_eq!(o3.len(), records.len());
    let o3_seqs: HashSet<u64> = o3
        .iter()
        .filter(|p| p.retire.is_some() && !p.squashed)
        .map(|p| p.seq)
        .collect();
    assert_eq!(o3_seqs, seqs, "o3 committed coverage matches konata");
}

/// A store/load hazard workload: a slow store feeding a same-address
/// load, so memory-order violations (and their squashes) all occur.
fn violation_workload(iters: u64) -> Vec<Instruction> {
    let mut instrs = Vec::new();
    for i in 0..iters {
        let pc = 0x1000 + (i % 8) * 32;
        instrs.push(Instruction::op(Pc(pc), InstrKind::FpDiv).with_dst(ArchReg::fp(1)));
        instrs.push(
            Instruction::op(Pc(pc + 4), InstrKind::IntAlu)
                .with_dst(ArchReg::int(2))
                .with_src(ArchReg::int(2)),
        );
        instrs.push(Instruction::store(Pc(pc + 8), Addr(0x80)).with_src(ArchReg::fp(1)));
        instrs.push(Instruction::load(Pc(pc + 12), Addr(0x80)).with_dst(ArchReg::int(4)));
    }
    instrs
}

/// Squashes terminate the victims' records: each squashed record ends
/// with a cause and no commit stamp, the rendered log flags exactly
/// those instances, and squashed instances never leak into the
/// committed coverage even though their seqs are reused.
#[test]
fn squash_heavy_run_terminates_records_with_causes() {
    let instrs = violation_workload(200);
    let n = instrs.len() as u64;
    let mut stream = VecStream::new(instrs);
    let mut sim = Simulator::with_lifecycle(
        SimConfig::default(),
        NopTracer,
        NopProfiler,
        NopAccountant,
        PipeviewRecorder::new(1 << 16),
    );
    let res = sim.run(&mut stream, n);
    assert!(res.violation_squashes > 0, "workload must squash");
    let records = sim.take_pipeview_records().expect("records drained");

    let squashed: Vec<&PipeRecord> = records.iter().filter(|r| r.squash.is_some()).collect();
    assert!(!squashed.is_empty(), "squash victims leave records");
    for r in &squashed {
        let (cycle, cause) = r.squash.expect("filtered on squash");
        assert!(
            r.commit.is_none(),
            "a record ends in commit or squash, never both"
        );
        assert!(
            cycle >= r.fetch,
            "squash cycle is within the record's lifetime"
        );
        assert_eq!(
            cause,
            SquashCause::MemOrder,
            "conventional scheme detects at execute"
        );
    }
    // Committed coverage is still exactly-once despite seq reuse.
    let committed = records.iter().filter(|r| r.commit.is_some()).count();
    assert_eq!(committed as u64, res.committed);

    // The Konata log flags exactly the squashed instances.
    let parsed = parse_konata(&lsq::obs::to_konata(&records)).expect("parses");
    assert_eq!(
        parsed.iter().filter(|p| p.squashed).count(),
        squashed.len(),
        "rendered log flags every squashed record"
    );
}

/// The engine path: `LSQ_PIPEVIEW` makes a batch write a parseable log,
/// and an undersized `LSQ_PIPEVIEW_CAP` ring truncates the log while
/// bumping `lsq_pipeview_dropped_total` so the loss is visible.
#[test]
fn env_knob_writes_log_and_ring_overflow_is_accounted() {
    let _env = EnvGuard::new(&["LSQ_PIPEVIEW", "LSQ_PIPEVIEW_CAP", "LSQ_ACCOUNTING"]);
    let path = std::env::temp_dir().join(format!("lsq_pipeview_env_{}.kanata", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("LSQ_PIPEVIEW", format!("{}:konata", path.display()));
    std::env::set_var("LSQ_PIPEVIEW_CAP", "64");
    std::env::remove_var("LSQ_ACCOUNTING");

    let jobs = vec![Job {
        bench: "gzip",
        lsq: LsqConfig::default(),
        scaled: false,
        spec: RunSpec {
            warmup: 500,
            instrs: 2_000,
            seed: 23,
        },
    }];
    let results = Engine::new().run_batch(&jobs);
    assert_eq!(results.len(), 1);
    assert!(
        results[0].stage_latency.is_some(),
        "recorded jobs report stage latencies"
    );

    // 2500 instructions through a 64-record ring: the written log holds
    // the newest 64 finished records and still parses.
    let text = std::fs::read_to_string(&path).expect("LSQ_PIPEVIEW log written");
    let _ = std::fs::remove_file(&path);
    let parsed = parse_konata(&text).expect("truncated log still parses");
    assert_eq!(parsed.len(), 64, "log holds exactly the ring capacity");

    // The overflow is accounted on the process-wide hub.
    let rendered = telemetry::global().metrics().render();
    let dropped: u64 = rendered
        .lines()
        .find(|l| l.starts_with("lsq_pipeview_dropped_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("lsq_pipeview_dropped_total exposed");
    assert!(
        dropped >= 2_000 - 64,
        "ring overflow is accounted (dropped {dropped})"
    );

    // Build-identity and uptime ride on the same registry.
    assert!(rendered.contains("lsq_build_info{"), "build info gauge");
    assert!(rendered.contains("lsq_uptime_seconds"), "uptime gauge");
}
