//! End-to-end checks of the live-telemetry and self-profiler subsystems:
//! profiling must not perturb simulated counters (the `NopProfiler`
//! twin of the tracing equivalence test), `LSQ_PROFILE=1` must flow a
//! per-phase profile into every `LSQ_EXPERIMENTS_JSON` record, and the
//! metrics server must expose live Prometheus text plus a `/jobs` JSON
//! snapshot while batches run.
//!
//! This file mutates process environment variables, so it lives in its
//! own integration-test binary: the env-dependent assertions are
//! confined to a single `#[test]` and the remaining tests never read
//! the environment.

use lsq::core::{LsqConfig, PredictorKind, SegAlloc};
use lsq::experiments::runner::run_matrix;
use lsq::experiments::{telemetry, Engine, Job, RunSpec};
use lsq::isa::{Addr, ArchReg, InstrKind, Instruction, Pc, VecStream};
use lsq::obs::{Json, NopTracer};
use lsq::pipeline::{NopProfiler, Phase, WallProfiler};
use lsq::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

/// Serializes the tests that mutate process environment variables
/// (`cargo test` runs `#[test]`s of one binary concurrently, and env
/// vars are process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Holds the env lock and restores every listed variable to its prior
/// state on drop, so a panicking test cannot leak env mutations into
/// the others.
struct EnvGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
    saved: Vec<(&'static str, Option<std::ffi::OsString>)>,
}

impl EnvGuard {
    fn new(vars: &[&'static str]) -> Self {
        let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = vars.iter().map(|&v| (v, std::env::var_os(v))).collect();
        Self { _lock: lock, saved }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        for (var, prior) in &self.saved {
            match prior {
                Some(v) => std::env::set_var(var, v),
                None => std::env::remove_var(var),
            }
        }
    }
}

/// The violation workload shared with the tracing equivalence test: a
/// late store feeding a same-address load, so squashes and LSQ searches
/// all occur.
fn violation_workload(iters: u64) -> Vec<Instruction> {
    let mut instrs = Vec::new();
    for i in 0..iters {
        let pc = 0x1000 + (i % 8) * 32;
        instrs.push(Instruction::op(Pc(pc), InstrKind::FpDiv).with_dst(ArchReg::fp(1)));
        instrs.push(
            Instruction::op(Pc(pc + 4), InstrKind::IntAlu)
                .with_dst(ArchReg::int(2))
                .with_src(ArchReg::int(2)),
        );
        instrs.push(Instruction::store(Pc(pc + 8), Addr(0x80)).with_src(ArchReg::fp(1)));
        instrs.push(Instruction::load(Pc(pc + 12), Addr(0x80)).with_dst(ArchReg::int(4)));
    }
    instrs
}

#[test]
fn profiling_does_not_perturb_the_simulation() {
    let instrs = violation_workload(150);
    let n = instrs.len() as u64;
    let mut plain_stream = VecStream::new(instrs.clone());
    let mut plain = Simulator::with_parts(SimConfig::default(), NopTracer, NopProfiler);
    let p = plain.run(&mut plain_stream, n);

    let mut profiled_stream = VecStream::new(instrs);
    let mut profiled = Simulator::with_parts(SimConfig::default(), NopTracer, WallProfiler::new());
    let r = profiled.run(&mut profiled_stream, n);

    assert_eq!(p.cycles, r.cycles, "profiling must not perturb timing");
    assert_eq!(p.committed, r.committed);
    assert_eq!(p.violation_squashes, r.violation_squashes);
    assert_eq!(p.lsq.sq_searches, r.lsq.sq_searches);
    assert_eq!(p.lsq.violations, r.lsq.violations);
    assert!(p.profile.is_none(), "unprofiled run reports no profile");

    let profile = r.profile.expect("profiled run reports a profile");
    for phase in Phase::ALL {
        let stat = profile
            .phases
            .iter()
            .find(|s| s.phase == phase.name())
            .unwrap_or_else(|| panic!("profile is missing phase {}", phase.name()));
        if matches!(phase, Phase::Fetch | Phase::Commit | Phase::WakeupIssue) {
            assert!(stat.calls > 0, "{} was never timed", phase.name());
        }
    }
    // This workload squashes, so the squash phase must have fired and
    // the render must carry every phase name.
    let squash = profile.phases.iter().find(|s| s.phase == "squash").unwrap();
    assert!(squash.calls > 0, "violation workload must time squashes");
    let table = profile.render();
    for phase in Phase::ALL {
        assert!(
            table.contains(phase.name()),
            "render misses {}",
            phase.name()
        );
    }
    assert!(profile.total_nanos() > 0);
}

/// One raw HTTP GET against the metrics server, returning (status line,
/// body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: lsq\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn profiled_batch_flows_into_dump_and_live_endpoints() {
    let _env = EnvGuard::new(&["LSQ_PROFILE", "LSQ_EXPERIMENTS_JSON", "LSQ_ACCOUNTING"]);
    let dump = std::env::temp_dir().join("lsq_telemetry_profile_test.json");
    let _ = std::fs::remove_file(&dump);
    std::env::set_var("LSQ_PROFILE", "1");
    std::env::set_var("LSQ_EXPERIMENTS_JSON", &dump);
    std::env::remove_var("LSQ_ACCOUNTING");

    // Serve the process-wide hub on an ephemeral port (the env knob
    // LSQ_METRICS_ADDR goes through the same `serve` path; tests bind
    // port 0 to avoid collisions).
    let server = telemetry::global()
        .serve("127.0.0.1:0")
        .expect("bind ephemeral metrics port");

    let spec = RunSpec {
        warmup: 500,
        instrs: 3_000,
        seed: 17,
    };
    let jobs: Vec<Job> = ["gzip", "mcf"]
        .iter()
        .map(|&bench| Job {
            bench,
            lsq: LsqConfig {
                predictor: PredictorKind::Pair,
                ..LsqConfig::default()
            },
            scaled: false,
            spec,
        })
        .collect();
    let engine = Engine::new();
    let results = engine.run_batch(&jobs);
    std::env::remove_var("LSQ_PROFILE");
    std::env::remove_var("LSQ_EXPERIMENTS_JSON");

    // Every fresh result carries a per-phase profile.
    for r in &results {
        let profile = r.profile.as_ref().expect("LSQ_PROFILE=1 profiles jobs");
        assert!(profile.total_nanos() > 0);
    }

    // ... and so does every record of the LSQ_EXPERIMENTS_JSON dump.
    let text = std::fs::read_to_string(&dump).expect("dump written at batch end");
    let doc = Json::parse(&text).expect("dump parses");
    let records = doc.as_arr().expect("dump is an array of job records");
    assert_eq!(records.len(), 2);
    for rec in records {
        let profile = rec.get("profile").expect("record has a profile field");
        let fetch = profile.get("fetch").expect("profile keys phases by name");
        assert!(fetch.get("calls").and_then(Json::as_u64).unwrap() > 0);
        assert!(fetch.get("nanos").and_then(Json::as_u64).is_some());
        // These tiny runs never hit the safety cycle cap, and with
        // LSQ_ACCOUNTING unset no CPI stack is attached.
        assert_eq!(rec.get("capped").and_then(Json::as_bool), Some(false));
        assert!(matches!(rec.get("cpi_stack"), Some(Json::Null)));
    }
    let _ = std::fs::remove_file(&dump);

    // The live endpoints reflect the batch.
    let (status, metrics) = http_get(server.addr(), "/metrics");
    assert!(status.contains("200"), "GET /metrics: {status}");
    for needle in [
        "# TYPE lsq_jobs_done_total counter",
        "lsq_cache_misses_total",
        "lsq_sim_mips",
        "# TYPE lsq_job_wall_ms histogram",
        "lsq_job_wall_ms_bucket{le=\"+Inf\"}",
        "lsq_profile_phase_nanos_total{phase=\"fetch\"}",
        "lsq_profile_phase_calls_total{phase=\"commit\"}",
    ] {
        assert!(
            metrics.contains(needle),
            "/metrics missing {needle:?}:\n{metrics}"
        );
    }

    let (status, jobs_body) = http_get(server.addr(), "/jobs");
    assert!(status.contains("200"), "GET /jobs: {status}");
    let snap = Json::parse(jobs_body.trim()).expect("/jobs is valid JSON");
    assert!(snap.get("done").and_then(Json::as_u64).unwrap() >= 2);
    assert!(snap.get("workers").and_then(Json::as_arr).is_some());
    let agg = snap.get("profile").expect("aggregate profile present");
    assert!(agg.get("fetch").is_some(), "/jobs profile keys phases");

    let (status, _) = http_get(server.addr(), "/nope");
    assert!(status.contains("404"), "unknown path: {status}");
}

/// `LSQ_ACCOUNTING=1` end to end: every fresh result and every JSON
/// dump record carries a CPI stack whose components partition the
/// measured window, `LSQ_ACCOUNTING_CSV` writes one windowed CSV per
/// job, `/metrics` exports the labeled cycle counters, and `/jobs`
/// carries the batch-aggregate stack.
#[test]
fn accounted_batch_flows_stacks_everywhere() {
    let _env = EnvGuard::new(&[
        "LSQ_PROFILE",
        "LSQ_EXPERIMENTS_JSON",
        "LSQ_ACCOUNTING",
        "LSQ_ACCOUNTING_CSV",
    ]);
    let dump = std::env::temp_dir().join("lsq_telemetry_accounting_test.json");
    let csv = std::env::temp_dir().join("lsq_telemetry_accounting_test.csv");
    let csv1 = std::path::PathBuf::from(format!("{}.1", csv.display()));
    for p in [&dump, &csv, &csv1] {
        let _ = std::fs::remove_file(p);
    }
    std::env::remove_var("LSQ_PROFILE");
    std::env::set_var("LSQ_EXPERIMENTS_JSON", &dump);
    std::env::set_var("LSQ_ACCOUNTING", "1");
    std::env::set_var("LSQ_ACCOUNTING_CSV", format!("{}:2000", csv.display()));

    let server = telemetry::global()
        .serve("127.0.0.1:0")
        .expect("bind ephemeral metrics port");
    let spec = RunSpec {
        warmup: 500,
        instrs: 3_000,
        seed: 23,
    };
    let jobs: Vec<Job> = ["gzip", "mcf"]
        .iter()
        .map(|&bench| Job {
            bench,
            lsq: LsqConfig::default(),
            scaled: false,
            spec,
        })
        .collect();
    let results = Engine::new().run_batch(&jobs);

    for r in &results {
        let stack = r
            .cpi_stack
            .as_ref()
            .expect("LSQ_ACCOUNTING=1 attaches a stack to every fresh job");
        assert_eq!(
            stack.total_slots(),
            r.cycles * stack.commit_width,
            "stack must partition the measured window"
        );
        assert_eq!(stack.slots("base"), r.committed);
        assert!(!r.hit_cycle_cap);
    }

    // The JSON dump mirrors the stacks (and the capped flag).
    let text = std::fs::read_to_string(&dump).expect("dump written at batch end");
    let doc = Json::parse(&text).expect("dump parses");
    let records = doc.as_arr().expect("dump is an array of job records");
    assert_eq!(records.len(), 2);
    for rec in records {
        assert_eq!(rec.get("capped").and_then(Json::as_bool), Some(false));
        let stack = rec.get("cpi_stack").expect("record carries cpi_stack");
        assert!(stack.get("commit_width").and_then(Json::as_u64).unwrap() > 0);
        let comps = stack.get("components").expect("components map");
        assert!(comps.get("base").and_then(Json::as_u64).unwrap() > 0);
    }
    let _ = std::fs::remove_file(&dump);

    // One windowed CSV per job: job 0 verbatim, job 1 suffixed `.1`.
    for path in [&csv, &csv1] {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("CSV sampler dump {} missing: {e}", path.display()));
        assert!(
            text.starts_with("start_cycle,end_cycle,cycles,base,"),
            "{}: unexpected header in {text:?}",
            path.display()
        );
        assert!(
            text.lines().count() >= 2,
            "{}: no window rows",
            path.display()
        );
        let _ = std::fs::remove_file(path);
    }

    // Live endpoints: labeled per-component counters and the aggregate.
    let (status, metrics) = http_get(server.addr(), "/metrics");
    assert!(status.contains("200"), "GET /metrics: {status}");
    for needle in [
        "# TYPE lsq_cpi_stack_cycles_total counter",
        "lsq_cpi_stack_cycles_total{component=\"base\"}",
    ] {
        assert!(
            metrics.contains(needle),
            "/metrics missing {needle:?}:\n{metrics}"
        );
    }
    let (status, jobs_body) = http_get(server.addr(), "/jobs");
    assert!(status.contains("200"), "GET /jobs: {status}");
    let snap = Json::parse(jobs_body.trim()).expect("/jobs is valid JSON");
    let agg = snap.get("cpi_stack").expect("aggregate stack present");
    let base = agg
        .get("components")
        .and_then(|c| c.get("base"))
        .and_then(Json::as_u64)
        .expect("aggregate stack keys components by name");
    assert!(base > 0);
}

/// The full 72-job paper matrix (18 benchmarks × 4 design points) with
/// accounting on: every job's diffed stack must still sum exactly to
/// `cycles × commit_width` with base slots equal to committed
/// instructions — the invariant survives warm-up differencing on every
/// design point of every benchmark.
#[test]
fn accounting_invariant_holds_across_the_full_matrix() {
    let _env = EnvGuard::new(&[
        "LSQ_PROFILE",
        "LSQ_EXPERIMENTS_JSON",
        "LSQ_ACCOUNTING",
        "LSQ_ACCOUNTING_CSV",
    ]);
    std::env::remove_var("LSQ_PROFILE");
    std::env::remove_var("LSQ_EXPERIMENTS_JSON");
    std::env::remove_var("LSQ_ACCOUNTING_CSV");
    std::env::set_var("LSQ_ACCOUNTING", "1");

    let spec = RunSpec {
        warmup: 500,
        instrs: 2_000,
        seed: 29,
    };
    let cfgs = [
        LsqConfig::default(),
        LsqConfig {
            predictor: PredictorKind::Pair,
            ..LsqConfig::default()
        },
        LsqConfig::with_techniques(1),
        LsqConfig::segmented(SegAlloc::SelfCircular),
    ];
    let rows = run_matrix(&cfgs, false, spec);
    assert_eq!(rows.len(), 18, "one row per benchmark");
    for (bench, results) in &rows {
        assert_eq!(results.len(), 4, "{bench}: one result per design point");
        for r in results {
            let stack = r
                .cpi_stack
                .as_ref()
                .unwrap_or_else(|| panic!("{bench}: stack missing"));
            assert_eq!(
                stack.total_slots(),
                r.cycles * stack.commit_width,
                "{bench}: components must sum to cycles x commit_width"
            );
            assert_eq!(
                stack.slots("base"),
                r.committed,
                "{bench}: base slots must equal committed instructions"
            );
        }
    }
}

/// Test servers bind port 0; the kernel must hand every concurrently
/// running server its own ephemeral port (no fixed-port collisions
/// between test binaries), and each must serve the shared hub.
#[test]
fn metrics_servers_bind_distinct_ephemeral_ports() {
    let a = telemetry::global()
        .serve("127.0.0.1:0")
        .expect("first ephemeral bind");
    let b = telemetry::global()
        .serve("127.0.0.1:0")
        .expect("second ephemeral bind");
    assert_ne!(a.addr().port(), 0, "bind resolves the ephemeral port");
    assert_ne!(b.addr().port(), 0);
    assert_ne!(a.addr().port(), b.addr().port(), "ports must be distinct");
    for server in [&a, &b] {
        let (status, _) = http_get(server.addr(), "/metrics");
        assert!(status.contains("200"), "GET /metrics: {status}");
    }
}
