//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io mirror, so the real `criterion` cannot be fetched — and as a
//! dev-dependency it cannot be feature-gated away without breaking
//! `cargo test` resolution for the whole workspace. This crate implements
//! the subset of the API the `lsq-bench` harness uses (`Criterion`,
//! benchmark groups, `Throughput`, `criterion_group!`/`criterion_main!`)
//! with a simple mean-of-samples timer instead of criterion's statistical
//! machinery. It is wired in via `[patch.crates-io]` in the workspace
//! `Cargo.toml`; swapping back to upstream criterion requires no source
//! changes in `lsq-bench`.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        run_benchmark(&id, sample_size, None, f);
        self
    }
}

/// Units-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as
    /// it goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` the scheduled number of iterations and records the
    /// elapsed wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size the per-sample batch so a
    // sample lasts ~20ms (bounded so fast functions don't spin forever).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let mut line = format!(
        "{id:<48} time: [median {} mean {}]",
        fmt_time(median),
        fmt_time(mean)
    );
    if let Some(t) = throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = units / (median / 1e9);
        line.push_str(&format!(" thrpt: {} {label}", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_payload() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(2).throughput(Throughput::Elements(4));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(500.0), "500.0 ns");
        assert_eq!(fmt_time(1_500.0), "1.50 µs");
        assert_eq!(fmt_time(2_000_000.0), "2.00 ms");
    }
}
