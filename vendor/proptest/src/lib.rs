//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds in hermetic environments with no access to a
//! crates.io mirror, so the real `proptest` cannot be fetched. This crate
//! implements the subset of its API the test suite uses — the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!` macros, integer
//! range / `any` / `Just` / tuple / mapped / collection strategies, and a
//! deterministic case runner — with compatible surface syntax, so the test
//! files compile unchanged against either implementation. It is wired in
//! via `[patch.crates-io]` in the workspace `Cargo.toml`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim (they are `Debug`-printed in the panic message) instead of a
//!   minimized counterexample.
//! * **No persistence.** `*.proptest-regressions` seed files are neither
//!   read nor written; their RNG seeds are only meaningful to the real
//!   crate's generators. The checked-in seed files are kept so switching
//!   back to upstream proptest replays them.
//! * **Deterministic seeding.** Case seeds derive from the test's module
//!   path, so every run explores the same inputs. Set `PROPTEST_SEED` to
//!   an integer to explore a different universe, and `PROPTEST_CASES` to
//!   override the case count globally.

pub mod rng {
    //! Deterministic RNG for case generation (splitmix64).

    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A tiny deterministic RNG handed to strategies during generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GOLDEN);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`; modulo bias is acceptable
        /// for test-case generation).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next_u64() % n
        }

        /// Fair coin flip.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::rng::TestRng;
    use std::marker::PhantomData;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Object-safe strategy view, used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_bool()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for any value of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    /// Generates any value of an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty range strategy {lo}..{hi}");
                    let span = (hi - lo) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// Weighted choice between strategies of a common value type; built
    /// by the `prop_oneof!` macro.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if the arms are empty or all weights are zero.
        pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a non-zero total weight");
            Self { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate_dyn(rng);
                }
                pick -= w;
            }
            unreachable!("weight bookkeeping");
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind the `proptest!` macro.

    use crate::rng::TestRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (the `PROPTEST_CASES`
        /// environment variable overrides it).
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases: env_u64("PROPTEST_CASES").map_or(cases, |v| v as u32),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(256)
        }
    }

    /// Why a case failed (only assertion failures; the stub has no
    /// rejection/filtering machinery).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    /// Stable per-test base seed: FNV-1a of the test path, XORed with the
    /// optional `PROPTEST_SEED` universe selector.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ env_u64("PROPTEST_SEED").unwrap_or(0)
    }

    /// Outcome of one case body: panicked, failed an assertion, or passed.
    pub type CaseOutcome = std::thread::Result<Result<(), TestCaseError>>;

    /// Runs `config.cases` cases. `case` receives the per-case RNG and
    /// returns the `Debug`-rendered inputs plus the body outcome.
    ///
    /// # Panics
    ///
    /// Panics (failing the surrounding `#[test]`) on the first case whose
    /// body panics or returns an assertion failure, echoing the inputs.
    pub fn run_cases<F>(config: ProptestConfig, test_path: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, CaseOutcome),
    {
        let base = seed_for(test_path);
        for i in 0..config.cases {
            let seed = base.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::new(seed);
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "proptest case failed: {test_path} (case {i}, seed {seed:#x})\n  \
                     inputs: {inputs}\n  {msg}"
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    panic!(
                        "proptest case panicked: {test_path} (case {i}, seed {seed:#x})\n  \
                         inputs: {inputs}\n  panic: {msg}"
                    )
                }
            }
        }
    }
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirrors the `proptest::prop` module path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, flips in prop::collection::vec(any::<bool>(), 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                        )+
                        let __proptest_inputs = {
                            let mut __d = ::std::string::String::new();
                            $(
                                __d.push_str(stringify!($arg));
                                __d.push_str(" = ");
                                __d.push_str(&::std::format!("{:?}", &$arg));
                                __d.push_str("; ");
                            )+
                            __d
                        };
                        let __proptest_outcome = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(
                                move || -> ::core::result::Result<
                                    (),
                                    $crate::test_runner::TestCaseError,
                                > {
                                    $body
                                    ::core::result::Result::Ok(())
                                },
                            ),
                        );
                        (__proptest_inputs, __proptest_outcome)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$attr])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((
                $weight as u32,
                ::std::boxed::Box::new($strat)
                    as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts inside a `proptest!` body; failure aborts only the current
/// case, reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: `{:?}`, right: `{:?}`)",
            ::std::format!($($fmt)*),
            __l,
            __r
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (TestRng::new(7), TestRng::new(7));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(2);
        let strat = crate::collection::vec(any::<bool>(), 2..6);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..400 {
            seen[Strategy::generate(&strat, &mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2], "weights respected: {seen:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, v in crate::collection::vec(0u8..4, 1..10)) {
            prop_assert!(x < 50);
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 4), "out of range: {v:?}");
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                ProptestConfig::with_cases(10),
                "stub::always_fails",
                |rng| {
                    let x = Strategy::generate(&(0u8..10), rng);
                    let inputs = format!("x = {x:?}; ");
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        move || -> Result<(), TestCaseError> {
                            prop_assert!(x >= 10, "x too small");
                            Ok(())
                        },
                    ));
                    (inputs, out)
                },
            );
        });
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("x ="), "inputs echoed: {msg}");
        assert!(msg.contains("x too small"), "message echoed: {msg}");
    }
}
